"""Bounded LRU plan cache."""

import pytest

from repro.errors import ServiceError
from repro.service.cache import PlanCache


class TestPlanCache:
    def test_get_put_round_trip(self):
        cache = PlanCache(capacity=4)
        cache.put("k", {"utility": 1.0})
        assert cache.get("k") == {"utility": 1.0}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 0

    def test_miss_counts(self):
        cache = PlanCache(capacity=4)
        assert cache.get("absent") is None
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.get("a")           # refresh "a" -> "b" is now LRU
        cache.put("c", {"n": 3})
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_put_refresh_does_not_evict(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        cache.put("a", {"n": 10})  # refresh, not an insert
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 0
        assert cache.get("a") == {"n": 10}

    def test_capacity_one(self):
        cache = PlanCache(capacity=1)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert len(cache) == 1
        assert cache.get("b") == {"n": 2}

    def test_clear_keeps_counters(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ServiceError, match="capacity"):
            PlanCache(capacity=0)
