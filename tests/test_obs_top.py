"""The `cast-plan top` renderer: pure payloads in, one text frame out."""

from repro.obs.top import CLEAR, render_dashboard


def histogram(op_counts, bounds=(0.1, 1.0, 10.0)):
    """A cast_op_latency_seconds entry; one series per (op, counts)."""
    values = []
    for labels, counts in op_counts:
        values.append({
            "labels": labels,
            "value": {
                "counts": list(counts),
                "count": float(sum(counts)),
                "sum": 0.0,
            },
        })
    return {"kind": "histogram", "buckets": list(bounds), "values": values}


def counter(samples):
    return {
        "kind": "counter",
        "values": [{"labels": dict(labels), "value": value}
                   for labels, value in samples],
    }


def full_metrics():
    return {
        "cast_op_latency_seconds": histogram([
            ({"op": "plan"}, [10, 5, 1]),
            ({"op": "whatif"}, [100, 0, 0]),
        ]),
        "cast_plan_cache_events_total": counter([
            ({"event": "hit"}, 30.0), ({"event": "miss"}, 10.0),
        ]),
        "cast_session_events_total": counter([
            ({"kind": "append"}, 12.0),
        ]),
        "cast_flightrec_records_total": counter([({}, 116.0)]),
    }


def slo_payload(state="ok", shards=None):
    entry = {
        "state": state,
        "burn": {"fast_short": 0.2, "fast_long": 0.1,
                 "slow_short": 0.1, "slow_long": 0.05},
        "budget_remaining": 0.95,
    }
    if shards is not None:
        entry["shards"] = shards
    return {"scope": "server", "state": state, "ops": {"solve": entry}}


class TestServerFrame:
    def test_frame_has_every_section(self):
        frame = render_dashboard(
            metrics=full_metrics(),
            slo=slo_payload(),
            stats={"uptime_s": 42.0, "counters": {"requests": 116}},
        )
        assert frame.endswith("\n")
        assert "state ok" in frame
        assert "uptime 42s" in frame
        assert "requests 116" in frame
        assert "SLO" in frame and "solve" in frame
        assert "Latency by op (ms)" in frame
        assert "plan" in frame and "whatif" in frame
        assert "hit-rate 75.0%" in frame
        assert "append=12" in frame
        assert "Flight recorder: 116 requests recorded" in frame
        # Plain frame carries no ANSI codes unless color is asked for.
        assert "\x1b[" not in frame

    def test_latency_quantiles_are_per_op(self):
        frame = render_dashboard(metrics=full_metrics())
        plan_row = next(line for line in frame.splitlines()
                        if line.strip().startswith("plan"))
        whatif_row = next(line for line in frame.splitlines()
                          if line.strip().startswith("whatif"))
        # All whatif observations sit in the first (<=0.1 s) bucket.
        assert "16" in plan_row  # count
        assert "100" in whatif_row

    def test_empty_payloads_render_placeholders(self):
        frame = render_dashboard(metrics={})
        assert "(no slo data)" in frame
        assert "(no requests yet)" in frame
        assert "(no cache traffic yet)" in frame

    def test_color_paints_the_state(self):
        frame = render_dashboard(
            metrics={}, slo=slo_payload(state="page"), color=True,
        )
        assert "\x1b[31m" in frame  # red for page

    def test_title_override(self):
        frame = render_dashboard(metrics={}, title="top — 127.0.0.1:4815")
        assert frame.startswith("top — 127.0.0.1:4815")

    def test_clear_is_an_ansi_repaint(self):
        assert CLEAR.startswith("\x1b[")


class TestFleetFrame:
    def test_fleet_section_lists_shards_worst_first_annotated(self):
        metrics = full_metrics()
        metrics["cast_fleet_tenant_queued"] = counter([
            ({"tenant": "acme"}, 3.0),
        ])
        metrics["cast_fleet_tenant_inflight"] = counter([
            ({"tenant": "acme"}, 2.0),
        ])
        stats = {
            "uptime_s": 5.0,
            "counters": {"requests": 7},
            "shards": [
                {"shard_id": "s1", "host": "127.0.0.1", "port": 2,
                 "healthy": False},
                {"shard_id": "s0", "host": "127.0.0.1", "port": 1,
                 "healthy": True},
            ],
        }
        frame = render_dashboard(
            metrics=metrics,
            slo=slo_payload(state="page",
                            shards={"s0": "ok", "s1": "page"}),
            stats=stats,
            fleet=True,
        )
        assert "fleet" in frame.splitlines()[0]
        assert "Fleet" in frame
        lines = frame.splitlines()
        s0_line = next(line for line in lines if line.strip().startswith("s0"))
        s1_line = next(line for line in lines if line.strip().startswith("s1"))
        assert "healthy" in s0_line and "127.0.0.1:1" in s0_line
        assert "down" in s1_line
        # Shards sorted by id regardless of input order.
        assert lines.index(s0_line) < lines.index(s1_line)
        # Only the paging shard is named in the SLO table.
        slo_row = next(line for line in lines
                       if line.strip().startswith("solve"))
        assert slo_row.rstrip().endswith("s1")
        assert "WFQ queue depth by tenant:" in frame
        assert "queued 3" in frame and "inflight 2" in frame

    def test_fleet_without_shards(self):
        frame = render_dashboard(metrics={}, stats={}, fleet=True)
        assert "(no shards registered)" in frame

    def test_all_ok_shards_summarized(self):
        frame = render_dashboard(
            metrics={},
            slo=slo_payload(shards={"s0": "ok", "s1": "ok"}),
            fleet=True,
        )
        assert "all ok" in frame
