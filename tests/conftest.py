"""Shared fixtures for the test suite.

Heavy objects (the profiled model matrix, workloads) are session-scoped:
profiling is deterministic, so sharing one instance across tests only
saves time, never leaks state (everything handed out is immutable or
rebuilt per test where mutation matters).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.provider import CloudProvider, google_cloud_2015
from repro.cloud.vm import ClusterSpec
from repro.profiler.profiler import build_model_matrix
from repro.workloads.swim import synthesize_facebook_workload, synthesize_small_workload


@pytest.fixture(scope="session")
def provider() -> CloudProvider:
    """The Google Cloud Jan-2015 provider (immutable)."""
    return google_cloud_2015()


@pytest.fixture(scope="session")
def char_cluster() -> ClusterSpec:
    """The 10-VM characterization cluster (§3)."""
    return ClusterSpec(n_vms=10)


@pytest.fixture(scope="session")
def eval_cluster() -> ClusterSpec:
    """The 25-VM / 400-core evaluation cluster (§5)."""
    return ClusterSpec(n_vms=25)


@pytest.fixture(scope="session")
def matrix(provider, char_cluster):
    """Profiled model matrix on the characterization cluster."""
    return build_model_matrix(provider=provider, cluster_spec=char_cluster)


@pytest.fixture(scope="session")
def eval_matrix(provider, eval_cluster):
    """Profiled model matrix on the evaluation cluster."""
    return build_model_matrix(provider=provider, cluster_spec=eval_cluster)


@pytest.fixture(scope="session")
def facebook_workload():
    """The canonical 100-job Table 4 workload."""
    return synthesize_facebook_workload()


@pytest.fixture(scope="session")
def small_workload():
    """The 16-job §5.1.4 validation workload."""
    return synthesize_small_workload()


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
