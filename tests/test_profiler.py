"""Offline profiler and the model matrix."""

import pytest

from repro.cloud.storage import Tier
from repro.errors import CatalogError
from repro.profiler.models import CapacityProfile, ModelMatrix, PhaseBandwidths
from repro.profiler.profiler import Profiler, build_model_matrix
from repro.workloads.apps import GREP, SORT


class TestPhaseBandwidths:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            PhaseBandwidths(map_mb_s=0.0, shuffle_mb_s=1.0, reduce_mb_s=1.0)

    def test_holds_values(self):
        bw = PhaseBandwidths(10.0, 20.0, 30.0)
        assert (bw.map_mb_s, bw.shuffle_mb_s, bw.reduce_mb_s) == (10.0, 20.0, 30.0)


class TestCapacityProfile:
    def test_single_anchor_is_constant(self):
        bw = PhaseBandwidths(10.0, 20.0, 30.0)
        profile = CapacityProfile(anchors=((375.0, bw),))
        assert profile.at(100.0) == bw
        assert profile.at(1500.0) == bw

    def test_interpolates_between_anchors(self):
        lo = PhaseBandwidths(10.0, 10.0, 10.0)
        hi = PhaseBandwidths(30.0, 30.0, 30.0)
        profile = CapacityProfile(anchors=((100.0, lo), (300.0, hi)))
        mid = profile.at(200.0)
        assert 10.0 < mid.map_mb_s < 30.0

    def test_constant_extension_outside_range(self):
        lo = PhaseBandwidths(10.0, 10.0, 10.0)
        hi = PhaseBandwidths(30.0, 30.0, 30.0)
        profile = CapacityProfile(anchors=((100.0, lo), (300.0, hi)))
        assert profile.at(50.0).map_mb_s == pytest.approx(10.0)
        assert profile.at(900.0).map_mb_s == pytest.approx(30.0)

    def test_unsorted_anchors_rejected(self):
        bw = PhaseBandwidths(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            CapacityProfile(anchors=((300.0, bw), (100.0, bw)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CapacityProfile(anchors=())


class TestModelMatrix:
    def test_missing_profile_raises_catalog_error(self):
        matrix = ModelMatrix()
        with pytest.raises(CatalogError, match="no profile"):
            matrix.get("sort", Tier.PERS_SSD)

    def test_put_get_roundtrip(self):
        matrix = ModelMatrix()
        profile = CapacityProfile(anchors=((100.0, PhaseBandwidths(1.0, 1.0, 1.0)),))
        matrix.put("sort", Tier.PERS_SSD, profile)
        assert matrix.get("sort", Tier.PERS_SSD) is profile
        assert matrix.has("sort", Tier.PERS_SSD)
        assert not matrix.has("sort", Tier.PERS_HDD)

    def test_bandwidth_cache_rounds_capacity(self):
        matrix = ModelMatrix()
        lo = PhaseBandwidths(10.0, 10.0, 10.0)
        hi = PhaseBandwidths(30.0, 30.0, 30.0)
        matrix.put("sort", Tier.PERS_SSD, CapacityProfile(anchors=((100.0, lo), (300.0, hi))))
        a = matrix.bandwidths("sort", Tier.PERS_SSD, 200.2)
        b = matrix.bandwidths("sort", Tier.PERS_SSD, 200.4)
        assert a is b  # both round to 200 GB


class TestProfiler:
    def test_profiled_bandwidths_track_tier_speed(self, provider, char_cluster, matrix):
        ssd = matrix.bandwidths("sort", Tier.PERS_SSD, 500.0)
        hdd = matrix.bandwidths("sort", Tier.PERS_HDD, 500.0)
        assert ssd.map_mb_s > hdd.map_mb_s * 1.5

    def test_cpu_bound_app_is_tier_flat(self, matrix):
        ssd = matrix.bandwidths("kmeans", Tier.PERS_SSD, 500.0)
        hdd = matrix.bandwidths("kmeans", Tier.PERS_HDD, 500.0)
        assert ssd.map_mb_s == pytest.approx(hdd.map_mb_s, rel=0.1)

    def test_scaling_tiers_have_multiple_anchors(self, matrix):
        assert len(matrix.get("sort", Tier.PERS_SSD).capacities) > 1
        assert len(matrix.get("sort", Tier.EPH_SSD).capacities) == 1

    def test_all_pairs_profiled(self, matrix):
        apps = {a for a, _ in matrix.pairs}
        tiers = {t for _, t in matrix.pairs}
        assert apps == {"sort", "join", "grep", "kmeans", "pagerank"}
        assert tiers == set(Tier)

    def test_bandwidths_grow_with_capacity(self, matrix):
        small = matrix.bandwidths("grep", Tier.PERS_SSD, 100.0)
        large = matrix.bandwidths("grep", Tier.PERS_SSD, 1000.0)
        assert large.map_mb_s > small.map_mb_s * 2

    def test_calibration_job_fills_waves(self, provider, char_cluster):
        profiler = Profiler(provider=provider, cluster_spec=char_cluster, waves=2)
        job = profiler.calibration_job(SORT)
        assert job.map_tasks == char_cluster.total_map_slots * 2

    def test_build_model_matrix_memoizes(self, provider, char_cluster):
        a = build_model_matrix(provider=provider, cluster_spec=char_cluster)
        b = build_model_matrix(provider=provider, cluster_spec=char_cluster)
        assert a is b

    def test_partial_profiling(self, provider, char_cluster):
        profiler = Profiler(provider=provider, cluster_spec=char_cluster)
        matrix = profiler.profile_all(apps=[GREP], tiers=[Tier.OBJ_STORE])
        assert matrix.has("grep", Tier.OBJ_STORE)
        assert not matrix.has("sort", Tier.OBJ_STORE)
