"""Client reconnect: bounded exponential backoff over flaky transports."""

import asyncio

import pytest

from repro.errors import ServiceUnavailableError, WorkloadError
from repro.service import PlannerClient
from repro.service.protocol import (
    error_response,
    ok_response,
    parse_request,
    read_message,
    send_message,
)


def run(coro):
    return asyncio.run(coro)


class FlakyServer:
    """Drops the first ``fail_first`` connections at accept, then serves.

    Serving answers ``ping`` normally and any solve op with a typed
    ``WorkloadError`` — enough surface to tell transport failures (which
    should retry) apart from typed errors (which must not).
    """

    def __init__(self, fail_first=0):
        self.fail_first = fail_first
        self.connections = 0
        self.requests = 0
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        self.connections += 1
        if self.connections <= self.fail_first:
            writer.close()  # EOF before any response line
            return
        try:
            while True:
                line = await read_message(reader)
                if line is None:
                    break
                request = parse_request(line)
                self.requests += 1
                if request["op"] == "ping":
                    await send_message(
                        writer, ok_response(request.get("id"), {"pong": True})
                    )
                else:
                    await send_message(
                        writer,
                        error_response(
                            request.get("id"), WorkloadError("synthetic")
                        ),
                    )
        finally:
            writer.close()


class TestBackoffSchedule:
    def test_exponential_and_capped(self):
        client = PlannerClient(
            retries=5, backoff_base=0.1, backoff_max=0.5, jitter=0.0
        )
        sleeps = [client._backoff_s(i) for i in range(5)]
        assert sleeps == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        client = PlannerClient(retries=3, backoff_base=0.1, jitter=0.25)
        for attempt in range(4):
            nominal = min(client.backoff_max, 0.1 * 2**attempt)
            for _ in range(20):
                s = client._backoff_s(attempt)
                assert nominal * 0.75 <= s <= nominal * 1.25


class TestRetryBehaviour:
    def test_default_is_fail_fast(self):
        async def scenario():
            async with FlakyServer(fail_first=10) as server:
                async with PlannerClient(*server.address) as client:
                    # Clean EOF maps to ServiceUnavailableError; a racy
                    # close can surface as ECONNRESET — both are
                    # ConnectionError, which is the retry contract.
                    with pytest.raises(ConnectionError):
                        await client.ping()
                assert server.connections == 1  # no silent reconnects

        run(scenario())

    def test_retry_reconnects_after_eof(self):
        async def scenario():
            async with FlakyServer(fail_first=1) as server:
                async with PlannerClient(
                    *server.address, retries=2, backoff_base=0.01, jitter=0.0
                ) as client:
                    pong = await client.ping()
                    assert pong["pong"] is True
                assert server.connections == 2

        run(scenario())

    def test_retries_are_bounded(self):
        async def scenario():
            async with FlakyServer(fail_first=100) as server:
                async with PlannerClient(
                    *server.address, retries=2, backoff_base=0.01, jitter=0.0
                ) as client:
                    with pytest.raises(ConnectionError):
                        await client.ping()
                assert server.connections == 3  # initial + 2 retries

        run(scenario())

    def test_connection_refused_is_retried_too(self):
        async def scenario():
            # Grab a port that nothing listens on.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            host, port = probe.sockets[0].getsockname()[:2]
            probe.close()
            await probe.wait_closed()
            client = PlannerClient(
                host, port, retries=1, backoff_base=0.01, jitter=0.0
            )
            backoffs = []
            original = client._backoff_s
            client._backoff_s = lambda attempt: (
                backoffs.append(attempt), original(attempt)
            )[1]
            try:
                with pytest.raises(OSError):
                    await client.ping()
            finally:
                await client.close()
            assert backoffs == [0]  # one reconnect attempt, then give up

        run(scenario())

    def test_typed_errors_never_retry(self):
        async def scenario():
            async with FlakyServer() as server:
                async with PlannerClient(
                    *server.address, retries=3, backoff_base=0.01
                ) as client:
                    with pytest.raises(WorkloadError, match="synthetic"):
                        await client.request("plan", {"spec": {}})
                assert server.requests == 1  # answered once, no replay

        run(scenario())

    def test_eof_midstream_maps_to_service_unavailable(self):
        """The error type doubles as ConnectionError so generic retry
        loops (and the router's failover) can catch it uniformly."""
        assert issubclass(ServiceUnavailableError, ConnectionError)

        async def scenario():
            async with FlakyServer(fail_first=1) as server:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(ConnectionError):
                        await client.ping()

        run(scenario())
