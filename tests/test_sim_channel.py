"""Processor-sharing storage channel (the fluid model)."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue
from repro.simulator.storage_backend import SharedChannel


def run_transfers(bandwidth, transfers, overhead=0.0):
    """Run (start_time, size_mb) transfers; return completion times."""
    q = EventQueue()
    ch = SharedChannel(q, bandwidth, request_overhead_s=overhead)
    done = {}
    for i, (start, size) in enumerate(transfers):
        def submit(i=i, size=size):
            ch.start_transfer(size, lambda i=i: done.__setitem__(i, q.now))
        q.schedule_at(start, submit)
    q.run()
    return done, ch


class TestSingleTransfer:
    def test_full_bandwidth_when_alone(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0)])
        assert done[0] == pytest.approx(10.0)

    def test_zero_size_completes_immediately(self):
        done, ch = run_transfers(100.0, [(0.0, 0.0)])
        assert done[0] == 0.0
        assert ch.n_transfers == 1

    def test_negative_size_rejected(self):
        q = EventQueue()
        ch = SharedChannel(q, 100.0)
        with pytest.raises(SimulationError, match="negative"):
            ch.start_transfer(-1.0, lambda: None)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SimulationError, match="bandwidth"):
            SharedChannel(EventQueue(), 0.0)


class TestFairSharing:
    def test_two_equal_transfers_halve_the_rate(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0), (0.0, 1000.0)])
        # Both share 50 MB/s throughout: 20 s each.
        assert done[0] == pytest.approx(20.0)
        assert done[1] == pytest.approx(20.0)

    def test_short_transfer_finishes_first_then_rate_recovers(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0), (0.0, 200.0)])
        # Shared at 50 MB/s until the short one finishes at t=4 (200/50);
        # the long one then has 800 MB left at 100 MB/s -> t = 4 + 8.
        assert done[1] == pytest.approx(4.0)
        assert done[0] == pytest.approx(12.0)

    def test_late_arrival_slows_inflight_transfer(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0), (5.0, 500.0)])
        # First runs alone for 5 s (500 MB left), then both at 50 MB/s.
        # Both have 500 MB left -> both finish at t = 5 + 10 = 15.
        assert done[0] == pytest.approx(15.0)
        assert done[1] == pytest.approx(15.0)

    def test_work_conservation(self):
        """Total completion time equals total bytes / bandwidth when the
        channel is never idle."""
        done, ch = run_transfers(
            100.0, [(0.0, 300.0), (0.0, 500.0), (0.0, 200.0)]
        )
        assert max(done.values()) == pytest.approx(10.0)
        assert ch.busy_mb == pytest.approx(1000.0)

    def test_transfer_counter(self):
        _, ch = run_transfers(100.0, [(0.0, 10.0), (1.0, 10.0), (2.0, 10.0)])
        assert ch.n_transfers == 3


class TestRequestOverhead:
    def test_overhead_delays_entry(self):
        done, _ = run_transfers(100.0, [(0.0, 1000.0)], overhead=2.0)
        assert done[0] == pytest.approx(12.0)

    def test_multiple_requests_serialize_overhead(self):
        q = EventQueue()
        ch = SharedChannel(q, 100.0, request_overhead_s=0.5)
        done = []
        ch.start_transfer(100.0, lambda: done.append(q.now), n_requests=4)
        q.run()
        assert done[0] == pytest.approx(4 * 0.5 + 1.0)

    def test_overhead_does_not_consume_bandwidth(self):
        # A transfer in its setup phase must not slow an active one.
        q = EventQueue()
        ch = SharedChannel(q, 100.0, request_overhead_s=5.0)
        done = {}
        ch.start_transfer(0.0, lambda: None)  # trivial
        q.schedule_at(0.0, lambda: ch.start_transfer(300.0, lambda: done.__setitem__("a", q.now)))

        def late():
            ch.start_transfer(100.0, lambda: done.__setitem__("b", q.now))

        q.schedule_at(0.0, late)
        q.run()
        # "a" enters at t=5, "b" enters at t=5: both share from t=5.
        assert done["b"] == pytest.approx(5.0 + 2.0, abs=0.01)

    def test_negative_overhead_rejected(self):
        with pytest.raises(SimulationError, match="overhead"):
            SharedChannel(EventQueue(), 100.0, request_overhead_s=-1.0)


class TestRates:
    def test_current_rate_reflects_membership(self):
        q = EventQueue()
        ch = SharedChannel(q, 100.0)
        assert ch.current_rate_mb_s() == 100.0
        ch.start_transfer(1000.0, lambda: None)
        ch.start_transfer(1000.0, lambda: None)
        assert ch.active_transfers == 2
        assert ch.current_rate_mb_s() == 50.0
