"""Unit-level behaviour of the experiments layer (result APIs, costing)."""

import pytest

from repro.cloud.storage import Tier
from repro.experiments.common import (
    fig1_capacity,
    single_config_billed_gb,
    single_config_cost,
)
from repro.experiments.measure import measure_plan
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec


class TestFig1Capacity:
    def test_block_tiers_get_500gb_volumes(self):
        assert fig1_capacity(Tier.PERS_SSD) == {Tier.PERS_SSD: 500.0}
        assert fig1_capacity(Tier.PERS_HDD) == {Tier.PERS_HDD: 500.0}

    def test_eph_gets_one_volume(self):
        assert fig1_capacity(Tier.EPH_SSD) == {Tier.EPH_SSD: 375.0}

    def test_objstore_gets_helper(self):
        caps = fig1_capacity(Tier.OBJ_STORE)
        assert list(caps) == [Tier.PERS_SSD]


class TestSingleConfigCost:
    @pytest.fixture()
    def job(self):
        return JobSpec(job_id="j", app=SORT, input_gb=100.0)

    def test_eph_bills_backing_objstore(self, job, provider, char_cluster):
        billed = single_config_billed_gb(
            job, Tier.EPH_SSD, fig1_capacity(Tier.EPH_SSD), char_cluster, provider
        )
        assert billed[Tier.OBJ_STORE] == pytest.approx(
            job.input_gb + job.output_gb
        )
        assert billed[Tier.EPH_SSD] == pytest.approx(375.0 * 10)

    def test_objstore_bills_dataset_plus_helper(self, job, provider, char_cluster):
        billed = single_config_billed_gb(
            job, Tier.OBJ_STORE, fig1_capacity(Tier.OBJ_STORE), char_cluster, provider
        )
        assert billed[Tier.OBJ_STORE] == pytest.approx(job.footprint_gb)
        assert billed[Tier.PERS_SSD] > 0

    def test_cost_grows_with_runtime(self, job, provider, char_cluster):
        short = single_config_cost(job, Tier.PERS_SSD, 60.0, char_cluster, provider)
        long = single_config_cost(job, Tier.PERS_SSD, 7200.0, char_cluster, provider)
        assert long.total_usd > short.total_usd


class TestMeasurePlan:
    @pytest.fixture()
    def workload(self):
        jobs = (
            JobSpec(job_id="a", app=SORT, input_gb=100.0, n_maps=100),
            JobSpec(job_id="b", app=SORT, input_gb=100.0, n_maps=100),
            JobSpec(job_id="c", app=GREP, input_gb=60.0, n_maps=60),
        )
        return WorkloadSpec(
            jobs=jobs,
            reuse_sets=(ReuseSet(job_ids=frozenset({"a", "b"}),
                                 lifetime=ReuseLifetime.SHORT),),
        )

    def test_measures_every_job(self, workload, provider, char_cluster):
        from repro.core.plan import TieringPlan

        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        m = measure_plan(workload, plan, char_cluster, provider)
        assert set(m.per_job) == {"a", "b", "c"}
        assert m.makespan_s > 0
        assert m.utility > 0

    def test_engineered_reuse_amortizes_eph_downloads(self, workload, provider,
                                                      char_cluster):
        from repro.core.plan import TieringPlan

        plan = TieringPlan.uniform(workload, Tier.EPH_SSD)
        lucky = measure_plan(workload, plan, char_cluster, provider,
                             reuse_engineered=False)
        engineered = measure_plan(workload, plan, char_cluster, provider,
                                  reuse_engineered=True)
        assert engineered.makespan_s < lucky.makespan_s
        assert engineered.cost.total_usd < lucky.cost.total_usd

    def test_objstore_jobs_get_helper_volume(self, workload, provider,
                                             char_cluster):
        """The measured objStore jobs must shuffle at helper speed, not
        the unsized 48 MB/s floor (regression guard)."""
        from repro.core.plan import TieringPlan

        plan = TieringPlan.uniform(workload, Tier.OBJ_STORE)
        m = measure_plan(workload, plan, char_cluster, provider)
        # Sort-100 on objStore with a 250 GB helper lands near 290 s; the
        # starved-helper bug put it near 570 s.
        assert m.per_job["a"].total_s < 400.0

    def test_invalid_plan_rejected(self, workload, provider, char_cluster):
        from repro.core.plan import Placement, TieringPlan
        from repro.errors import PlanError

        bad = TieringPlan(placements={
            j.job_id: Placement(tier=Tier.PERS_SSD, capacity_gb=1.0)
            for j in workload.jobs
        })
        with pytest.raises(PlanError):
            measure_plan(workload, bad, char_cluster, provider)


class TestResultAccessors:
    def test_fig1_cell_lookup_raises_on_unknown(self):
        from repro.experiments.fig1 import Fig1Result

        empty = Fig1Result(cells=())
        with pytest.raises(KeyError):
            empty.cell("sort", Tier.EPH_SSD)

    def test_fig3_cell_lookup_raises_on_unknown(self):
        from repro.experiments.fig3 import Fig3Result

        empty = Fig3Result(cells=())
        with pytest.raises(KeyError):
            empty.cell("sort", Tier.EPH_SSD, ReuseLifetime.NONE)

    def test_fig5_sweep_lookup_raises_on_unknown(self):
        from repro.experiments.fig5 import Fig5Result

        empty = Fig5Result(hybrids_50_50=(), hdd_sweep=())
        with pytest.raises(KeyError):
            empty.sweep_point(0.5)

    def test_fig7_config_lookup_raises_on_unknown(self):
        from repro.experiments.fig7 import Fig7Result

        empty = Fig7Result(configs=())
        with pytest.raises(KeyError):
            empty.config("CAST")

    def test_fig9_config_lookup_raises_on_unknown(self):
        from repro.experiments.fig9 import Fig9Result

        empty = Fig9Result(configs=())
        with pytest.raises(KeyError):
            empty.config("CAST")
