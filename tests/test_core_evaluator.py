"""Incremental :class:`PlanEvaluator`: bit-exact parity with the naive path.

Every assertion here uses ``==`` on floats deliberately — the evaluator
promises *bit-identical* utilities, makespans and billed capacities, not
approximate ones, and the solvers rely on that to produce identical
plans from identical seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.aws import aws_2015
from repro.cloud.provider import google_cloud_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.core.annealing import AnnealingSchedule
from repro.core.castpp import CastPlusPlus
from repro.core.evaluator import PlanEvaluator, PlanMove
from repro.core.plan import Placement, TieringPlan
from repro.core.solver import CAPACITY_MULTIPLIERS, CastSolver
from repro.core.utility import evaluate_plan
from repro.errors import PlanError
from repro.profiler.profiler import build_model_matrix
from repro.workloads.swim import synthesize_small_workload

# ---------------------------------------------------------------------------
# Deployments under test: both provider catalogs, one shared cluster.
# ---------------------------------------------------------------------------

CLUSTER = ClusterSpec(n_vms=25)
DEPLOYMENTS = {
    name: (prov, build_model_matrix(provider=prov, cluster_spec=CLUSTER))
    for name, prov in (("google", google_cloud_2015()), ("aws", aws_2015()))
}


def make_workload(n_jobs=12, seed=11):
    return synthesize_small_workload(n_jobs=n_jobs, rng=np.random.default_rng(seed))


def seed_plan(workload, provider, seed=3):
    """A random feasible plan: every job on a random tier, exact fit."""
    rng = np.random.default_rng(seed)
    tiers = list(provider.tiers)
    return TieringPlan.exact_fit(
        workload, {j.job_id: tiers[rng.integers(len(tiers))] for j in workload.jobs}
    )


def random_changes(workload, provider, plan, rng):
    """A solver-shaped move: retier/resize one job, or bulk-move an app."""
    tiers = list(provider.tiers)
    jobs = list(workload.jobs)
    if rng.integers(4) == 3:
        by_app = workload.jobs_by_app()
        app = sorted(by_app)[rng.integers(len(by_app))]
        tier = tiers[rng.integers(len(tiers))]
        mult = CAPACITY_MULTIPLIERS[rng.integers(len(CAPACITY_MULTIPLIERS))]
        return tuple(
            (j.job_id, Placement(tier=tier, capacity_gb=j.footprint_gb * mult))
            for j in by_app[app]
        )
    job = jobs[rng.integers(len(jobs))]
    tier = tiers[rng.integers(len(tiers))]
    mult = CAPACITY_MULTIPLIERS[rng.integers(len(CAPACITY_MULTIPLIERS))]
    return ((job.job_id, Placement(tier=tier, capacity_gb=job.footprint_gb * mult)),)


def assert_matches_naive(evaluation, workload, plan, matrix, provider, reuse_aware):
    ref = evaluate_plan(
        workload, plan, CLUSTER, matrix, provider, reuse_aware=reuse_aware
    )
    assert evaluation.utility == ref.utility
    assert evaluation.makespan_s == ref.makespan_s
    assert dict(evaluation.capacity_gb) == dict(ref.capacity_gb)
    assert evaluation.cost == ref.cost
    assert dict(evaluation.per_job) == dict(ref.per_job)


# ---------------------------------------------------------------------------
# Full-evaluation parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("deployment", sorted(DEPLOYMENTS))
@pytest.mark.parametrize("reuse_aware", [False, True])
class TestFullEvaluationParity:
    def test_exact_fit_plan(self, deployment, reuse_aware):
        provider, matrix = DEPLOYMENTS[deployment]
        workload = make_workload()
        plan = seed_plan(workload, provider)
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider, reuse_aware=reuse_aware)
        assert_matches_naive(
            ev.evaluate(plan), workload, plan, matrix, provider, reuse_aware
        )

    def test_overprovisioned_plan(self, deployment, reuse_aware):
        provider, matrix = DEPLOYMENTS[deployment]
        workload = make_workload()
        tiers = list(provider.tiers)
        plan = TieringPlan(
            placements={
                j.job_id: Placement(
                    tier=tiers[i % len(tiers)], capacity_gb=j.footprint_gb * 2.0
                )
                for i, j in enumerate(workload.jobs)
            }
        )
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider, reuse_aware=reuse_aware)
        assert_matches_naive(
            ev.evaluate(plan), workload, plan, matrix, provider, reuse_aware
        )

    def test_call_protocol_returns_utility(self, deployment, reuse_aware):
        provider, matrix = DEPLOYMENTS[deployment]
        workload = make_workload(n_jobs=6)
        plan = seed_plan(workload, provider)
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider, reuse_aware=reuse_aware)
        ref = evaluate_plan(
            workload, plan, CLUSTER, matrix, provider, reuse_aware=reuse_aware
        )
        assert ev(plan) == ref.utility


# ---------------------------------------------------------------------------
# Propose/accept random-walk parity (the delta path)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("deployment", sorted(DEPLOYMENTS))
@pytest.mark.parametrize("reuse_aware", [False, True])
class TestMoveSequenceParity:
    def test_random_walk(self, deployment, reuse_aware):
        provider, matrix = DEPLOYMENTS[deployment]
        workload = make_workload()
        plan = seed_plan(workload, provider)
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider, reuse_aware=reuse_aware)
        ev.reset(plan)
        rng = np.random.default_rng(29)
        for step in range(60):
            changes = random_changes(workload, provider, plan, rng)
            neighbor = plan.with_placements(changes)
            u_inc = ev.propose(neighbor, PlanMove(changes))
            ref = evaluate_plan(
                workload, neighbor, CLUSTER, matrix, provider, reuse_aware=reuse_aware
            )
            assert u_inc == ref.utility, f"step {step}: delta != naive"
            if rng.random() < 0.6:
                ev.accept()
                plan = neighbor
                assert_matches_naive(
                    ev.last_evaluation, workload, plan, matrix, provider, reuse_aware
                )

    def test_noop_move_returns_base_utility(self, deployment, reuse_aware):
        provider, matrix = DEPLOYMENTS[deployment]
        workload = make_workload(n_jobs=6)
        plan = seed_plan(workload, provider)
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider, reuse_aware=reuse_aware)
        base_u = ev.reset(plan)
        jid = workload.jobs[0].job_id
        changes = ((jid, plan.placements[jid]),)
        assert ev.propose(plan.with_placements(changes), PlanMove(changes)) == base_u
        ev.accept()
        assert_matches_naive(
            ev.last_evaluation, workload, plan, matrix, provider, reuse_aware
        )


class TestProposalSafety:
    """Rejected or failed proposals must never corrupt the base state."""

    def setup_method(self):
        self.provider, self.matrix = DEPLOYMENTS["google"]
        self.workload = make_workload(n_jobs=8)
        self.plan = seed_plan(self.workload, self.provider)
        self.ev = PlanEvaluator(self.workload, CLUSTER, self.matrix, self.provider)
        self.base_u = self.ev.reset(self.plan)

    def _one_change(self, mult=1.5, tier=Tier.PERS_SSD):
        job = self.workload.jobs[0]
        return (
            (job.job_id, Placement(tier=tier, capacity_gb=job.footprint_gb * mult)),
        )

    def test_unaccepted_proposals_do_not_move_the_base(self):
        for mult in (1.25, 2.0, 3.0):
            changes = self._one_change(mult=mult)
            self.ev.propose(self.plan.with_placements(changes), PlanMove(changes))
        # Base unchanged: a no-op proposal still reports the base utility.
        jid = self.workload.jobs[1].job_id
        noop = ((jid, self.plan.placements[jid]),)
        assert (
            self.ev.propose(self.plan.with_placements(noop), PlanMove(noop))
            == self.base_u
        )

    def test_eq3_violation_raises_and_preserves_base(self):
        job = self.workload.jobs[0]
        bad = ((job.job_id, Placement(tier=Tier.PERS_SSD, capacity_gb=0.5)),)
        with pytest.raises(PlanError, match="Eq. 3"):
            self.ev.propose(self.plan.with_placements(bad), PlanMove(bad))
        changes = self._one_change()
        ref = evaluate_plan(
            self.workload,
            self.plan.with_placements(changes),
            CLUSTER,
            self.matrix,
            self.provider,
            reuse_aware=False,
        )
        assert (
            self.ev.propose(self.plan.with_placements(changes), PlanMove(changes))
            == ref.utility
        )

    def test_unknown_job_rejected(self):
        bad = (("no-such-job", Placement(tier=Tier.PERS_SSD, capacity_gb=10.0)),)
        with pytest.raises(PlanError, match="no-such-job"):
            self.ev.propose(self.plan, PlanMove(bad))

    def test_accept_without_proposal_rejected(self):
        ev = PlanEvaluator(self.workload, CLUSTER, self.matrix, self.provider)
        ev.reset(self.plan)
        changes = self._one_change()
        ev.propose(self.plan.with_placements(changes), PlanMove(changes))
        ev.accept()
        with pytest.raises(PlanError, match="accept"):
            ev.accept()


# ---------------------------------------------------------------------------
# Property-based parity: random seeded move sequences
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    deployment=st.sampled_from(sorted(DEPLOYMENTS)),
    reuse_aware=st.booleans(),
    walk_seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_moves=st.integers(min_value=1, max_value=12),
)
def test_property_random_move_sequences_agree(
    deployment, reuse_aware, walk_seed, n_moves
):
    provider, matrix = DEPLOYMENTS[deployment]
    workload = make_workload(n_jobs=8)
    plan = seed_plan(workload, provider)
    ev = PlanEvaluator(workload, CLUSTER, matrix, provider, reuse_aware=reuse_aware)
    ev.reset(plan)
    rng = np.random.default_rng(walk_seed)
    for _ in range(n_moves):
        changes = random_changes(workload, provider, plan, rng)
        neighbor = plan.with_placements(changes)
        u_inc = ev.propose(neighbor, PlanMove(changes))
        ref = evaluate_plan(
            workload, neighbor, CLUSTER, matrix, provider, reuse_aware=reuse_aware
        )
        assert u_inc == ref.utility
        ev.accept()
        plan = neighbor
        final = ev.last_evaluation
        assert final.makespan_s == ref.makespan_s
        assert dict(final.capacity_gb) == dict(ref.capacity_gb)


# ---------------------------------------------------------------------------
# Solver-level parity: the acceptance criterion
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("deployment", sorted(DEPLOYMENTS))
@pytest.mark.parametrize("solver_cls", [CastSolver, CastPlusPlus])
class TestSolverParity:
    def test_incremental_solve_is_bit_identical(self, deployment, solver_cls):
        provider, matrix = DEPLOYMENTS[deployment]
        workload = make_workload(n_jobs=16)
        schedule = AnnealingSchedule(iter_max=400)
        kwargs = dict(
            cluster_spec=CLUSTER,
            matrix=matrix,
            provider=provider,
            schedule=schedule,
            seed=7,
        )
        naive = solver_cls(incremental=False, **kwargs)
        fast = solver_cls(incremental=True, **kwargs)
        initial = naive.initial_plan(workload)
        r_naive = naive.solve(workload, initial=initial)
        r_fast = fast.solve(workload, initial=initial)
        assert r_fast.best_utility == r_naive.best_utility
        assert r_fast.best_state.to_dict() == r_naive.best_state.to_dict()
        assert r_fast.accepted == r_naive.accepted
        assert naive.last_evaluator is None
        assert fast.last_evaluator is not None


# ---------------------------------------------------------------------------
# Cache counters
# ---------------------------------------------------------------------------


class TestCounters:
    def test_counter_lifecycle(self):
        provider, matrix = DEPLOYMENTS["google"]
        workload = make_workload(n_jobs=8)
        plan = seed_plan(workload, provider)
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider)

        ev.reset(plan)
        stats = ev.stats()
        assert stats["full_evaluations"] == 1
        assert stats["incremental_evaluations"] == 0
        assert stats["cache_misses"] == len(workload.jobs)
        assert stats["cache_entries"] == stats["cache_misses"]

        job = workload.jobs[0]
        changes = (
            (job.job_id, Placement(tier=Tier.PERS_SSD, capacity_gb=job.footprint_gb * 2)),
        )
        neighbor = plan.with_placements(changes)
        ev.propose(neighbor, PlanMove(changes))
        stats = ev.stats()
        assert stats["incremental_evaluations"] == 1
        assert stats["jobs_reestimated"] + stats["jobs_skipped"] == len(workload.jobs)

        # Proposing the identical move again must hit the memo: the
        # number of distinct cached estimates stays put.
        entries = stats["cache_entries"]
        misses = stats["cache_misses"]
        ev.propose(neighbor, PlanMove(changes))
        stats = ev.stats()
        assert stats["cache_entries"] == entries
        assert stats["cache_misses"] == misses

    def test_saturated_tiers_invalidate_nothing(self):
        # ephSSD/objStore bandwidths are capacity-flat: resizing a job
        # there re-keys to the same bandwidth identity, so no member of
        # the tier is re-estimated.
        provider, matrix = DEPLOYMENTS["google"]
        workload = make_workload(n_jobs=8)
        plan = TieringPlan.exact_fit(
            workload, {j.job_id: Tier.OBJ_STORE for j in workload.jobs}
        )
        ev = PlanEvaluator(workload, CLUSTER, matrix, provider)
        ev.reset(plan)
        job = workload.jobs[0]
        changes = (
            (job.job_id, Placement(tier=Tier.OBJ_STORE, capacity_gb=job.footprint_gb * 4)),
        )
        ev.propose(plan.with_placements(changes), PlanMove(changes))
        stats = ev.stats()
        assert stats["jobs_reestimated"] == 0
        assert stats["jobs_skipped"] == len(workload.jobs)
