"""Vectorized fast path: parity, fallbacks, cache coherence, counters."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.provider import google_cloud_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.experiments.runner import ExperimentRunner
from repro.obs.metrics import MetricsRegistry
from repro.simulator import (
    ANALYTIC_RTOL,
    batch_results_match,
    fallback_reason,
    fastpath_stats,
    register_fastpath_metrics,
    reset_fastpath_stats,
    simulate_batch,
    simulate_job,
)
from repro.simulator.cache import job_sim_fingerprint, simulation_cache
from repro.simulator.engine import ANALYTIC_KEY_PREFIX, resolve_sim_inputs
from repro.simulator.hdfs import BlockPlacement
from repro.workloads.apps import GREP, JOIN, KMEANS, PAGERANK, SORT
from repro.workloads.spec import JobSpec
from repro.workloads.swim import synthesize_small_workload

APPS = (SORT, JOIN, GREP, KMEANS, PAGERANK)
TIERS = (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE)


def _fast_env(monkeypatch, cache: str = "0") -> None:
    monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
    monkeypatch.delenv("REPRO_SIM_ANALYTIC", raising=False)
    monkeypatch.setenv("REPRO_SIM_CACHE", cache)


class TestFallbackReason:
    def test_plain_job_is_eligible(self):
        job = JobSpec(job_id="s", app=SORT, input_gb=50.0)
        assert fallback_reason(job, None, True, True) is None

    def test_block_placement_falls_back(self):
        job = JobSpec(job_id="g", app=GREP, input_gb=3.0, n_maps=12)
        bp = BlockPlacement.fractional(12, Tier.PERS_SSD, Tier.PERS_HDD, 0.5)
        assert fallback_reason(job, bp, True, True) == "placement"

    def test_phased_staging_falls_back(self):
        job = JobSpec(job_id="s", app=SORT, input_gb=50.0)
        assert fallback_reason(job, None, False, True) == "phased"
        assert fallback_reason(job, None, True, False) == "phased"


class TestAnalyticParity:
    @pytest.fixture(autouse=True)
    def _env(self, monkeypatch):
        _fast_env(monkeypatch)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        app=st.sampled_from(APPS),
        input_gb=st.floats(
            min_value=0.05, max_value=300.0,
            allow_nan=False, allow_infinity=False,
        ),
        tier=st.sampled_from(TIERS),
        n_vms=st.sampled_from([1, 2, 3, 5, 8]),
    )
    def test_random_jobs_match_engine_within_gate(
        self, app, input_gb, tier, n_vms
    ):
        job = JobSpec(job_id="j", app=app, input_gb=input_gb)
        cluster = ClusterSpec(n_vms=n_vms)
        prov = google_cloud_2015()
        exact = simulate_job(job, tier, cluster, prov)
        fast = simulate_batch([(job, tier, None)], cluster, prov, fast_path=True)
        assert fast[0].events == 0  # closed form, not the engine
        assert batch_results_match(fast, [exact], rtol=ANALYTIC_RTOL) == []

    def test_small_workload_all_tiers(self):
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=25)
        workload = synthesize_small_workload()
        items = [(j, t, None) for t in TIERS for j in workload.jobs]
        exact = [
            simulate_job(j, t, cluster, prov) for j, t, _ in items
        ]
        fast = simulate_batch(items, cluster, prov, fast_path=True)
        assert [r.job_id for r in fast] == [j.job_id for j, _, _ in items]
        assert batch_results_match(fast, exact, rtol=ANALYTIC_RTOL) == []


class TestFallbackPaths:
    def test_contended_placement_is_bit_exact(self, monkeypatch):
        _fast_env(monkeypatch)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        job = JobSpec(job_id="g", app=GREP, input_gb=3.0, n_maps=12)
        bp = BlockPlacement.fractional(12, Tier.PERS_SSD, Tier.PERS_HDD, 0.5)
        direct = simulate_job(
            job, Tier.PERS_SSD, cluster, prov, block_placement=bp
        )
        reset_fastpath_stats()
        batch = simulate_batch(
            [(job, Tier.PERS_SSD, None)], cluster, prov,
            block_placements=[bp], fast_path=True,
        )
        assert batch[0].events >= 1  # the event engine ran
        assert batch[0] == direct
        assert fastpath_stats()["fallback_reasons"] == {"placement": 1}

    def test_phased_job_is_bit_exact(self, monkeypatch):
        _fast_env(monkeypatch)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        job = JobSpec(job_id="s", app=SORT, input_gb=40.0)
        direct = simulate_job(
            job, Tier.EPH_SSD, cluster, prov, stage_in=False
        )
        reset_fastpath_stats()
        batch = simulate_batch(
            [(job, Tier.EPH_SSD, None)], cluster, prov,
            stage_in=False, fast_path=True,
        )
        assert batch[0].events >= 1
        assert batch[0] == direct
        assert fastpath_stats()["fallback_reasons"] == {"phased": 1}

    def test_reference_env_forces_bit_exact_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        jobs = [
            JobSpec(job_id=f"s{i}", app=SORT, input_gb=10.0 * (i + 1))
            for i in range(3)
        ]
        items = [(j, Tier.OBJ_STORE, None) for j in jobs]
        direct = [simulate_job(j, t, cluster, prov) for j, t, _ in items]
        reset_fastpath_stats()
        batch = simulate_batch(items, cluster, prov, fast_path=True)
        assert batch == direct  # float-for-float identical
        assert fastpath_stats()["analytic"] == 0
        assert fastpath_stats()["fallback_reasons"] == {"reference": 3}

    def test_fast_path_false_disables(self, monkeypatch):
        _fast_env(monkeypatch)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        job = JobSpec(job_id="s", app=SORT, input_gb=20.0)
        direct = simulate_job(job, Tier.PERS_SSD, cluster, prov)
        batch = simulate_batch(
            [(job, Tier.PERS_SSD, None)], cluster, prov, fast_path=False
        )
        assert batch[0] == direct


class TestCacheCoherence:
    def test_warm_hits_stay_bit_exact_through_batch(self, monkeypatch):
        _fast_env(monkeypatch, cache="1")
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=25)
        workload = synthesize_small_workload()
        items = [(j, Tier.PERS_SSD, None) for j in workload.jobs]
        simulation_cache().clear()
        cold = simulate_batch(items, cluster, prov, fast_path=True)
        reset_fastpath_stats()
        warm = simulate_batch(items, cluster, prov, fast_path=True)
        assert warm == cold
        stats = fastpath_stats()
        assert stats["cache_hits"] + stats["deduped"] == len(items)
        assert stats["analytic"] == 0  # nothing re-evaluated

    def test_analytic_results_never_shadow_engine_keys(self, monkeypatch):
        _fast_env(monkeypatch, cache="1")
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        job = JobSpec(job_id="s", app=SORT, input_gb=33.0)
        simulation_cache().clear()
        fast = simulate_batch(
            [(job, Tier.PERS_SSD, None)], cluster, prov, fast_path=True
        )
        assert fast[0].events == 0
        caps, placement, out_tier = resolve_sim_inputs(
            job, Tier.PERS_SSD, cluster, prov
        )
        key = job_sim_fingerprint(
            job, Tier.PERS_SSD, cluster, prov, caps, out_tier,
            stage_in=True, stage_out=True,
            placement_tiers=None if placement is None else tuple(placement.tiers),
        )
        cache = simulation_cache()
        assert cache.get(key) is None  # engine key untouched
        assert cache.get(ANALYTIC_KEY_PREFIX + key) is not None
        # The engine path computes fresh and stays authoritative.
        engine = simulate_job(job, Tier.PERS_SSD, cluster, prov)
        assert engine.events >= 1
        assert cache.get(key) is not None


class TestRunnerFastPath:
    def test_serial_fast_runner_within_gate(self, monkeypatch):
        _fast_env(monkeypatch)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=25)
        workload = synthesize_small_workload()
        items = [(j, Tier.OBJ_STORE, None) for j in workload.jobs]
        exact = [simulate_job(j, t, cluster, prov) for j, t, _ in items]
        with ExperimentRunner(0, fast_path=True) as r:
            fast = r.simulate_jobs(items, cluster, prov)
            assert r.stats()["fast_path"] is True
        assert batch_results_match(fast, exact, rtol=ANALYTIC_RTOL) == []

    def test_parallel_fast_runner_matches_serial_fast(self, monkeypatch):
        _fast_env(monkeypatch, cache="1")
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=25)
        workload = synthesize_small_workload()
        items = [(j, Tier.PERS_HDD, None) for j in workload.jobs]
        simulation_cache().clear()
        with ExperimentRunner(0, fast_path=True) as r:
            serial = r.simulate_jobs(items, cluster, prov)
        simulation_cache().clear()
        with ExperimentRunner(2, fast_path=True) as r:
            parallel = r.simulate_jobs(items, cluster, prov)
        assert parallel == serial  # elementwise math is chunk-invariant

    def test_default_runner_stays_bit_exact(self, monkeypatch):
        _fast_env(monkeypatch, cache="1")
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        jobs = [
            JobSpec(job_id=f"j{i}", app=KMEANS, input_gb=5.0 + i)
            for i in range(4)
        ]
        items = [(j, Tier.PERS_SSD, None) for j in jobs]
        direct = [simulate_job(j, t, cluster, prov) for j, t, _ in items]
        simulation_cache().clear()
        with ExperimentRunner(2) as r:  # fast_path defaults off
            batch = r.simulate_jobs(items, cluster, prov)
        assert batch == direct


class TestFastpathMetrics:
    def test_counters_exposed_via_registry(self, monkeypatch):
        _fast_env(monkeypatch)
        reg = MetricsRegistry()
        register_fastpath_metrics(reg)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        job = JobSpec(job_id="s", app=SORT, input_gb=12.0)
        reset_fastpath_stats()
        simulate_batch([(job, Tier.PERS_SSD, None)], cluster, prov,
                       fast_path=True)
        body = reg.to_prometheus()
        assert 'cast_sim_fastpath_total{path="analytic"} 1' in body
        assert "cast_sim_fastpath_batches_total 1" in body

    def test_register_is_idempotent(self):
        reg = MetricsRegistry()
        register_fastpath_metrics(reg)
        register_fastpath_metrics(reg)  # keyed collector: no duplicate
        assert reg.to_prometheus().count("# TYPE cast_sim_fastpath_total") == 1
