"""Observability threaded through the stack: service, pool, solver.

The acceptance surface of the unified observability layer: all the
ad-hoc counter surfaces report through one registry with the legacy
``stats`` payload intact, a solve's trace nests across every layer
(and across process boundaries), and solver progress callbacks sample
the annealers without disturbing determinism.
"""

import asyncio
import io

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.progress import ProgressPrinter, SolverProgress
from repro.obs.tracing import trace_collector
from repro.service import PlannerClient, PlannerServer, SolverPool
from repro.workloads.io import workload_to_dict
from repro.workloads.swim import synthesize_small_workload


def small_spec(n_jobs=4):
    return workload_to_dict(synthesize_small_workload(n_jobs=n_jobs))


def plan_request(seed=7, iterations=60, **overrides):
    request = {
        "op": "plan",
        "spec": small_spec(),
        "provider": "google",
        "n_vms": 5,
        "iterations": iterations,
        "seed": seed,
    }
    request.update(overrides)
    return request


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def _clean_collector():
    trace_collector().clear()
    yield
    trace_collector().clear()


async def one_server_session(fn, **server_kwargs):
    server = PlannerServer(
        pool=SolverPool(processes=0, restarts=2), **server_kwargs
    )
    await server.start()
    host, port = server.address
    try:
        async with PlannerClient(host, port) as client:
            return await fn(server, client)
    finally:
        await server.stop()


class TestServiceMetricsOp:
    def test_prometheus_payload_covers_every_surface(self):
        async def scenario(server, client):
            await client.plan(small_spec(), n_vms=5, iterations=60, seed=1)
            return await client.metrics()

        payload = run(one_server_session(scenario))
        assert payload["format"] == "prometheus"
        body = payload["body"]
        # the five migrated counter surfaces, one registry:
        assert "cast_service_events_total" in body        # server counters
        assert "cast_plan_cache_events_total" in body     # PlanCache
        assert "cast_pool_tasks_total" in body            # SolverPool
        assert "cast_evaluator_events_total" in body      # evaluator totals
        assert "cast_sim_cache_events_total" in body      # simulation cache
        assert "# TYPE cast_service_solve_seconds histogram" in body

    def test_json_payload_has_latency_quantiles(self):
        async def scenario(server, client):
            await client.plan(small_spec(), n_vms=5, iterations=60, seed=1)
            return await client.metrics(format="json")

        payload = run(one_server_session(scenario))
        entry = payload["metrics"]["cast_service_solve_seconds"]
        ((sample),) = entry["values"]
        assert set(sample["quantiles"]) == {"p50", "p95", "p99"}
        assert sample["value"]["count"] == 1

    def test_unknown_format_is_protocol_error(self):
        from repro.errors import ProtocolError

        async def scenario(server, client):
            with pytest.raises(ProtocolError, match="format"):
                await client.metrics(format="xml")

        run(one_server_session(scenario))


class TestStatsBackwardCompat:
    def test_counter_keys_and_values(self):
        async def scenario(server, client):
            await client.plan(small_spec(), n_vms=5, iterations=60, seed=1)
            await client.plan(small_spec(), n_vms=5, iterations=60, seed=1)
            stats = await client.stats()
            # the local property preserves the legacy key order too
            assert list(server.counters) == [
                "requests", "bad_requests", "dedup_joined", "solves_ok",
                "solve_errors", "timeouts", "rejected",
            ]
            return stats

        stats = run(one_server_session(scenario))
        assert stats["counters"]["solves_ok"] == 1  # second hit the cache
        assert stats["requests"]["plan"] == 2
        assert stats["cache"]["hits"] == 1
        assert set(stats["pool"]) == {
            "processes", "default_restarts", "tasks_started",
            "tasks_completed", "solves_completed",
        }
        assert stats["evaluator"]  # evaluator totals accumulated

    def test_shared_registry_injection(self):
        reg = MetricsRegistry()

        async def scenario(server, client):
            assert server.metrics is reg
            await client.ping()

        run(one_server_session(scenario, registry=reg))
        assert reg.counter("cast_service_requests_total").value() == 1.0

    def test_reset_stats_zeroes_uptime_and_counters(self):
        server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
        server._events.inc(event="solves_ok")
        assert server.counters["solves_ok"] == 1
        server._reset_stats()
        assert server.counters["solves_ok"] == 0
        assert server.uptime_s < 1.0


class TestTracePropagation:
    def test_every_response_carries_a_trace_id(self):
        async def scenario(server, client):
            pong = await client.request("ping")
            solved = await client.plan(
                small_spec(), n_vms=5, iterations=60, seed=2
            )
            cached = await client.plan(
                small_spec(), n_vms=5, iterations=60, seed=2
            )
            return pong, solved, cached

        pong, solved, cached = run(one_server_session(scenario))
        assert pong["trace_id"]
        assert solved["trace_id"] and cached["trace_id"]
        # a cache hit is a new request: it gets its own trace, not the
        # one that originally solved the plan
        assert cached["cached"] and cached["trace_id"] != solved["trace_id"]

    def test_solve_trace_nests_across_layers(self):
        async def scenario(server, client):
            result = await client.plan(
                small_spec(), n_vms=5, iterations=60, seed=3
            )
            return result["trace_id"]

        trace_id = run(one_server_session(scenario))
        spans = trace_collector().records(trace_id=trace_id)
        by_id = {s.span_id: s for s in spans}
        solver = next(s for s in spans if s.name == "solver.solve")
        chain = []
        node = solver
        while node is not None:
            chain.append(node.name)
            node = by_id.get(node.parent_id)
        assert chain == [
            "solver.solve", "pool.restart", "pool.solve",
            "service.solve", "service.request",
        ]

    def test_concurrent_solves_do_not_share_traces(self):
        async def scenario(server, client):
            host, port = server.address

            async def solve(seed):
                async with PlannerClient(host, port) as c:
                    r = await c.plan(
                        small_spec(), n_vms=5, iterations=60, seed=seed
                    )
                    return r["trace_id"]

            return await asyncio.gather(solve(11), solve(12))

        t1, t2 = run(one_server_session(scenario, max_inflight=2))
        assert t1 != t2
        names1 = {s.name for s in trace_collector().records(trace_id=t1)}
        names2 = {s.name for s in trace_collector().records(trace_id=t2)}
        assert "solver.solve" in names1 and "solver.solve" in names2


class TestProcessPoolRollUp:
    def test_worker_metrics_and_spans_come_home(self):
        get_registry().reset()
        trace_collector().clear()
        pool = SolverPool(processes=2, restarts=2)
        try:
            result = pool.solve_sync(plan_request(seed=5, iterations=40))
        finally:
            pool.shutdown()
        assert "obs" not in result  # payload absorbed, not leaked
        solves = get_registry().counter(
            "cast_solver_solves_total", labelnames=("backend",)
        )
        assert solves.value(backend="anneal") == 2.0
        names = [s.name for s in trace_collector().records()]
        assert names.count("pool.restart") == 2
        assert "solver.solve" in names

    def test_thread_pool_records_into_bound_registry(self):
        reg = MetricsRegistry()
        pool = SolverPool(processes=0, restarts=2)
        pool.bind_metrics(reg)
        try:
            pool.solve_sync(plan_request(seed=6, iterations=40))
        finally:
            pool.shutdown()
        solves = reg.counter(
            "cast_solver_solves_total", labelnames=("backend",)
        )
        assert solves.value(backend="anneal") == 2.0
        assert "cast_pool_solves_total 1" in reg.to_prometheus()


class TestSolverProgress:
    def test_anneal_progress_sampling(self):
        from repro import plan_workload
        from repro.workloads.swim import synthesize_small_workload

        rows = []
        plan_workload(
            synthesize_small_workload(n_jobs=4), n_vms=5, iterations=400,
            seed=9, progress=rows.append, progress_every=100,
        )
        assert len(rows) == 4
        assert all(isinstance(r, SolverProgress) for r in rows)
        assert rows[-1].iteration == 400
        assert rows[-1].iter_max == 400
        assert rows[0].backend == "anneal"
        assert 0.0 <= rows[-1].acceptance_rate <= 1.0

    def test_tempering_progress_reports_swaps(self):
        from repro import plan_workload
        from repro.workloads.swim import synthesize_small_workload

        rows = []
        plan_workload(
            synthesize_small_workload(n_jobs=4), n_vms=5, iterations=300,
            seed=9, backend="tempering", replicas=4,
            progress=rows.append, progress_every=100,
        )
        assert rows
        last = rows[-1]
        assert last.backend == "tempering"
        assert last.replicas == 4
        assert last.iteration >= 300
        assert last.swaps_attempted >= last.swaps_accepted >= 0

    def test_progress_does_not_change_the_plan(self):
        from repro import plan_workload
        from repro.workloads.swim import synthesize_small_workload

        workload = synthesize_small_workload(n_jobs=4)
        silent = plan_workload(workload, n_vms=5, iterations=300, seed=4)
        watched = plan_workload(
            workload, n_vms=5, iterations=300, seed=4,
            progress=lambda p: None, progress_every=50,
        )
        assert silent.plan.to_dict() == watched.plan.to_dict()
        assert silent.evaluation.utility == watched.evaluation.utility

    def test_progress_printer_format(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(SolverProgress(
            backend="anneal", iteration=500, iter_max=1000,
            temperature=0.5, best_utility=0.0042, accepted=250, proposed=500,
        ))
        out = stream.getvalue()
        assert "[anneal]" in out and "500/1000" in out and "50.0%" in out
        assert printer.last().iteration == 500
