"""Workflow DAGs: structure, validation, the paper's instances."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.apps import SORT
from repro.workloads.spec import JobSpec
from repro.workloads.workflow import (
    Workflow,
    evaluation_workflow_suite,
    search_engine_workflow,
)


def job(jid, gb=10.0, app=SORT):
    return JobSpec(job_id=jid, app=app, input_gb=gb)


class TestValidation:
    def test_cycle_rejected(self):
        with pytest.raises(WorkloadError, match="cycle"):
            Workflow(
                name="w", jobs=(job("a"), job("b")),
                edges=(("a", "b"), ("b", "a")), deadline_s=60.0,
            )

    def test_self_loop_rejected(self):
        with pytest.raises(WorkloadError, match="self-loop"):
            Workflow(name="w", jobs=(job("a"),), edges=(("a", "a"),), deadline_s=60.0)

    def test_edge_to_unknown_job_rejected(self):
        with pytest.raises(WorkloadError, match="unknown job"):
            Workflow(name="w", jobs=(job("a"),), edges=(("a", "b"),), deadline_s=60.0)

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(WorkloadError, match="deadline"):
            Workflow(name="w", jobs=(job("a"),), edges=(), deadline_s=0.0)

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            Workflow(name="w", jobs=(job("a"), job("a")), edges=(), deadline_s=60.0)


class TestGraphViews:
    @pytest.fixture()
    def diamond(self):
        return Workflow(
            name="d",
            jobs=(job("a"), job("b"), job("c"), job("d")),
            edges=(("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")),
            deadline_s=100.0,
        )

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_roots_and_neighbors(self, diamond):
        assert diamond.roots() == ["a"]
        assert diamond.successors("a") == ["b", "c"]
        assert diamond.predecessors("d") == ["b", "c"]

    def test_critical_path(self, diamond):
        durations = {"a": 10.0, "b": 5.0, "c": 20.0, "d": 1.0}
        path, length = diamond.critical_path(durations)
        assert path == ["a", "c", "d"]
        assert length == pytest.approx(31.0)

    def test_as_workload(self, diamond):
        wl = diamond.as_workload()
        assert wl.n_jobs == 4
        assert wl.reuse_sets == ()

    def test_job_lookup_missing(self, diamond):
        with pytest.raises(WorkloadError):
            diamond.job("zz")


class TestSearchEngineWorkflow:
    def test_fig4_structure(self):
        wf = search_engine_workflow()
        assert wf.n_jobs == 4
        assert wf.roots() == ["grep-250g"]
        assert set(wf.successors("grep-250g")) == {"pagerank-20g", "sort-120g"}
        assert set(wf.predecessors("join-120g")) == {"pagerank-20g", "sort-120g"}

    def test_fig4_job_sizes(self):
        wf = search_engine_workflow()
        assert wf.job("grep-250g").input_gb == 250.0
        assert wf.job("pagerank-20g").input_gb == 20.0
        assert wf.job("sort-120g").input_gb == 120.0
        assert wf.job("join-120g").input_gb == 120.0

    def test_custom_deadline(self):
        assert search_engine_workflow(deadline_s=123.0).deadline_s == 123.0


class TestEvaluationSuite:
    def test_five_workflows_31_jobs(self):
        suite = evaluation_workflow_suite()
        assert len(suite) == 5
        assert sum(w.n_jobs for w in suite) == 31

    def test_longest_workflow_has_nine_jobs(self):
        suite = evaluation_workflow_suite()
        assert max(w.n_jobs for w in suite) == 9

    def test_all_dags_valid_and_connected(self):
        import networkx as nx

        for wf in evaluation_workflow_suite():
            g = wf.graph()
            assert nx.is_directed_acyclic_graph(g)
            assert nx.is_weakly_connected(g)

    def test_unique_job_ids_across_suite(self):
        ids = [j.job_id for wf in evaluation_workflow_suite() for j in wf.jobs]
        assert len(ids) == len(set(ids))

    def test_deadlines_positive_and_distinct_scales(self):
        deadlines = [wf.deadline_s for wf in evaluation_workflow_suite()]
        assert all(d > 0 for d in deadlines)
        assert max(deadlines) / min(deadlines) > 2  # spans tight to loose
