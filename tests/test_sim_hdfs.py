"""Block placement (all-or-nothing vs fractional)."""

import pytest

from repro.cloud.storage import Tier
from repro.errors import SimulationError
from repro.simulator.hdfs import BlockPlacement


class TestUniform:
    def test_all_blocks_on_one_tier(self):
        bp = BlockPlacement.uniform(8, Tier.EPH_SSD)
        assert bp.n_blocks == 8
        assert bp.distinct_tiers() == (Tier.EPH_SSD,)

    def test_zero_blocks_rejected(self):
        with pytest.raises(SimulationError):
            BlockPlacement.uniform(0, Tier.EPH_SSD)


class TestFractional:
    def test_counts_match_fraction(self):
        bp = BlockPlacement.fractional(24, Tier.EPH_SSD, Tier.PERS_HDD, 0.5)
        counts = bp.tier_counts()
        assert counts[Tier.EPH_SSD] == 12
        assert counts[Tier.PERS_HDD] == 12

    def test_clustered_layout_is_contiguous(self):
        bp = BlockPlacement.fractional(10, Tier.EPH_SSD, Tier.PERS_HDD, 0.3)
        assert bp.tiers[:3] == (Tier.EPH_SSD,) * 3
        assert bp.tiers[3:] == (Tier.PERS_HDD,) * 7

    def test_interleaved_layout_spreads_fast_blocks(self):
        bp = BlockPlacement.fractional(
            10, Tier.EPH_SSD, Tier.PERS_HDD, 0.5, layout="interleaved"
        )
        counts = bp.tier_counts()
        assert counts[Tier.EPH_SSD] == 5
        # Fast blocks must not all be contiguous.
        fast_idx = [i for i, t in enumerate(bp.tiers) if t is Tier.EPH_SSD]
        assert max(fast_idx) - min(fast_idx) > 4

    def test_extreme_fractions_degenerate_to_uniform(self):
        all_fast = BlockPlacement.fractional(6, Tier.EPH_SSD, Tier.PERS_HDD, 1.0)
        all_slow = BlockPlacement.fractional(6, Tier.EPH_SSD, Tier.PERS_HDD, 0.0)
        assert all_fast.distinct_tiers() == (Tier.EPH_SSD,)
        assert all_slow.distinct_tiers() == (Tier.PERS_HDD,)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            BlockPlacement.fractional(4, Tier.EPH_SSD, Tier.PERS_HDD, 1.5)

    def test_unknown_layout_rejected(self):
        with pytest.raises(SimulationError, match="layout"):
            BlockPlacement.fractional(4, Tier.EPH_SSD, Tier.PERS_HDD, 0.5, layout="zigzag")

    def test_interleaved_counts_every_fraction(self):
        for frac in (0.1, 0.3, 0.7, 0.9):
            bp = BlockPlacement.fractional(
                20, Tier.EPH_SSD, Tier.PERS_HDD, frac, layout="interleaved"
            )
            assert bp.tier_counts().get(Tier.EPH_SSD, 0) == round(20 * frac)


class TestIntrospection:
    def test_empty_placement_rejected(self):
        with pytest.raises(SimulationError):
            BlockPlacement(tiers=())

    def test_distinct_tiers_first_appearance_order(self):
        bp = BlockPlacement(tiers=(Tier.PERS_HDD, Tier.EPH_SSD, Tier.PERS_HDD))
        assert bp.distinct_tiers() == (Tier.PERS_HDD, Tier.EPH_SSD)
