"""Job / reuse-set / workload specification invariants."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec


def make_job(jid="j1", app=SORT, gb=100.0, **kw):
    return JobSpec(job_id=jid, app=app, input_gb=gb, **kw)


class TestJobSpec:
    def test_derived_task_counts(self):
        job = make_job(gb=25.0)
        assert job.map_tasks == SORT.map_tasks(25.0)
        assert job.reduce_tasks == SORT.reduce_tasks(job.map_tasks)

    def test_explicit_task_counts_win(self):
        job = make_job(gb=100.0, n_maps=7, n_reduces=3)
        assert job.map_tasks == 7
        assert job.reduce_tasks == 3

    def test_footprint_matches_eq3(self):
        job = make_job(gb=100.0)
        assert job.footprint_gb == pytest.approx(
            100.0 + job.intermediate_gb + job.output_gb
        )

    def test_non_positive_input_rejected(self):
        with pytest.raises(WorkloadError, match="non-positive"):
            make_job(gb=0.0)

    def test_non_positive_maps_rejected(self):
        with pytest.raises(WorkloadError):
            make_job(n_maps=0)

    def test_make_resolves_app_by_name(self):
        job = JobSpec.make("x", "grep", 10.0)
        assert job.app is GREP

    def test_make_unknown_app(self):
        with pytest.raises(WorkloadError, match="unknown application"):
            JobSpec.make("x", "wordcount9000", 10.0)


class TestReuseSet:
    def test_lifetime_windows(self):
        assert ReuseLifetime.NONE.window_seconds == 0.0
        assert ReuseLifetime.SHORT.window_seconds == 3600.0
        assert ReuseLifetime.LONG.window_seconds == 7 * 24 * 3600.0

    def test_empty_set_rejected(self):
        with pytest.raises(WorkloadError):
            ReuseSet(job_ids=frozenset())

    def test_zero_accesses_rejected(self):
        with pytest.raises(WorkloadError):
            ReuseSet(job_ids=frozenset({"a"}), n_accesses=0)


class TestWorkloadSpec:
    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            WorkloadSpec(jobs=(make_job("a"), make_job("a")))

    def test_reuse_set_must_reference_jobs(self):
        with pytest.raises(WorkloadError, match="unknown jobs"):
            WorkloadSpec(
                jobs=(make_job("a"),),
                reuse_sets=(ReuseSet(job_ids=frozenset({"a", "ghost"})),),
            )

    def test_job_in_two_reuse_sets_rejected(self):
        jobs = (make_job("a"), make_job("b"), make_job("c"))
        with pytest.raises(WorkloadError, match="multiple reuse sets"):
            WorkloadSpec(
                jobs=jobs,
                reuse_sets=(
                    ReuseSet(job_ids=frozenset({"a", "b"})),
                    ReuseSet(job_ids=frozenset({"a", "c"})),
                ),
            )

    def test_lookup_and_membership(self):
        wl = WorkloadSpec(
            jobs=(make_job("a"), make_job("b")),
            reuse_sets=(ReuseSet(job_ids=frozenset({"a", "b"})),),
        )
        assert wl.job("a").job_id == "a"
        assert wl.reuse_set_of("a") is wl.reuse_sets[0]
        assert wl.reuse_set_of("b") is wl.reuse_sets[0]

    def test_lookup_missing_job(self):
        wl = WorkloadSpec(jobs=(make_job("a"),))
        with pytest.raises(WorkloadError, match="no job"):
            wl.job("zz")
        assert wl.reuse_set_of("a") is None

    def test_shared_input_counted_once(self):
        wl = WorkloadSpec(
            jobs=(make_job("a", gb=100.0), make_job("b", gb=100.0), make_job("c", gb=50.0)),
            reuse_sets=(ReuseSet(job_ids=frozenset({"a", "b"})),),
        )
        assert wl.total_input_gb == pytest.approx(150.0)

    def test_total_footprint_sums_all_jobs(self):
        wl = WorkloadSpec(jobs=(make_job("a", gb=10.0), make_job("b", gb=20.0)))
        assert wl.total_footprint_gb == pytest.approx(
            wl.job("a").footprint_gb + wl.job("b").footprint_gb
        )

    def test_jobs_by_app_groups(self):
        wl = WorkloadSpec(
            jobs=(make_job("a", app=SORT), make_job("b", app=GREP), make_job("c", app=SORT))
        )
        groups = wl.jobs_by_app()
        assert {j.job_id for j in groups["sort"]} == {"a", "c"}
        assert len(groups["grep"]) == 1
