"""Price-sensitivity study mechanics."""

import pytest

from repro.cloud.storage import Tier
from repro.experiments.sensitivity import (
    format_price_sensitivity,
    reprice,
    run_price_sensitivity,
)


class TestReprice:
    def test_scales_only_the_target_tier(self, provider):
        doubled = reprice(provider, Tier.OBJ_STORE, 2.0)
        assert doubled.storage_price_gb_hr(Tier.OBJ_STORE) == pytest.approx(
            2 * provider.storage_price_gb_hr(Tier.OBJ_STORE)
        )
        for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD):
            assert doubled.storage_price_gb_hr(tier) == pytest.approx(
                provider.storage_price_gb_hr(tier)
            )

    def test_vm_rate_untouched(self, provider):
        halved = reprice(provider, Tier.PERS_SSD, 0.5)
        assert halved.prices.vm_price_per_min == provider.prices.vm_price_per_min

    def test_original_provider_unchanged(self, provider):
        before = provider.storage_price_gb_hr(Tier.PERS_SSD)
        reprice(provider, Tier.PERS_SSD, 10.0)
        assert provider.storage_price_gb_hr(Tier.PERS_SSD) == before

    def test_name_records_the_perturbation(self, provider):
        assert "persSSD" in reprice(provider, Tier.PERS_SSD, 2.0).name

    def test_non_positive_factor_rejected(self, provider):
        with pytest.raises(ValueError):
            reprice(provider, Tier.PERS_SSD, 0.0)


class TestSensitivityStudy:
    @pytest.fixture(scope="class")
    def rows(self, provider, char_cluster, matrix, small_workload):
        return run_price_sensitivity(
            prov=provider, cluster=char_cluster, workload=small_workload,
            matrix=matrix, factors=(0.5, 2.0),
            tiers=(Tier.PERS_SSD, Tier.OBJ_STORE),
            iterations=300,
        )

    def test_one_row_per_scenario(self, rows):
        assert len(rows) == 4

    def test_regret_is_never_negative(self, rows):
        assert all(r.regret_pct >= 0.0 for r in rows)

    def test_churn_is_a_fraction(self, rows):
        assert all(0.0 <= r.placement_churn_pct <= 100.0 for r in rows)

    def test_formatting_lists_every_row(self, rows):
        text = format_price_sensitivity(rows)
        assert text.count("\n") == len(rows)
        assert "plan churn" in text

    def test_fast_sim_rows_are_identical(
        self, rows, provider, char_cluster, matrix, small_workload
    ):
        # The scenario bodies are solver-bound, so the --fast-sim CLI
        # path must change nothing about the reported rows.
        fast = run_price_sensitivity(
            prov=provider, cluster=char_cluster, workload=small_workload,
            matrix=matrix, factors=(0.5, 2.0),
            tiers=(Tier.PERS_SSD, Tier.OBJ_STORE),
            iterations=300, fast_sim=True,
        )
        assert fast == rows
