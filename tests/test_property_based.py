"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.pricing import google_cloud_2015_pricebook
from repro.cloud.scaling import ScalingCurve
from repro.cloud.storage import Tier
from repro.core.perf_model import _effective_waves
from repro.core.regression import CapacitySpline
from repro.simulator.events import EventQueue
from repro.simulator.storage_backend import SharedChannel
from repro.units import seconds_to_hours_ceil
from repro.workloads.apps import APP_CATALOG
from repro.workloads.swim import synthesize_facebook_workload

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

capacities = st.floats(min_value=1.0, max_value=20_000.0,
                       allow_nan=False, allow_infinity=False)


@st.composite
def monotone_curves(draw):
    """Random valid (points, cap) scaling-curve inputs."""
    n = draw(st.integers(min_value=1, max_value=6))
    xs = sorted(draw(st.lists(
        st.floats(min_value=10.0, max_value=5000.0, allow_nan=False),
        min_size=n, max_size=n, unique=True,
    )))
    steps = draw(st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    ys = list(np.cumsum([5.0] + steps[1:]))
    cap = ys[-1] + draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    return ScalingCurve(points=tuple(zip(xs, ys)), cap=cap)


class TestScalingCurveProperties:
    @given(curve=monotone_curves(), a=capacities, b=capacities)
    @settings(max_examples=80, deadline=None)
    def test_monotone_everywhere(self, curve, a, b):
        lo, hi = sorted((a, b))
        assert curve(lo) <= curve(hi) + 1e-9

    @given(curve=monotone_curves(), c=capacities)
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_cap_and_stays_positive(self, curve, c):
        value = curve(c)
        assert 0.0 <= value <= curve.cap + 1e-12


class TestCapacitySplineProperties:
    @given(
        xs=st.lists(st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
                    min_size=2, max_size=8, unique=True),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolant_within_anchor_envelope_for_monotone_data(self, xs, data):
        xs = sorted(xs)
        ys = sorted(
            data.draw(st.lists(
                st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
                min_size=len(xs), max_size=len(xs),
            )),
            reverse=True,  # runtime falls with capacity
        )
        spline = CapacitySpline(points=tuple(zip(xs, ys)))
        query = data.draw(st.floats(min_value=xs[0], max_value=xs[-1]))
        value = spline(query)
        assert min(ys) - 1e-6 <= value <= max(ys) + 1e-6

    @given(x=st.floats(min_value=0.1, max_value=1e5, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_constant_extension_never_extrapolates(self, x):
        spline = CapacitySpline(points=((100.0, 50.0), (200.0, 25.0)))
        assert 25.0 <= spline(x) <= 50.0


class TestEventQueueProperties:
    @given(times=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                    allow_nan=False), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_dispatch_order_is_sorted(self, times):
        q = EventQueue()
        fired = []
        for t in times:
            q.schedule_at(t, lambda t=t: fired.append(t))
        q.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)


class TestChannelProperties:
    @given(
        sizes=st.lists(st.floats(min_value=0.1, max_value=5000.0,
                                 allow_nan=False), min_size=1, max_size=12),
        bandwidth=st.floats(min_value=1.0, max_value=2000.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_conservation_under_saturation(self, sizes, bandwidth):
        """Transfers all starting at t=0 keep the channel busy; the last
        completion must land exactly at total_bytes / bandwidth."""
        q = EventQueue()
        ch = SharedChannel(q, bandwidth)
        done = []
        for size in sizes:
            ch.start_transfer(size, lambda: done.append(q.now))
        q.run()
        assert len(done) == len(sizes)
        assert max(done) == pytest.approx(sum(sizes) / bandwidth, rel=1e-6)

    @given(
        sizes=st.lists(st.floats(min_value=1.0, max_value=1000.0,
                                 allow_nan=False), min_size=2, max_size=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_smaller_transfers_never_finish_later(self, sizes):
        q = EventQueue()
        ch = SharedChannel(q, 100.0)
        done = {}
        for i, size in enumerate(sizes):
            ch.start_transfer(size, lambda i=i: done.__setitem__(i, q.now))
        q.run()
        order = sorted(range(len(sizes)), key=lambda i: sizes[i])
        finish = [done[i] for i in order]
        assert all(a <= b + 1e-9 for a, b in zip(finish, finish[1:]))


class TestWaveProperties:
    @given(n=st.integers(min_value=0, max_value=100_000),
           slots=st.integers(min_value=1, max_value=1000),
           cpu=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_effective_waves_bounded_by_floor_and_ceil(self, n, slots, cpu):
        w = _effective_waves(n, slots, cpu)
        assert n // slots <= w <= math.ceil(n / slots) + 1e-9

    @given(slots=st.integers(min_value=1, max_value=500),
           k=st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_full_waves_agree_with_eq1(self, slots, k):
        assert _effective_waves(k * slots, slots, False) == float(k)
        assert _effective_waves(k * slots, slots, True) == float(k)


class TestPricingProperties:
    @given(seconds=st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_hour_ceiling_brackets_exact_hours(self, seconds):
        hours = seconds_to_hours_ceil(seconds)
        assert hours >= seconds / 3600.0 - 1e-9
        assert hours <= seconds / 3600.0 + 1.0

    @given(gb=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
           seconds=st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_storage_cost_monotone_in_capacity(self, gb, seconds):
        prices = google_cloud_2015_pricebook()
        small = prices.storage_cost({Tier.PERS_SSD: gb}, seconds)
        big = prices.storage_cost({Tier.PERS_SSD: gb + 1.0}, seconds)
        assert big >= small


class TestWorkloadProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_swim_histogram_invariant_under_seed(self, seed):
        wl = synthesize_facebook_workload(rng=np.random.default_rng(seed))
        counts = sorted(j.map_tasks for j in wl.jobs)
        expected = sorted(
            [1] * 35 + [5] * 22 + [10] * 16 + [50] * 13 + [500] * 7 + [1500] * 4 + [3000] * 3
        )
        assert counts == expected

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           frac=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=25, deadline=None)
    def test_reuse_sets_always_within_workload(self, seed, frac):
        wl = synthesize_facebook_workload(
            rng=np.random.default_rng(seed), reuse_fraction=frac
        )
        ids = {j.job_id for j in wl.jobs}
        for rs in wl.reuse_sets:
            assert rs.job_ids <= ids
            assert len(rs.job_ids) >= 2

    @given(gb=st.floats(min_value=0.01, max_value=1e5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_footprint_at_least_input_for_every_app(self, gb):
        for app in APP_CATALOG.values():
            assert app.footprint_gb(gb) >= gb


# ---------------------------------------------------------------------------
# Solver-domain properties over random workloads
# ---------------------------------------------------------------------------


@st.composite
def random_workloads(draw):
    """Small random workloads with optional reuse structure."""
    from repro.workloads.apps import APP_CATALOG
    from repro.workloads.spec import JobSpec, ReuseSet, WorkloadSpec

    apps = sorted(APP_CATALOG)
    n = draw(st.integers(min_value=2, max_value=8))
    jobs = []
    for i in range(n):
        app = APP_CATALOG[apps[draw(st.integers(0, len(apps) - 1))]]
        gb = draw(st.floats(min_value=1.0, max_value=500.0, allow_nan=False))
        jobs.append(JobSpec(job_id=f"r{i}", app=app, input_gb=gb))
    reuse = ()
    if n >= 3 and draw(st.booleans()):
        reuse = (ReuseSet(job_ids=frozenset({"r0", "r1"})),)
    return WorkloadSpec(jobs=tuple(jobs), reuse_sets=reuse, name="rand")


class TestSolverMoveProperties:
    @given(wl=random_workloads(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_neighbor_moves_preserve_eq3(self, wl, seed, provider, matrix,
                                         char_cluster):
        from repro.core.annealing import AnnealingSchedule
        from repro.core.plan import TieringPlan
        from repro.core.solver import CastSolver

        solver = CastSolver(cluster_spec=char_cluster, matrix=matrix,
                            provider=provider,
                            schedule=AnnealingSchedule(iter_max=1), seed=seed)
        move = solver.neighbor(wl)
        plan = TieringPlan.uniform(wl, Tier.PERS_SSD)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            plan = move(plan, rng)
        plan.validate(wl, provider)

    @given(wl=random_workloads(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_castpp_moves_keep_reuse_sets_together(self, wl, seed, provider,
                                                   matrix, char_cluster):
        from repro.core.annealing import AnnealingSchedule
        from repro.core.castpp import CastPlusPlus

        solver = CastPlusPlus(cluster_spec=char_cluster, matrix=matrix,
                              provider=provider,
                              schedule=AnnealingSchedule(iter_max=1), seed=seed)
        move = solver.neighbor(wl)
        plan = solver.initial_plan(wl)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            plan = move(plan, rng)
            for rs in wl.reuse_sets:
                tiers = {plan.tier_of(j) for j in rs.job_ids}
                assert len(tiers) == 1


class TestHeatProperties:
    @given(wl=random_workloads())
    @settings(max_examples=25, deadline=None)
    def test_heat_plan_is_total_and_feasible(self, wl, provider):
        from repro.core.heat import heat_based_plan

        plan = heat_based_plan(wl, provider)
        plan.validate(wl, provider)
        assert set(plan.job_ids) == {j.job_id for j in wl.jobs}


class TestSerializationProperties:
    @given(wl=random_workloads())
    @settings(max_examples=25, deadline=None)
    def test_workload_json_round_trip(self, wl):
        from repro.workloads.io import workload_from_dict, workload_to_dict

        back = workload_from_dict(workload_to_dict(wl))
        assert [j.job_id for j in back.jobs] == [j.job_id for j in wl.jobs]
        assert all(
            back.job(j.job_id).input_gb == pytest.approx(j.input_gb)
            for j in wl.jobs
        )
        assert len(back.reuse_sets) == len(wl.reuse_sets)
