"""Slot-based phase scheduler: waves, pins, completion."""

import pytest

from repro.cloud.vm import ClusterSpec, VMType
from repro.errors import SimulationError
from repro.simulator.cluster import SimCluster
from repro.simulator.scheduler import PhaseRun


def tiny_cluster(provider, n_vms=2, map_slots=2, reduce_slots=1):
    vm = VMType(name="t", vcpus=4, memory_gb=8.0,
                map_slots=map_slots, reduce_slots=reduce_slots)
    return SimCluster(ClusterSpec(n_vms=n_vms, vm=vm), provider, {})


def timed_task(duration):
    """A task body that just sleeps on the event queue."""

    def body(node, done):
        node.cluster.queue.schedule_after(duration, done)

    return body


class TestWaves:
    def test_tasks_beyond_slots_wait(self, provider):
        cluster = tiny_cluster(provider)  # 4 map slots total
        finished = []

        def track(duration, label):
            def body(node, done):
                def complete():
                    finished.append((label, node.cluster.queue.now))
                    done()
                node.cluster.queue.schedule_after(duration, complete)
            return body

        tasks = [track(10.0, i) for i in range(6)]
        PhaseRun(cluster, "map", tasks, lambda: None).start()
        cluster.queue.run()
        times = dict(finished)
        # First wave of 4 finishes at t=10, the remaining 2 at t=20.
        assert sorted(times.values()) == [10.0] * 4 + [20.0] * 2

    def test_phase_done_fires_once_after_last_task(self, provider):
        cluster = tiny_cluster(provider)
        done_at = []
        tasks = [timed_task(float(i + 1)) for i in range(3)]
        PhaseRun(cluster, "map", tasks, lambda: done_at.append(cluster.queue.now)).start()
        cluster.queue.run()
        assert done_at == [3.0]

    def test_empty_phase_completes_immediately(self, provider):
        cluster = tiny_cluster(provider)
        done = []
        PhaseRun(cluster, "map", [], lambda: done.append(True)).start()
        cluster.queue.run()
        assert done == [True]

    def test_slots_released_after_phase(self, provider):
        cluster = tiny_cluster(provider)
        PhaseRun(cluster, "map", [timed_task(1.0) for _ in range(8)], lambda: None).start()
        cluster.queue.run()
        for node in cluster.nodes:
            assert node.map_slots_free == cluster.spec.vm.map_slots

    def test_reduce_phase_uses_reduce_slots(self, provider):
        cluster = tiny_cluster(provider)  # 2 reduce slots total
        done_at = []
        tasks = [timed_task(10.0) for _ in range(4)]
        PhaseRun(cluster, "reduce", tasks, lambda: done_at.append(cluster.queue.now)).start()
        cluster.queue.run()
        assert done_at == [20.0]  # two waves of two

    def test_unknown_kind_rejected(self, provider):
        cluster = tiny_cluster(provider)
        with pytest.raises(SimulationError, match="kind"):
            PhaseRun(cluster, "merge", [], lambda: None)

    def test_double_start_rejected(self, provider):
        cluster = tiny_cluster(provider)
        run = PhaseRun(cluster, "map", [timed_task(1.0)], lambda: None)
        run.start()
        with pytest.raises(SimulationError, match="twice"):
            run.start()


class TestPins:
    def test_pinned_tasks_run_on_their_node(self, provider):
        cluster = tiny_cluster(provider, n_vms=3)
        ran_on = []

        def body(node, done):
            ran_on.append(node.node_id)
            node.cluster.queue.schedule_after(1.0, done)

        pins = [2, 2, 0]
        PhaseRun(cluster, "map", [body] * 3, lambda: None, pins=pins).start()
        cluster.queue.run()
        assert sorted(ran_on) == [0, 2, 2]

    def test_pinned_tasks_queue_behind_local_slots(self, provider):
        cluster = tiny_cluster(provider, n_vms=2, map_slots=1)
        done_at = {}

        def body(label):
            def run(node, done):
                def fin():
                    done_at[label] = node.cluster.queue.now
                    done()
                node.cluster.queue.schedule_after(5.0, fin)
            return run

        # Three tasks all pinned to node 0 with one slot: serialized.
        PhaseRun(
            cluster, "map", [body(i) for i in range(3)], lambda: None, pins=[0, 0, 0]
        ).start()
        cluster.queue.run()
        assert sorted(done_at.values()) == [5.0, 10.0, 15.0]

    def test_mixed_pinned_and_free_tasks(self, provider):
        cluster = tiny_cluster(provider, n_vms=2, map_slots=1)
        count = []
        tasks = [timed_task(1.0) for _ in range(4)]
        PhaseRun(cluster, "map", tasks, lambda: count.append(True),
                 pins=[0, None, 1, None]).start()
        cluster.queue.run()
        assert count == [True]

    def test_pin_out_of_range_rejected(self, provider):
        cluster = tiny_cluster(provider)
        with pytest.raises(SimulationError, match="pin"):
            PhaseRun(cluster, "map", [timed_task(1.0)], lambda: None, pins=[9])

    def test_pin_count_mismatch_rejected(self, provider):
        cluster = tiny_cluster(provider)
        with pytest.raises(SimulationError, match="pins"):
            PhaseRun(cluster, "map", [timed_task(1.0)], lambda: None, pins=[0, 1])
