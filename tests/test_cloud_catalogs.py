"""Catalog-generic invariants: every registered provider must satisfy
the four-role schema the planner assumes, and the whole pipeline must
run unchanged against each of them."""

import pytest

from repro.cloud import PROVIDER_FACTORIES, resolve_provider
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec

ALL_PROVIDERS = sorted(PROVIDER_FACTORIES)


@pytest.fixture(scope="module", params=ALL_PROVIDERS)
def catalog(request):
    return resolve_provider(request.param)


class TestSchema:
    def test_all_four_roles_present(self, catalog):
        assert set(catalog.tiers) == set(Tier)

    def test_positive_prices(self, catalog):
        assert catalog.prices.vm_price_per_min > 0
        for tier in catalog.tiers:
            assert catalog.service(tier).price_gb_month > 0
            assert catalog.storage_price_gb_hr(tier) > 0

    def test_ephemeral_role_wiring(self, catalog):
        svc = catalog.service(Tier.EPH_SSD)
        assert not svc.persistent
        assert svc.requires_backing is Tier.OBJ_STORE
        assert svc.fixed_volume_gb and svc.fixed_volume_gb > 0

    def test_object_store_role_wiring(self, catalog):
        svc = catalog.service(Tier.OBJ_STORE)
        assert svc.persistent
        assert svc.requires_intermediate is Tier.PERS_SSD
        assert svc.max_volume_gb is None  # unlimited
        assert svc.request_overhead_s > 0

    def test_block_tiers_are_persistent_and_capped(self, catalog):
        for tier in (Tier.PERS_SSD, Tier.PERS_HDD):
            svc = catalog.service(tier)
            assert svc.persistent
            assert svc.max_volume_gb and svc.max_volume_gb > 0

    @pytest.mark.parametrize("curve_name", ["throughput", "iops"])
    def test_scaling_curves_monotone_up_to_cap(self, catalog, curve_name):
        for tier in catalog.tiers:
            curve = getattr(catalog.service(tier), curve_name)
            samples = [curve(gb) for gb in
                       (1.0, 50.0, 128.0, 500.0, 1000.0, 5000.0, 50_000.0)]
            assert all(v > 0 for v in samples), (tier, curve_name)
            assert samples == sorted(samples), (tier, curve_name)
            assert samples[-1] <= curve.cap + 1e-9

    def test_ssd_faster_than_hdd(self, catalog):
        at = 500.0
        assert (
            catalog.service(Tier.PERS_SSD).throughput_mb_s(at)
            > catalog.service(Tier.PERS_HDD).throughput_mb_s(at)
        )
        assert (
            catalog.service(Tier.PERS_SSD).price_gb_month
            > catalog.service(Tier.PERS_HDD).price_gb_month
        )


class TestPipeline:
    """Profiler and solver are catalog-generic end to end."""

    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workloads.swim import synthesize_small_workload

        return synthesize_small_workload(n_jobs=5, total_dataset_gb=500.0)

    def test_profiler_covers_every_tier(self, catalog, workload):
        from repro.profiler import build_model_matrix

        cluster = ClusterSpec(n_vms=5, vm=catalog.default_vm)
        matrix = build_model_matrix(provider=catalog, cluster_spec=cluster)
        for tier in catalog.tiers:
            bw = matrix.bandwidths("sort", tier, 400.0)
            assert bw.map_mb_s > 0

    def test_solver_end_to_end(self, catalog, workload):
        from repro import plan_workload

        outcome = plan_workload(
            workload, n_vms=5, provider=catalog, iterations=120, seed=3
        )
        outcome.plan.validate(workload, catalog)
        assert outcome.evaluation.utility > 0
        assert outcome.evaluation.cost.total_usd > 0
