"""The cast-plan command-line interface."""

import pytest

from repro.cli import DEFAULT_SERVICE_PORT, build_parser, main
from repro.errors import CastError, CatalogError


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.workload == "facebook"
        assert args.vms == 25
        assert not args.basic

    def test_experiment_takes_a_name(self):
        args = build_parser().parse_args(["experiment", "table4"])
        assert args.name == "table4"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == DEFAULT_SERVICE_PORT
        assert args.restarts == 4
        assert args.cache_size == 128
        assert args.max_inflight == 4

    def test_submit_defaults(self):
        args = build_parser().parse_args(
            ["submit", "--workload-file", "wl.json"]
        )
        assert args.port == DEFAULT_SERVICE_PORT
        assert args.workload_file == "wl.json"
        assert args.restarts is None  # server's default wins

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "facebook"
        assert args.tier == "objStore"
        assert args.vms == 25
        assert not args.batch
        assert not args.check

    def test_experiment_accepts_fast_sim(self):
        args = build_parser().parse_args(["experiment", "fig7", "--fast-sim"])
        assert args.fast_sim is True

    def test_fast_sim_reaches_the_simulation_experiments(self):
        # --fast-sim must actually be forwarded, not silently dropped:
        # every simulation-heavy experiment entry accepts the kwarg.
        import inspect

        from repro.cli import _EXPERIMENTS, _register_experiments

        _register_experiments()
        for name in ("fig7", "fig9", "sensitivity"):
            params = inspect.signature(_EXPERIMENTS[name]).parameters
            assert "fast_sim" in params, name


class TestCommands:
    def test_catalog_prints_all_tiers(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for tier in ("ephSSD", "persSSD", "persHDD", "objStore"):
            assert tier in out
        assert "0.218" in out

    def test_plan_small_workload(self, capsys):
        rc = main(["plan", "--workload", "small", "--vms", "10",
                   "--iterations", "100", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CAST++" in out
        assert "utility" in out

    def test_plan_basic_and_verbose(self, capsys):
        rc = main(["plan", "--workload", "small", "--vms", "10",
                   "--iterations", "100", "--basic", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CAST plan" in out
        assert "sjob-00" in out

    def test_plan_unknown_workload_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["plan", "--workload", "mystery"])

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "=== table4 ===" in out
        assert "3000" in out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_simulate_batch_passes_parity_check(self, capsys):
        rc = main(["simulate", "--workload", "small", "--tier", "persSSD",
                   "--batch", "--check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "fast path" in out
        assert "parity check passed" in out

    def test_simulate_exact_path(self, capsys):
        rc = main(["simulate", "--workload", "small", "--tier", "objStore"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulated" in out
        assert "fast path" not in out  # no --batch, no counters line


class TestSweepAndCatalogs:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.providers == "google,aws,azure"
        assert args.reps == 2
        assert args.vms == 25
        assert not args.cold
        assert not args.json

    def test_catalogs_lists_every_provider(self, capsys):
        assert main(["catalogs"]) == 0
        out = capsys.readouterr().out
        for key in ("google", "aws", "azure"):
            assert f"{key}:" in out
        for tier in ("ephSSD", "persSSD", "persHDD", "objStore"):
            assert tier in out

    def test_catalogs_json(self, capsys):
        import json

        assert main(["catalogs", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["key"] for e in entries} >= {"google", "aws", "azure"}
        for e in entries:
            assert len(e["tiers"]) == 4
            assert all(t["price_gb_month"] > 0 for t in e["tiers"])

    def test_sweep_runs_and_ranks(self, capsys):
        rc = main(["sweep", "--workload", "small", "--vms", "5",
                   "--iterations", "100", "--reps", "1",
                   "--providers", "google,aws"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 points" not in out  # 2 catalogs x 1 workload x 1 knob
        assert "2 points" in out
        assert "google" in out and "aws" in out
        assert "vs best" in out

    def test_sweep_json_payload(self, capsys):
        import json

        rc = main(["sweep", "--workload", "small", "--vms", "5",
                   "--iterations", "100", "--reps", "1",
                   "--providers", "google", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sweep"
        assert payload["parity_ok"] is True

    def test_crosscloud_registered_as_experiment(self):
        import inspect

        from repro.cli import _EXPERIMENTS, _register_experiments

        _register_experiments()
        assert "crosscloud" in _EXPERIMENTS
        assert "workers" in inspect.signature(_EXPERIMENTS["crosscloud"]).parameters


class TestProvidersAndFiles:
    def test_catalog_aws(self, capsys):
        assert main(["catalog", "--provider", "aws"]) == 0
        out = capsys.readouterr().out
        assert "aws-2015" in out
        assert "c3.4xlarge" in out

    def test_plan_from_workload_file(self, capsys, tmp_path):
        from repro.workloads.io import save_json
        from repro.workloads.swim import synthesize_small_workload

        path = tmp_path / "wl.json"
        save_json(synthesize_small_workload(n_jobs=4), path)
        rc = main(["plan", "--workload-file", str(path), "--vms", "5",
                   "--iterations", "50"])
        assert rc == 0
        assert "4 jobs" in capsys.readouterr().out

    def test_plan_rejects_workflow_file(self, capsys, tmp_path):
        from repro.workloads.io import save_json
        from repro.workloads.workflow import search_engine_workflow

        path = tmp_path / "wf.json"
        save_json(search_engine_workflow(), path)
        assert main(["plan", "--workload-file", str(path)]) == 2
        assert "workflow" in capsys.readouterr().err

    def test_size_subcommand(self, capsys):
        rc = main(["size", "--workload", "small", "--sizes", "5,10",
                   "--iterations", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best size:" in out
        assert "VMs" in out

    def test_unknown_provider_raises_cast_error_not_keyerror(self):
        from repro.cli import _resolve_provider

        with pytest.raises(CatalogError, match="unknown provider"):
            _resolve_provider("digitalocean")


class TestMainErrorHandling:
    """``main`` turns interrupts and domain errors into clean exits —
    ``build_parser`` binds the command functions from module globals at
    call time, so monkeypatching them reaches ``main``'s dispatch."""

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "_cmd_catalog", interrupted)
        assert main(["catalog"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_cast_error_exits_2(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        def failing(args):
            raise CastError("the catalog is on fire")

        monkeypatch.setattr(cli_mod, "_cmd_catalog", failing)
        assert main(["catalog"]) == 2
        assert "on fire" in capsys.readouterr().err


class TestServiceRoundTrip:
    """End-to-end: serve in a subprocess, submit via main()."""

    @pytest.fixture()
    def live_server(self):
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(__import__("pathlib").Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--pool-processes", "0", "--restarts", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", banner)
            assert match, f"no banner: {banner!r}"
            yield proc, int(match.group(1))
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()

    def test_submit_twice_second_is_cached(self, capsys, live_server):
        proc, port = live_server
        argv = ["submit", "--workload", "small", "--vms", "5",
                "--iterations", "40", "--port", str(port), "--show-stats"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "CAST++ plan for small-16" in first
        assert "cache hits=0" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "served from cache" in second
        assert "cache hits=1" in second
        # Identical rendering of the plan itself either way.
        assert first.splitlines()[0] == second.splitlines()[0]
        assert first.splitlines()[1] == second.splitlines()[1]

    def test_serve_exits_130_on_sigint(self, live_server):
        import signal

        proc, _port = live_server
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 130

    def test_submit_without_server_fails_cleanly(self, capsys):
        rc = main(["submit", "--workload", "small", "--port", "1",
                   "--iterations", "10"])
        assert rc == 2
        assert "no planner" in capsys.readouterr().err


class TestSessionReplay:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        import numpy as np

        from repro.session import save_trace
        from repro.workloads.io import job_to_dict, workload_to_dict
        from repro.workloads.swim import synthesize_small_workload

        base = synthesize_small_workload(
            n_jobs=8, rng=np.random.default_rng(11), name="replay"
        )
        arrivals = synthesize_small_workload(
            n_jobs=2, rng=np.random.default_rng(12), name="arr"
        )
        jobs = []
        for i, job in enumerate(arrivals.jobs):
            d = job_to_dict(job)
            d["job_id"] = f"arr-{i}"
            jobs.append(d)
        events = [
            {"kind": "add", "jobs": jobs},
            {"kind": "remove", "job_ids": [base.jobs[0].job_id]},
        ]
        path = tmp_path / "trace.json"
        save_trace(
            str(path),
            {
                "spec": workload_to_dict(base),
                "iterations": 200,
                "config": {"parity_check_every": 1},
            },
            events,
        )
        return str(path)

    def test_parser_defaults(self):
        args = build_parser().parse_args(["session", "--replay", "t.json"])
        assert args.replay == "t.json"
        assert args.iterations is None  # trace values win unless overridden
        assert args.out is None

    def test_replay_runs_and_summarizes(self, capsys, trace_path):
        assert main(["session", "--replay", trace_path]) == 0
        out = capsys.readouterr().out
        # open (full) + add (warm) + remove (warm), parity-checked.
        assert "replayed 2 events" in out
        assert "full: 1" in out and "warm: 2" in out
        assert "warm re-plan latency" in out
        assert "parity=ok" in out

    def test_replay_writes_results_json(self, capsys, tmp_path, trace_path):
        import json

        out_path = tmp_path / "replay.json"
        rc = main(["session", "--replay", trace_path, "--out", str(out_path)])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["modes"] == {"full": 1, "warm": 2}
        assert len(payload["replans"]) == 3
        assert all(r["parity_ok"] for r in payload["replans"])
        assert payload["summary"]["resident_jobs"] == 9
        assert "plan" not in payload["summary"]

    def test_missing_trace_fails_cleanly(self, capsys, tmp_path):
        rc = main(["session", "--replay", str(tmp_path / "nope.json")])
        assert rc == 2
        assert capsys.readouterr().err


class TestOperationalParsers:
    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.port == DEFAULT_SERVICE_PORT
        assert args.interval == 2.0
        assert not args.once
        assert not args.fleet
        assert not args.no_color

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.duration == 1.0
        assert args.interval == 0.005
        assert args.out is None

    def test_debug_dump_defaults(self):
        args = build_parser().parse_args(["debug-dump", "--out", "b.jsonl"])
        assert args.port == DEFAULT_SERVICE_PORT
        assert args.out == "b.jsonl"

    def test_serve_and_fleet_take_dump_dir(self):
        assert build_parser().parse_args(
            ["serve", "--dump-dir", "/tmp/dumps"]).dump_dir == "/tmp/dumps"
        assert build_parser().parse_args(
            ["fleet", "--dump-dir", "/tmp/dumps"]).dump_dir == "/tmp/dumps"

    def test_cast_error_trace_id_printed(self, capsys, monkeypatch):
        """Errors relayed from a daemon carry a trace id; main() prints
        it so the failure can be chased in a debug dump."""
        import repro.cli as cli_mod

        def failing(args):
            exc = CastError("shard said no")
            exc.trace_id = "abcdef0123456789abcdef0123456789"
            raise exc

        monkeypatch.setattr(cli_mod, "_cmd_catalog", failing)
        assert main(["catalog"]) == 2
        err = capsys.readouterr().err
        assert "shard said no" in err
        assert "[trace abcdef012345]" in err


class TestOperationalCommands:
    """top/profile/debug-dump against a live daemon subprocess."""

    @pytest.fixture()
    def live_server(self):
        import os
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(__import__("pathlib").Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--pool-processes", "0", "--restarts", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", banner)
            assert match, f"no banner: {banner!r}"
            yield proc, int(match.group(1))
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()

    def test_top_once_renders_a_frame(self, capsys, live_server):
        _proc, port = live_server
        assert main(["submit", "--workload", "small", "--vms", "5",
                     "--iterations", "20", "--port", str(port)]) == 0
        capsys.readouterr()
        assert main(["top", "--once", "--port", str(port)]) == 0
        frame = capsys.readouterr().out
        assert f"cast-plan top — 127.0.0.1:{port}" in frame
        assert "SLO" in frame
        assert "Latency by op (ms)" in frame
        assert "plan" in frame
        # --once goes to stdout pipes: never ANSI-colored.
        assert "\x1b[" not in frame

    def test_profile_prints_subsystem_table(self, capsys, live_server,
                                            tmp_path):
        _proc, port = live_server
        out = str(tmp_path / "profile.folded")
        assert main(["profile", "--port", str(port),
                     "--duration", "0.2", "--out", out]) == 0
        text = capsys.readouterr().out
        assert "sampled" in text
        assert "subsystem" in text
        import os
        assert os.path.exists(out)

    def test_debug_dump_writes_a_loadable_bundle(self, capsys, live_server,
                                                 tmp_path):
        from repro.obs.flightrec import load_bundle

        _proc, port = live_server
        path = str(tmp_path / "bundle.jsonl")
        assert main(["debug-dump", "--port", str(port), "--out", path]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        bundle = load_bundle(path)
        assert bundle["meta"]["reason"] == "cli"
        assert bundle["config"]["role"] == "server"

    def test_submit_error_prints_trace_id(self, capsys, live_server):
        _proc, port = live_server
        rc = main(["submit", "--workload", "small", "--vms", "0",
                   "--iterations", "10", "--port", str(port)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "at least one VM" in err
        assert "[trace " in err

    def test_top_without_server_fails_cleanly(self, capsys):
        rc = main(["top", "--once", "--port", "1"])
        assert rc == 2
        assert "no planner" in capsys.readouterr().err
