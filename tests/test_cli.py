"""The cast-plan command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.workload == "facebook"
        assert args.vms == 25
        assert not args.basic

    def test_experiment_takes_a_name(self):
        args = build_parser().parse_args(["experiment", "table4"])
        assert args.name == "table4"


class TestCommands:
    def test_catalog_prints_all_tiers(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for tier in ("ephSSD", "persSSD", "persHDD", "objStore"):
            assert tier in out
        assert "0.218" in out

    def test_plan_small_workload(self, capsys):
        rc = main(["plan", "--workload", "small", "--vms", "10",
                   "--iterations", "100", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CAST++" in out
        assert "utility" in out

    def test_plan_basic_and_verbose(self, capsys):
        rc = main(["plan", "--workload", "small", "--vms", "10",
                   "--iterations", "100", "--basic", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CAST plan" in out
        assert "sjob-00" in out

    def test_plan_unknown_workload_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["plan", "--workload", "mystery"])

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "=== table4 ===" in out
        assert "3000" in out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestProvidersAndFiles:
    def test_catalog_aws(self, capsys):
        assert main(["catalog", "--provider", "aws"]) == 0
        out = capsys.readouterr().out
        assert "aws-2015" in out
        assert "c3.4xlarge" in out

    def test_plan_from_workload_file(self, capsys, tmp_path):
        from repro.workloads.io import save_json
        from repro.workloads.swim import synthesize_small_workload

        path = tmp_path / "wl.json"
        save_json(synthesize_small_workload(n_jobs=4), path)
        rc = main(["plan", "--workload-file", str(path), "--vms", "5",
                   "--iterations", "50"])
        assert rc == 0
        assert "4 jobs" in capsys.readouterr().out

    def test_plan_rejects_workflow_file(self, capsys, tmp_path):
        from repro.workloads.io import save_json
        from repro.workloads.workflow import search_engine_workflow

        path = tmp_path / "wf.json"
        save_json(search_engine_workflow(), path)
        assert main(["plan", "--workload-file", str(path)]) == 2
        assert "workflow" in capsys.readouterr().err

    def test_size_subcommand(self, capsys):
        rc = main(["size", "--workload", "small", "--sizes", "5,10",
                   "--iterations", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best size:" in out
        assert "VMs" in out
