"""Provider assembly and lookups."""

import pytest

from repro.cloud.provider import google_cloud_2015
from repro.cloud.storage import Tier
from repro.errors import CatalogError


class TestProvider:
    def test_all_four_tiers_offered(self, provider):
        assert set(provider.tiers) == set(Tier)

    def test_persistent_tiers_exclude_ephssd(self, provider):
        pers = set(provider.persistent_tiers())
        assert Tier.EPH_SSD not in pers
        assert pers == {Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE}

    def test_service_lookup(self, provider):
        assert provider.service(Tier.PERS_SSD).tier is Tier.PERS_SSD

    def test_unknown_service_raises_catalog_error(self):
        prov = google_cloud_2015()
        trimmed = type(prov)(
            name="no-hdd",
            services={t: s for t, s in prov.services.items() if t is not Tier.PERS_HDD},
            prices=prov.prices,
        )
        with pytest.raises(CatalogError, match="no-hdd"):
            trimmed.service(Tier.PERS_HDD)

    def test_storage_price_lookup_validates_tier(self, provider):
        assert provider.storage_price_gb_hr(Tier.OBJ_STORE) == pytest.approx(
            0.026 / 730.0
        )

    def test_default_vm_is_n1_standard_16(self, provider):
        assert provider.default_vm.name == "n1-standard-16"

    def test_providers_are_value_objects(self):
        assert google_cloud_2015().name == google_cloud_2015().name
