"""The fleet router: routing, parity, failover, caching, observability.

Shards here are real in-process :class:`PlannerServer`s on real sockets
(thread-mode pools, so fast and fork-free); only the supervisor tests
(``test_fleet_supervisor.py``) spawn subprocesses.
"""

import asyncio

import pytest

from repro.errors import (
    NoHealthyShardsError,
    ProtocolError,
    ServiceBusyError,
    SessionError,
    WorkloadError,
)
from repro.fleet import FleetRouter
from repro.service import PlannerClient, PlannerServer, SolverPool
from repro.service.fingerprint import request_fingerprint
from repro.service.server import _normalize_solve_params
from repro.workloads.io import workload_to_dict
from repro.workloads.swim import synthesize_small_workload

RESTARTS = 2


def small_spec(n_jobs=4):
    return workload_to_dict(synthesize_small_workload(n_jobs=n_jobs))


def run(coro):
    return asyncio.run(coro)


def fingerprint_for(params, default_restarts=RESTARTS, op="plan"):
    """The fingerprint the router will compute for ``params``."""
    normalized = _normalize_solve_params(op, params)
    restarts = normalized["restarts"] or default_restarts
    return request_fingerprint(
        op,
        normalized["spec"],
        provider=normalized["provider"],
        n_vms=normalized["n_vms"],
        iterations=normalized["iterations"],
        seed=normalized["seed"],
        use_castpp=normalized["use_castpp"],
        restarts=restarts,
        backend=normalized["backend"],
        replicas=normalized["replicas"],
    )


def seed_routed_to(router, shard_id, spec, **params):
    """A solve seed whose fingerprint the ring maps onto ``shard_id``."""
    for seed in range(200):
        fp = fingerprint_for(dict(params, spec=spec, seed=seed))
        if router.ring.route(fp) == shard_id:
            return seed
    raise AssertionError(f"no seed routed to {shard_id} in 200 tries")


class Fleet:
    """A router plus N in-process planner shards, all on one loop."""

    def __init__(self, n=2, solver_fns=None, **router_kwargs):
        router_kwargs.setdefault("health_interval_s", 0)  # probe on demand
        router_kwargs.setdefault("default_restarts", RESTARTS)
        self.router = FleetRouter(**router_kwargs)
        self.servers = [
            PlannerServer(
                pool=SolverPool(processes=0, restarts=RESTARTS),
                solver_fn=(solver_fns or {}).get(i),
            )
            for i in range(n)
        ]
        self._tasks = []

    async def __aenter__(self):
        for i, server in enumerate(self.servers):
            await server.start()
            self._tasks.append(asyncio.create_task(server.serve_forever()))
            self.router.add_shard(f"s{i}", *server.address)
        await self.router.start()
        self._tasks.append(asyncio.create_task(self.router.serve_forever()))
        return self

    async def __aexit__(self, *exc):
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        await self.router.stop()
        for server in self.servers:
            await server.stop()

    def client(self, **kwargs):
        return PlannerClient(*self.router.address, **kwargs)


class TestRouting:
    def test_solve_routes_and_stamps_shard(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    result = await client.plan(
                        small_spec(), n_vms=5, iterations=30, seed=7
                    )
                    assert result["kind"] == "plan"
                    assert result["shard"] in ("s0", "s1")
                    routed = fleet.router.stats()["routed"]
                    assert routed == {result["shard"]: 1}

        run(scenario())

    def test_every_shard_reachable_by_some_request(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                spec = small_spec()
                async with fleet.client() as client:
                    for shard in ("s0", "s1"):
                        seed = seed_routed_to(
                            fleet.router, shard, spec, n_vms=5, iterations=20
                        )
                        result = await client.plan(
                            spec, n_vms=5, iterations=20, seed=seed
                        )
                        assert result["shard"] == shard

        run(scenario())

    def test_router_l1_cache_serves_repeats(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    first = await client.plan(small_spec(), iterations=30, seed=3)
                    assert first["cached"] is False
                    second = await client.plan(small_spec(), iterations=30, seed=3)
                    assert second["cached"] is True
                    assert second["plan"] == first["plan"]
                    assert fleet.router.cache.stats()["hits"] == 1
                    # The hit never re-touched a shard.
                    assert sum(fleet.router.stats()["routed"].values()) == 1

        run(scenario())

    def test_whatif_routes_and_caches(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    first = await client.whatif(
                        small_spec(), tier="objStore", n_vms=5
                    )
                    assert first["cached"] is False
                    assert first["fast"] is True
                    assert first["makespan_s"] > 0
                    assert first["shard"] in ("s0", "s1")
                    # Repeat hits the router's L1 cache, bit-equal.
                    second = await client.whatif(
                        small_spec(), tier="objStore", n_vms=5
                    )
                    assert second["cached"] is True
                    assert second["makespan_s"] == first["makespan_s"]
                    assert fleet.router.cache.stats()["hits"] == 1

        run(scenario())

    def test_identical_inflight_requests_collapse(self):
        calls = []

        async def slow_solver(request):
            calls.append(request["seed"])
            await asyncio.sleep(0.05)
            return {"kind": "plan", "utility": 2.5, "plan": {"placements": {}}}

        async def scenario():
            async with Fleet(n=1, solver_fns={0: slow_solver}) as fleet:
                async with fleet.client() as c1, fleet.client() as c2:
                    r1, r2 = await asyncio.gather(
                        c1.plan(small_spec(), iterations=30, seed=9),
                        c2.plan(small_spec(), iterations=30, seed=9),
                    )
                    assert r1["utility"] == r2["utility"] == 2.5
                    assert len(calls) == 1  # one shard solve, fleet-wide
                    assert fleet.router.counters["dedup_joined"] == 1

        run(scenario())

    def test_typed_errors_propagate_without_failover(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    bad = {
                        "version": 1, "kind": "workload", "name": "x",
                        "jobs": [{"job_id": "j", "app": "nosuch", "input_gb": 1}],
                    }
                    with pytest.raises(WorkloadError, match="unknown application"):
                        await client.plan(bad, iterations=10)
                    # Both shards are still in the ring: no failover fired.
                    assert fleet.router.healthy_shards == ["s0", "s1"]
                    assert "failovers" not in fleet.router.counters

        run(scenario())

    def test_no_shards_is_a_typed_error(self):
        async def scenario():
            async with Fleet(n=0) as fleet:
                async with fleet.client() as client:
                    with pytest.raises(NoHealthyShardsError, match="0 registered"):
                        await client.plan(small_spec(), iterations=10)

        run(scenario())


class TestParity:
    def test_fleet_answer_bit_identical_to_single_server(self):
        """The acceptance criterion: routing never perturbs the solve."""

        async def scenario():
            spec = small_spec()
            kwargs = dict(n_vms=5, iterations=40, seed=11, restarts=RESTARTS)

            solo = PlannerServer(pool=SolverPool(processes=0, restarts=RESTARTS))
            await solo.start()
            solo_task = asyncio.create_task(solo.serve_forever())
            try:
                async with PlannerClient(*solo.address) as client:
                    direct = await client.plan(spec, **kwargs)
            finally:
                solo_task.cancel()
                await asyncio.gather(solo_task, return_exceptions=True)
                await solo.stop()

            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    fleet_result = await client.plan(spec, **kwargs)

            assert fleet_result["plan"] == direct["plan"]
            assert fleet_result["utility"] == direct["utility"]
            assert fleet_result["fingerprint"] == direct["fingerprint"]

        run(scenario())

    def test_tenant_label_does_not_change_the_answer(self):
        async def scenario():
            spec = small_spec()
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    a = await client.plan(spec, iterations=30, seed=5, tenant="alice")
                    fleet.router.cache.clear()
                    b = await client.plan(spec, iterations=30, seed=5, tenant="bob")
                    assert a["fingerprint"] == b["fingerprint"]
                    assert a["plan"] == b["plan"]
                    tenants = {
                        labels["tenant"]
                        for labels, _ in fleet.router._tenant_requests.samples()
                    }
                    assert tenants == {"alice", "bob"}

        run(scenario())


class TestFailover:
    def test_shard_death_mid_solve_fails_over_to_survivor(self):
        """Kill the routed shard mid-solve; the client still gets a plan."""
        state = {}

        async def dying_solver(request):
            # Simulate a crash: sever every connection (the router's
            # forward included), so no response line is ever delivered.
            for writer in list(state["server"]._connections):
                writer.close()
            await asyncio.sleep(0.02)
            return {"kind": "plan", "utility": 0.0, "plan": {"placements": {}}}

        async def scenario():
            async with Fleet(n=2, solver_fns={0: dying_solver}) as fleet:
                state["server"] = fleet.servers[0]
                spec = small_spec()
                seed = seed_routed_to(fleet.router, "s0", spec, iterations=30)
                async with fleet.client() as client:
                    result = await client.plan(spec, iterations=30, seed=seed)
                    # Failed over: answered by the healthy shard.
                    assert result["kind"] == "plan"
                    assert result["shard"] == "s1"
                    assert fleet.router.counters["failovers"] == 1
                    assert fleet.router.healthy_shards == ["s1"]

        run(scenario())

    def test_health_sweep_recovers_a_marked_down_shard(self):
        async def scenario():
            async with Fleet(n=2, health_failures=1) as fleet:
                fleet.router._mark_down("s0", "test says so")
                assert fleet.router.healthy_shards == ["s1"]
                await fleet.router.check_health()  # s0 still answers pings
                assert fleet.router.healthy_shards == ["s0", "s1"]

        run(scenario())

    def test_ring_restored_means_same_routing_as_before(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                spec = small_spec()
                fp = fingerprint_for({"spec": spec, "seed": 1, "iterations": 20})
                owner = fleet.router.ring.route(fp)
                fleet.router._mark_down(owner, "blip")
                fleet.router._mark_up(owner)
                assert fleet.router.ring.route(fp) == owner

        run(scenario())


class TestAdmission:
    def test_saturating_tenant_is_shed_not_queued_forever(self):
        async def slow_solver(request):
            await asyncio.sleep(0.2)
            return {"kind": "plan", "utility": 1.0, "plan": {"placements": {}}}

        async def scenario():
            async with Fleet(
                n=1, solver_fns={0: slow_solver},
                max_inflight=1, max_queue_per_tenant=0,
            ) as fleet:
                async with fleet.client() as c1, fleet.client() as c2:
                    spec = small_spec()
                    first = asyncio.create_task(
                        c1.plan(spec, iterations=30, seed=1, tenant="hog")
                    )
                    await asyncio.sleep(0.05)  # first holds the only slot
                    with pytest.raises(ServiceBusyError, match="hog"):
                        await c2.plan(spec, iterations=30, seed=2, tenant="hog")
                    assert (await first)["kind"] == "plan"
                    assert fleet.router.scheduler.shed == 1

        run(scenario())


class TestMembershipOps:
    def test_register_and_deregister_over_the_wire(self):
        async def scenario():
            async with Fleet(n=1) as fleet:
                extra = PlannerServer(pool=SolverPool(processes=0, restarts=1))
                await extra.start()
                extra_task = asyncio.create_task(extra.serve_forever())
                try:
                    async with fleet.client() as client:
                        ack = await client.register("s9", *extra.address)
                        assert ack["shard"]["shard_id"] == "s9"
                        assert sorted(ack["ring"]) == ["s0", "s9"]
                        gone = await client.deregister("s9")
                        assert gone["removed"] is True
                        assert fleet.router.healthy_shards == ["s0"]
                        again = await client.deregister("s9")
                        assert again["removed"] is False
                finally:
                    extra_task.cancel()
                    await asyncio.gather(extra_task, return_exceptions=True)
                    await extra.stop()

        run(scenario())

    def test_register_params_validated(self):
        async def scenario():
            async with Fleet(n=1) as fleet:
                async with fleet.client() as client:
                    with pytest.raises(ProtocolError, match="shard_id"):
                        await client.request("register", {"host": "h"})
                    with pytest.raises(ProtocolError, match="port"):
                        await client.request(
                            "register",
                            {"shard_id": "x", "host": "h", "port": "nope"},
                        )

        run(scenario())

    def test_planner_shard_refuses_register(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            await server.start()
            task = asyncio.create_task(server.serve_forever())
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(ProtocolError, match="fleet router"):
                        await client.register("s0", "h", 1)
            finally:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
                await server.stop()

        run(scenario())


class TestSessions:
    def test_session_pinned_to_one_shard(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    opened = await client.session_open(
                        small_spec(6), iterations=150, seed=3,
                        include_plan=False,
                    )
                    sid = opened["session_id"]
                    home = opened["shard"]
                    assert opened["mode"] == "full"
                    assert (
                        fleet.router.stats()["sessions"][sid]["home"] == home
                    )
                    # Every delta lands on the pinned shard and is logged.
                    for i in range(3):
                        out = await client.session_delta(
                            sid,
                            add_jobs=[{
                                "job_id": f"n{i}", "app": "grep",
                                "input_gb": 2.0, "n_maps": 4,
                            }],
                        )
                        assert out["shard"] == home
                        assert out["mode"] == "warm"
                    logged = fleet.router.stats()["sessions"][sid]
                    assert logged["deltas_logged"] == 3
                    closed = await client.session_close(sid)
                    assert closed["counters"]["deltas"] == 4
                    assert sid not in fleet.router.stats()["sessions"]

        run(scenario())

    def test_failover_replays_the_session_log(self):
        """Kill the home shard: the next delta replays open + deltas on
        the ring successor and continues from identical state."""

        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    opened = await client.session_open(
                        small_spec(6), iterations=150, seed=3,
                        include_plan=False,
                    )
                    sid = opened["session_id"]
                    home = opened["shard"]
                    await client.session_delta(
                        sid,
                        add_jobs=[{
                            "job_id": "newjob", "app": "sort",
                            "input_gb": 4.0, "n_maps": 8, "n_reduces": 2,
                        }],
                    )
                    await fleet.servers[int(home[1:])].stop()
                    fleet.router._mark_down(home, "stopped by test")

                    out = await client.session_delta(sid, remove=["newjob"])
                    survivor = out["shard"]
                    assert survivor != home
                    assert out["resident_jobs"] == 6
                    assert fleet.router.counters["session_replays"] == 1
                    stats = fleet.router.stats()["sessions"][sid]
                    assert stats["home"] == survivor
                    assert stats["deltas_logged"] == 2
                    closed = await client.session_close(sid)
                    # open + 2 deltas replayed, + the post-failover delta
                    # and nothing else: the survivor saw the same history.
                    assert closed["counters"]["deltas"] == 3

        run(scenario())

    def test_unknown_session_is_a_typed_error(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    with pytest.raises(SessionError, match="no such session"):
                        await client.session_delta("nope", remove=["x"])
                    # Typed errors never trigger failover.
                    assert fleet.router.healthy_shards == ["s0", "s1"]

        run(scenario())


class TestObservability:
    def test_fleet_scrape_equals_sum_of_shard_snapshots(self):
        """The roll-up invariant: sum over the shard label = fleet total."""

        async def scenario():
            async with Fleet(n=2) as fleet:
                spec = small_spec()
                async with fleet.client() as client:
                    for shard in ("s0", "s1"):
                        seed = seed_routed_to(
                            fleet.router, shard, spec, iterations=20
                        )
                        await client.plan(spec, iterations=20, seed=seed)
                    scraped = await client.metrics(format="json", scope="fleet")
                    assert scraped["scope"] == "fleet"
                    metrics = scraped["metrics"]

                entry = metrics["cast_service_requests_total"]
                assert "shard" in entry["labelnames"]
                by_shard = {
                    sample["labels"]["shard"]: sample["value"]
                    for sample in entry["values"]
                }
                for i, server in enumerate(fleet.servers):
                    direct = sum(
                        value
                        for _, value in server.metrics.get(
                            "cast_service_requests_total"
                        ).samples()
                    )
                    assert by_shard[f"s{i}"] == direct
                # Router series carry their own shard label.
                router_entry = metrics["cast_fleet_requests_total"]
                assert {
                    sample["labels"]["shard"] for sample in router_entry["values"]
                } == {"router"}

        run(scenario())

    def test_scrape_survives_a_dead_shard(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    await fleet.servers[0].stop()
                    fleet.router._mark_down("s0", "stopped by test")
                    scraped = await client.metrics(format="json", scope="fleet")
                    shards = set()
                    for entry in scraped["metrics"].values():
                        for sample in entry["values"]:
                            shards.add(sample["labels"].get("shard"))
                    assert "s0" not in shards
                    assert {"router", "s1"} <= shards

        run(scenario())

    def test_router_scope_and_bad_scope(self):
        async def scenario():
            async with Fleet(n=1) as fleet:
                async with fleet.client() as client:
                    own = await client.metrics(format="json", scope="router")
                    assert "cast_fleet_requests_total" in own["metrics"]
                    with pytest.raises(ProtocolError, match="scope"):
                        await client.metrics(format="json", scope="galaxy")

        run(scenario())

    def test_stats_reports_fleet_shape(self):
        async def scenario():
            async with Fleet(n=2) as fleet:
                async with fleet.client() as client:
                    stats = await client.stats()
                    assert stats["role"] == "fleet-router"
                    assert len(stats["shards"]) == 2
                    assert sorted(stats["ring"]) == ["s0", "s1"]
                    assert stats["tenancy"]["max_inflight"] == 16

        run(scenario())


class TestFleetSLO:
    """The fleet `slo` op: per-shard evaluation, worst-shard roll-up."""

    @staticmethod
    def _tight_policy(**overrides):
        from repro.obs.slo import BurnPolicy

        kw = dict(fast_short_s=10.0, fast_long_s=60.0,
                  slow_short_s=30.0, slow_long_s=120.0)
        kw.update(overrides)
        return BurnPolicy(**kw)

    def _slo_fleet(self, clocks, failing=()):
        """A 2-shard fleet with manual SLO clocks and on-demand eval."""
        from repro.errors import WorkloadError as WErr
        from repro.obs.slo import Objective

        async def failing_solver(request):
            raise WErr("synthetic shard failure")

        objectives = [Objective("solve", ("plan",),
                                kind="availability", target=0.99)]
        router = FleetRouter(
            health_interval_s=0,
            default_restarts=RESTARTS,
            slo_objectives=objectives,
            # The router never alerts here: its role in these tests is
            # pure roll-up, so its own engine is muted via min_events.
            slo_policy=self._tight_policy(min_events=10**6),
            slo_eval_interval_s=0,
        )
        servers = [
            PlannerServer(
                pool=SolverPool(processes=0, restarts=RESTARTS),
                solver_fn=failing_solver if i in failing else None,
                slo_objectives=objectives,
                slo_policy=self._tight_policy(),
                slo_clock=(lambda i=i: clocks[i]),
                slo_eval_interval_s=0,
            )
            for i in range(2)
        ]
        return router, servers

    def test_two_shard_rollup_is_worst_shard_state(self):
        clocks = [0.0, 0.0]

        async def scenario():
            router, servers = self._slo_fleet(clocks, failing=(1,))
            tasks = []
            for i, server in enumerate(servers):
                await server.start()
                tasks.append(asyncio.create_task(server.serve_forever()))
                router.add_shard(f"s{i}", *server.address)
            await router.start()
            tasks.append(asyncio.create_task(router.serve_forever()))
            try:
                async with PlannerClient(*router.address) as client:
                    # Baseline observation on every engine, all clocks 0.
                    baseline = await client.slo()
                    assert baseline["scope"] == "fleet"
                    assert baseline["state"] == "ok"
                    assert baseline["ops"]["solve"]["shards"] == {
                        "router": "ok", "s0": "ok", "s1": "ok",
                    }

                    spec = small_spec()
                    seed = seed_routed_to(router, "s1", spec, iterations=10)
                    with pytest.raises(WorkloadError):
                        await client.plan(spec, iterations=10, seed=seed)

                    # Only s1's window slides past its failure.
                    clocks[1] = 61.0
                    report = await client.slo()
                    assert report["state"] == "page"
                    solve = report["ops"]["solve"]
                    assert solve["state"] == "page"
                    assert solve["shards"]["s1"] == "page"
                    assert solve["shards"]["s0"] == "ok"
                    assert report["shards"]["s1"] == "page"
                    assert report["policy"]["fast_burn"] == 14.4

                    # Router scope skips the scrape entirely.
                    own = await client.slo(scope="router")
                    assert own["scope"] == "router"
                    assert "shards" not in own["ops"]["solve"]

                    with pytest.raises(ProtocolError, match="scope"):
                        await client.slo(scope="galaxy")
            finally:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                await router.stop()
                for server in servers:
                    await server.stop()

        run(scenario())

    def test_rollup_skips_a_dead_shard(self):
        clocks = [0.0, 0.0]

        async def scenario():
            router, servers = self._slo_fleet(clocks)
            tasks = []
            for i, server in enumerate(servers):
                await server.start()
                tasks.append(asyncio.create_task(server.serve_forever()))
                router.add_shard(f"s{i}", *server.address)
            await router.start()
            tasks.append(asyncio.create_task(router.serve_forever()))
            try:
                async with PlannerClient(*router.address) as client:
                    await servers[0].stop()
                    router._mark_down("s0", "stopped by test")
                    report = await client.slo()
                    assert "s0" not in report["shards"]
                    assert report["shards"]["s1"] == "ok"
            finally:
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                await router.stop()
                for server in servers:
                    await server.stop()

        run(scenario())


class TestFleetRestartScrape:
    def test_delta_across_a_shard_restart_never_goes_negative(self):
        """A shard respawn resets its counters mid-scrape; deltas
        between successive fleet scrapes must clamp, not go negative
        (the snapshot_delta counter-reset contract, fleet-level)."""
        from repro.obs.metrics import snapshot_delta

        async def scenario():
            async with Fleet(n=2) as fleet:
                spec = small_spec()
                async with fleet.client() as client:
                    for shard in ("s0", "s1"):
                        seed = seed_routed_to(
                            fleet.router, shard, spec, iterations=20
                        )
                        await client.plan(spec, iterations=20, seed=seed)
                    before = (await client.metrics(
                        format="json", scope="fleet"))["metrics"]

                    # Restart s0 on its original port: same ring slot,
                    # fresh process, zeroed counters.
                    old = fleet.servers[0]
                    host, port = old.address
                    await old.stop()
                    fresh = PlannerServer(
                        host, port,
                        pool=SolverPool(processes=0, restarts=RESTARTS),
                    )
                    await fresh.start()
                    fleet.servers[0] = fresh
                    fleet._tasks.append(
                        asyncio.create_task(fresh.serve_forever())
                    )

                    after = (await client.metrics(
                        format="json", scope="fleet"))["metrics"]

                delta = snapshot_delta(before, after)
                for name, entry in delta.items():
                    for sample in entry["values"]:
                        value = sample["value"]
                        if entry["kind"] == "counter":
                            assert value >= 0, (name, sample)
                        elif entry["kind"] == "histogram":
                            assert value["count"] >= 0, (name, sample)
                            assert all(c >= 0 for c in value["counts"]), \
                                (name, sample)
                # The restarted shard's scrape did reset below its old
                # totals (otherwise this test proves nothing).
                served = before["cast_service_requests_total"]["values"]
                assert any(s["labels"].get("shard") == "s0" for s in served)

        run(scenario())
