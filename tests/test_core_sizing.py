"""Elastic cluster sizing."""

import pytest

from repro.core.sizing import best_cluster_size, sweep_cluster_sizes
from repro.errors import SolverError
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, WorkloadSpec


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(
        jobs=tuple(
            JobSpec(job_id=f"s{i}", app=SORT if i % 2 else GREP,
                    input_gb=200.0, n_maps=200)
            for i in range(4)
        ),
        name="sizing-wl",
    )


@pytest.fixture(scope="module")
def points(workload, provider):
    return sweep_cluster_sizes(
        workload, (5, 10, 20), provider, iterations=300, seed=2
    )


class TestSweep:
    def test_one_point_per_size_in_order(self, points):
        assert [p.n_vms for p in points] == [5, 10, 20]

    def test_every_point_has_valid_plan(self, points, workload, provider):
        for p in points:
            p.plan.validate(workload, provider)
            assert p.utility > 0

    def test_bigger_clusters_run_faster(self, points):
        makespans = [p.evaluation.makespan_s for p in points]
        assert makespans[0] > makespans[-1]

    def test_utility_tradeoff_is_nontrivial(self, points):
        """More VMs cut runtime but raise $/min; the utility curve must
        not be constant."""
        utilities = [p.utility for p in points]
        assert max(utilities) / min(utilities) > 1.02

    def test_empty_sizes_rejected(self, workload, provider):
        with pytest.raises(SolverError):
            sweep_cluster_sizes(workload, (), provider)

    def test_non_positive_size_rejected(self, workload, provider):
        with pytest.raises(SolverError):
            sweep_cluster_sizes(workload, (0, 5), provider)


class TestBest:
    def test_best_is_argmax_utility(self, points):
        best = best_cluster_size(points)
        assert best.utility == max(p.utility for p in points)

    def test_tie_breaks_toward_fewer_vms(self, points):
        twice = list(points) + [points[0]]
        best = best_cluster_size(twice)
        assert best.utility == max(p.utility for p in twice)

    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            best_cluster_size([])
