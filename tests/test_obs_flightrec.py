"""The flight recorder: ring, slowest-K exemplars, postmortem bundles."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.flightrec import (
    BUNDLE_SCHEMA,
    FlightRecord,
    FlightRecorder,
    build_bundle,
    dump_bundle,
    load_bundle,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import LATENCY_METRIC


def fill(recorder, latencies, op="plan", **kwargs):
    for i, lat in enumerate(latencies):
        recorder.record(op=op, latency_s=lat, trace_id=f"t{i}",
                        t=float(i), **kwargs)


class TestRing:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ObservabilityError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(ObservabilityError, match="exemplars"):
            FlightRecorder(exemplars=0)

    def test_ring_wraps_but_recorded_keeps_counting(self):
        rec = FlightRecorder(capacity=4)
        fill(rec, [0.1] * 10)
        assert len(rec) == 4
        assert rec.recorded == 10
        # Oldest-first, and only the newest four survive.
        assert [r.trace_id for r in rec.records()] == ["t6", "t7", "t8", "t9"]
        assert rec.stats() == {
            "recorded": 10, "size": 4, "capacity": 4, "exemplar_k": 8,
        }

    def test_records_filter_by_op_and_count(self):
        rec = FlightRecorder()
        rec.record(op="plan", latency_s=0.1)
        rec.record(op="whatif", latency_s=0.2)
        rec.record(op="plan", latency_s=0.3)
        assert [r.latency_s for r in rec.records(op="plan")] == [0.1, 0.3]
        assert [r.latency_s for r in rec.records(n=1)] == [0.3]

    def test_record_round_trip(self):
        rec = FlightRecorder().record(
            op="plan", latency_s=1.5, ok=False, error="WorkloadError",
            tenant="acme", shard="s1", trace_id="abc", t=7.0,
        )
        assert FlightRecord.from_dict(rec.to_dict()) == rec


class TestExemplars:
    def test_slowest_k_survive_the_ring(self):
        """Exemplars outlive ring eviction: a slow request stays an
        exemplar even after hundreds of fast ones push it out."""
        rec = FlightRecorder(capacity=8, exemplars=2)
        rec.record(op="plan", latency_s=9.0, trace_id="slowest")
        fill(rec, [0.01] * 50)
        rec.record(op="plan", latency_s=3.0, trace_id="second")
        slow = rec.slowest(op="plan")
        assert [r.trace_id for r in slow] == ["slowest", "second"]
        assert all(r.trace_id != "slowest" for r in rec.records())

    def test_slowest_across_ops(self):
        rec = FlightRecorder(exemplars=4)
        rec.record(op="plan", latency_s=2.0, trace_id="a")
        rec.record(op="whatif", latency_s=5.0, trace_id="b")
        assert [r.trace_id for r in rec.slowest(k=1)] == ["b"]

    def test_attach_exemplars_to_metrics_json(self):
        reg = MetricsRegistry()
        hist = reg.histogram(LATENCY_METRIC, "latency", labelnames=("op",))
        hist.observe(0.2, op="plan")
        hist.observe(0.2, op="ping")

        rec = FlightRecorder(exemplars=2)
        rec.record(op="plan", latency_s=0.2, trace_id="tr-1", tenant="acme")
        payload = rec.attach_exemplars(reg.to_json())
        by_op = {
            s["labels"]["op"]: s
            for s in payload[LATENCY_METRIC]["values"]
        }
        assert [e["trace_id"] for e in by_op["plan"]["exemplars"]] == ["tr-1"]
        assert by_op["plan"]["exemplars"][0]["tenant"] == "acme"
        # Ops the recorder never saw stay unannotated.
        assert "exemplars" not in by_op["ping"]

    def test_attach_is_a_no_op_without_the_metric(self):
        rec = FlightRecorder()
        rec.record(op="plan", latency_s=0.1)
        assert rec.attach_exemplars({"other": 1}) == {"other": 1}

    def test_bind_metrics_mirrors_ring_state(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=2)
        rec.bind_metrics(reg)
        fill(rec, [0.1] * 3)
        snap = reg.snapshot()
        assert snap["cast_flightrec_records_total"]["values"][0]["value"] == 3
        ring = {
            s["labels"]["stat"]: s["value"]
            for s in snap["cast_flightrec_ring"]["values"]
        }
        assert ring == {"size": 2, "capacity": 2}


class TestBundles:
    def _bundle(self):
        reg = MetricsRegistry()
        reg.counter("cast_op_requests_total", labelnames=("op", "outcome"))\
            .inc(7, op="plan", outcome="ok")
        reg.histogram(LATENCY_METRIC, "latency", labelnames=("op",))\
            .observe(1.25, op="plan")
        rec = FlightRecorder()
        rec.record(op="plan", latency_s=1.25, trace_id="deadbeef", t=1.0)
        return build_bundle(
            registry=reg,
            recorder=rec,
            slo_report={"scope": "server", "state": "ok", "ops": {}},
            config={"role": "planner", "port": 4815},
            reason="unit-test",
        )

    def test_round_trip_preserves_metrics_and_exemplars(self, tmp_path):
        """The acceptance criterion: dump -> load gives back the same
        metric values and the same exemplar trace ids."""
        bundle = self._bundle()
        path = str(tmp_path / "dump.jsonl")
        assert dump_bundle(path, bundle) == path
        loaded = load_bundle(path)

        assert loaded["meta"]["schema"] == BUNDLE_SCHEMA
        assert loaded["meta"]["reason"] == "unit-test"
        assert loaded["config"] == {"role": "planner", "port": 4815}
        assert loaded["slo"]["state"] == "ok"
        # Metric values survive exactly (JSON-exact, not approx).
        assert loaded["metrics"]["cast_op_requests_total"] == \
            bundle["metrics"]["cast_op_requests_total"]
        series = loaded["metrics"][LATENCY_METRIC]["values"][0]
        assert [e["trace_id"] for e in series["exemplars"]] == ["deadbeef"]
        assert loaded["exemplars"]["plan"][0]["trace_id"] == "deadbeef"
        assert [r["trace_id"] for r in loaded["records"]] == ["deadbeef"]

    def test_bundle_file_is_one_section_per_line(self, tmp_path):
        path = str(tmp_path / "dump.jsonl")
        dump_bundle(path, self._bundle())
        with open(path) as fh:
            sections = [json.loads(line)["section"] for line in fh]
        assert sections[:5] == ["meta", "config", "metrics", "slo",
                                "exemplars"]
        assert sections.count("record") == 1

    def test_unknown_section_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"section": "mystery", "data": 1}\n')
        with pytest.raises(ObservabilityError, match="mystery"):
            load_bundle(str(path))

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text('{"section": "meta", "data": {"schema": 99}}\n')
        with pytest.raises(ObservabilityError, match="schema"):
            load_bundle(str(path))

    def test_garbage_line_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"section": "meta", "data": {"schema": 1}}\n{oops\n')
        with pytest.raises(ObservabilityError, match=":2:"):
            load_bundle(str(path))

    def test_empty_bundle_builds_and_round_trips(self, tmp_path):
        bundle = build_bundle(reason="bare")
        path = str(tmp_path / "bare.jsonl")
        dump_bundle(path, bundle)
        loaded = load_bundle(path)
        assert loaded["metrics"] == {}
        assert loaded["records"] == []
