"""Multi-start solver pool: determinism, quality, parallel dispatch."""

import asyncio

import pytest

from repro.errors import ServiceError
from repro.service.pool import SolverPool, restart_seeds, solve_restart
from repro.workloads.io import workflow_to_dict, workload_to_dict
from repro.workloads.swim import synthesize_small_workload
from repro.workloads.workflow import search_engine_workflow


def _plan_request(seed=7, iterations=40, **overrides):
    request = {
        "op": "plan",
        "spec": workload_to_dict(synthesize_small_workload(n_jobs=4)),
        "provider": "google",
        "n_vms": 5,
        "iterations": iterations,
        "seed": seed,
        "use_castpp": True,
    }
    request.update(overrides)
    return request


class TestRestartSeeds:
    def test_restart_zero_is_the_request_seed(self):
        assert restart_seeds(42, 4)[0] == 42

    def test_deterministic_and_distinct(self):
        a = restart_seeds(42, 4)
        assert a == restart_seeds(42, 4)
        assert len(set(a)) == 4

    def test_different_request_seeds_diverge(self):
        assert restart_seeds(1, 4)[1:] != restart_seeds(2, 4)[1:]

    def test_single_restart(self):
        assert restart_seeds(9, 1) == [9]

    def test_bad_restarts_rejected(self):
        with pytest.raises(ServiceError, match="restarts"):
            restart_seeds(1, 0)


class TestSolveRestart:
    def test_plan_op(self):
        result = solve_restart(_plan_request())
        assert result["kind"] == "plan"
        assert result["n_jobs"] == 4
        assert result["utility"] > 0
        assert set(result["plan"]["placements"]) == {
            "sjob-00", "sjob-01", "sjob-02", "sjob-03"
        }

    def test_workflow_op(self):
        result = solve_restart(
            {
                "op": "plan_workflow",
                "spec": workflow_to_dict(search_engine_workflow()),
                "n_vms": 10,
                "iterations": 40,
                "seed": 3,
            }
        )
        assert result["kind"] == "workflow-plan"
        assert "meets_deadline" in result

    def test_unknown_op_rejected(self):
        with pytest.raises(ServiceError, match="op"):
            solve_restart({"op": "teleport"})


class TestMultiStart:
    def test_same_seed_twice_is_identical(self):
        pool = SolverPool(processes=0, restarts=3)
        try:
            a = pool.solve_sync(_plan_request(seed=11))
            b = pool.solve_sync(_plan_request(seed=11))
        finally:
            pool.shutdown()
        assert a["plan"] == b["plan"]
        assert a["restart_utilities"] == b["restart_utilities"]
        assert a["best_restart"] == b["best_restart"]

    def test_multistart_never_below_single_start(self):
        # Restart 0 *is* the single-start run for the request seed, so
        # best-of-N selection can only match or beat it.
        single = solve_restart(_plan_request(seed=5))
        pool = SolverPool(processes=0, restarts=4)
        try:
            multi = pool.solve_sync(_plan_request(seed=5))
        finally:
            pool.shutdown()
        assert multi["utility"] >= single["utility"]
        assert multi["restart_utilities"][0] == pytest.approx(single["utility"])
        assert multi["restarts"] == 4
        assert multi["seed"] == 5

    def test_async_and_sync_agree(self):
        pool = SolverPool(processes=0, restarts=2)
        try:
            sync_result = pool.solve_sync(_plan_request(seed=2))
            async_result = asyncio.run(pool.solve(_plan_request(seed=2)))
        finally:
            pool.shutdown()
        assert sync_result["plan"] == async_result["plan"]
        assert sync_result["restart_utilities"] == async_result["restart_utilities"]

    def test_process_pool_matches_thread_pool(self):
        # The executor flavour must not leak into results: fork two
        # real worker processes and compare against the thread pool.
        threads = SolverPool(processes=0, restarts=2)
        procs = SolverPool(processes=2, restarts=2)
        try:
            a = threads.solve_sync(_plan_request(seed=13, iterations=30))
            b = procs.solve_sync(_plan_request(seed=13, iterations=30))
        finally:
            threads.shutdown()
            procs.shutdown()
        assert a["plan"] == b["plan"]
        assert a["restart_utilities"] == b["restart_utilities"]

    def test_counters(self):
        pool = SolverPool(processes=0, restarts=3)
        try:
            pool.solve_sync(_plan_request())
        finally:
            pool.shutdown()
        stats = pool.stats()
        assert stats["tasks_started"] == 3
        assert stats["tasks_completed"] == 3
        assert stats["solves_completed"] == 1

    def test_facebook_multistart_beats_or_matches_single_start(self):
        # Acceptance check on the paper's headline workload: restarts=4
        # must return utility >= the single-start plan for the same seed.
        from repro.workloads.swim import synthesize_facebook_workload

        request = {
            "op": "plan",
            "spec": workload_to_dict(synthesize_facebook_workload()),
            "provider": "google",
            "n_vms": 25,
            "iterations": 200,
            "seed": 42,
            "use_castpp": True,
        }
        single = solve_restart(request)
        pool = SolverPool(processes=0, restarts=4)
        try:
            multi = pool.solve_sync(request)
        finally:
            pool.shutdown()
        assert multi["utility"] >= single["utility"]
        assert multi["restart_utilities"][0] == pytest.approx(single["utility"])
        assert len(multi["restart_seeds"]) == 4

    def test_restart_override_per_call(self):
        pool = SolverPool(processes=0, restarts=4)
        try:
            result = pool.solve_sync(_plan_request(), restarts=1)
        finally:
            pool.shutdown()
        assert result["restarts"] == 1

    def test_bad_restarts_rejected(self):
        with pytest.raises(ServiceError, match="restarts"):
            SolverPool(restarts=0)


class TestEvaluatorCounters:
    def test_single_restart_carries_evaluator_stats(self):
        result = solve_restart(_plan_request())
        ev = result["evaluator"]
        assert ev["full_evaluations"] >= 1
        assert ev["incremental_evaluations"] == 40  # one per iteration
        assert ev["cache_hits"] + ev["cache_misses"] > 0

    def test_multistart_sums_counters_across_restarts(self):
        singles = [
            solve_restart(dict(_plan_request(), seed=s))
            for s in restart_seeds(7, 3)
        ]
        pool = SolverPool(processes=0, restarts=3)
        try:
            multi = pool.solve_sync(_plan_request(seed=7))
        finally:
            pool.shutdown()
        for key in ("incremental_evaluations", "cache_hits", "jobs_skipped"):
            assert multi["evaluator"][key] == sum(r["evaluator"][key] for r in singles)
