"""Simulation result records and error hierarchy."""

import pytest

from repro.cloud.storage import Tier
from repro.errors import (
    CapacityError,
    CastError,
    CatalogError,
    PlanError,
    SimulationError,
    SolverError,
    WorkloadError,
)
from repro.simulator.metrics import JobSimResult, WorkloadSimResult


def result(jid="j", dl=1.0, mp=2.0, rd=3.0, up=4.0):
    return JobSimResult(
        job_id=jid, input_tier=Tier.EPH_SSD, output_tier=Tier.EPH_SSD,
        download_s=dl, map_s=mp, reduce_s=rd, upload_s=up,
    )


class TestJobSimResult:
    def test_processing_excludes_staging(self):
        assert result().processing_s == 5.0

    def test_total_includes_everything(self):
        assert result().total_s == 10.0


class TestWorkloadSimResult:
    def test_makespan_sums_jobs_and_transfers(self):
        res = WorkloadSimResult(
            job_results=(result("a"), result("b")), transfer_s=7.0
        )
        assert res.makespan_s == 27.0
        assert res.n_jobs == 2

    def test_by_job_index(self):
        res = WorkloadSimResult(job_results=(result("a"), result("b")))
        assert res.by_job()["b"].job_id == "b"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [CatalogError, CapacityError, PlanError, SimulationError,
         WorkloadError, SolverError],
    )
    def test_all_domain_errors_are_cast_errors(self, exc):
        assert issubclass(exc, CastError)
        with pytest.raises(CastError):
            raise exc("boom")

    def test_cast_error_not_caught_by_value_error(self):
        with pytest.raises(CastError):
            try:
                raise PlanError("x")
            except ValueError:  # pragma: no cover - must not match
                pytest.fail("PlanError should not be a ValueError")
