"""The paper's headline claims, asserted against the experiments.

These are the reproduction's acceptance tests: every table/figure
module must produce the qualitative shape the paper reports.  Solver
budgets are reduced where the shape is robust to them.
"""

import pytest

from repro.cloud.storage import Tier
from repro.workloads.spec import ReuseLifetime


# ---------------------------------------------------------------------------
# Section 3 characterization
# ---------------------------------------------------------------------------


class TestTable1:
    def test_measured_matches_catalog(self):
        from repro.experiments.table1 import run_table1

        for row in run_table1():
            assert row.measured_mb_s == pytest.approx(row.catalog_mb_s, rel=0.02)

    def test_all_eight_rows_present(self):
        from repro.experiments.table1 import run_table1

        rows = run_table1()
        assert len(rows) == 8


class TestTable2:
    def test_derived_classification_matches_paper(self):
        from repro.experiments.table2 import run_table2

        assert all(row.matches for row in run_table2())


class TestTable4:
    def test_histogram_reproduced_exactly(self):
        from repro.experiments.table4 import run_table4

        check = run_table4()
        assert check.histogram_matches
        assert check.data_share_large_bins_pct > 90.0
        assert 13.0 <= check.sharing_jobs_pct <= 17.0


@pytest.fixture(scope="module")
def fig1():
    from repro.experiments.fig1 import run_fig1

    return run_fig1()


class TestFig1:
    def test_sort_best_on_ephssd(self, fig1):
        assert fig1.best_utility_tier("sort") is Tier.EPH_SSD

    def test_join_best_on_persssd_worst_on_objstore(self, fig1):
        assert fig1.best_utility_tier("join") is Tier.PERS_SSD
        panel = fig1.panel("join")
        assert min(panel, key=lambda c: c.utility).tier is Tier.OBJ_STORE

    def test_grep_best_on_objstore(self, fig1):
        assert fig1.best_utility_tier("grep") is Tier.OBJ_STORE
        # §3.1.2: persSSD and objStore deliver similar Grep performance.
        ssd = fig1.cell("grep", Tier.PERS_SSD).total_s
        obj = fig1.cell("grep", Tier.OBJ_STORE).total_s
        assert obj == pytest.approx(ssd, rel=0.25)

    def test_kmeans_best_on_pershdd_and_tier_insensitive(self, fig1):
        assert fig1.best_utility_tier("kmeans") is Tier.PERS_HDD
        times = [
            fig1.cell("kmeans", t).processing_s
            for t in (Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE)
        ]
        assert max(times) / min(times) < 1.1

    def test_ephssd_pays_staging_everywhere(self, fig1):
        for app in ("sort", "join", "grep", "kmeans"):
            cell = fig1.cell(app, Tier.EPH_SSD)
            assert cell.download_s > 0


class TestFig2:
    def test_scaling_shape_and_regression(self):
        from repro.experiments.fig2 import run_fig2

        for series in run_fig2():
            # Paper: 100->200 GB halves the runtime (51.6% / 60.2%).
            assert series.drop_100_to_200_pct > 40.0
            # Diminishing returns: later doublings gain far less.
            i4 = series.capacities_gb.index(400.0)
            i8 = series.capacities_gb.index(800.0)
            later_drop = (series.observed_s[i4] - series.observed_s[i8]) / series.observed_s[i4]
            assert later_drop < series.drop_100_to_200_pct / 100.0
            # The PCHIP regression tracks held-out observations.
            assert series.regression_mean_abs_err_pct < 8.0


class TestFig3:
    @pytest.fixture(scope="class")
    def fig3(self):
        from repro.experiments.fig3 import run_fig3

        return run_fig3()

    def test_short_reuse_pushes_join_and_grep_to_ephssd(self, fig3):
        assert fig3.best_tier("join", ReuseLifetime.SHORT) is Tier.EPH_SSD
        assert fig3.best_tier("grep", ReuseLifetime.SHORT) is Tier.EPH_SSD

    def test_long_reuse_pushes_sort_to_objstore(self, fig3):
        assert fig3.best_tier("sort", ReuseLifetime.LONG) is Tier.OBJ_STORE

    def test_kmeans_stays_on_pershdd_across_patterns(self, fig3):
        for pattern in ReuseLifetime:
            assert fig3.best_tier("kmeans", pattern) is Tier.PERS_HDD

    def test_no_reuse_matches_fig1_winners(self, fig3):
        assert fig3.best_tier("sort", ReuseLifetime.NONE) is Tier.EPH_SSD
        assert fig3.best_tier("join", ReuseLifetime.NONE) is Tier.PERS_SSD
        assert fig3.best_tier("grep", ReuseLifetime.NONE) is Tier.OBJ_STORE

    def test_long_lifetime_demotes_persssd_for_io_apps(self, fig3):
        # §3.1.3: persSSD's holding bill makes it unattractive long-term.
        u_long = fig3.cell("grep", Tier.PERS_SSD, ReuseLifetime.LONG).utility_vs_ephssd
        obj_long = fig3.cell("grep", Tier.OBJ_STORE, ReuseLifetime.LONG).utility_vs_ephssd
        assert obj_long > u_long


class TestFig4:
    @pytest.fixture(scope="class")
    def plans(self):
        from repro.experiments.fig4 import run_fig4

        return {p.name: p for p in run_fig4()}

    def test_single_service_plans_miss_the_deadline(self, plans):
        assert not plans["objStore"].meets_deadline
        assert not plans["persSSD"].meets_deadline

    def test_hybrid_plans_meet_the_deadline(self, plans):
        assert plans["objStore+ephSSD"].meets_deadline
        assert plans["objStore+ephSSD+persSSD"].meets_deadline

    def test_fastest_plan_is_the_objstore_ephssd_hybrid(self, plans):
        fastest = min(plans.values(), key=lambda p: p.runtime_s)
        assert fastest.name == "objStore+ephSSD"

    def test_hybrids_cost_less_than_single_service_plans(self, plans):
        hybrid_max = max(
            plans["objStore+ephSSD"].cost_usd,
            plans["objStore+ephSSD+persSSD"].cost_usd,
        )
        assert hybrid_max < plans["persSSD"].cost_usd
        assert plans["objStore+ephSSD"].cost_usd < plans["objStore"].cost_usd


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        from repro.experiments.fig5 import run_fig5

        return run_fig5()

    def test_50_50_hybrids_run_at_slow_tier_speed(self, fig5):
        by_label = {p.label: p for p in fig5.hybrids_50_50}
        for slow in ("persSSD", "persHDD"):
            hybrid = by_label[f"ephSSD 50% / {slow} 50%"]
            pure = by_label[f"{slow} 100%"]
            assert hybrid.runtime_s == pytest.approx(pure.runtime_s, rel=0.05)

    def test_sweep_is_flat_until_high_fractions(self, fig5):
        base = fig5.sweep_point(0.0).runtime_s
        for frac in (0.3, 0.5, 0.7):
            assert fig5.sweep_point(frac).runtime_s == pytest.approx(base, rel=0.05)

    def test_only_all_or_nothing_recovers_full_speed(self, fig5):
        assert fig5.sweep_point(1.0).normalized_pct == pytest.approx(100.0)
        assert fig5.sweep_point(0.9).normalized_pct > 250.0


# ---------------------------------------------------------------------------
# Section 5 evaluation (solver budgets trimmed; shapes are stable)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig7():
    from repro.experiments.fig7 import run_fig7

    return run_fig7(iterations=6000)


class TestFig7:
    def test_cast_beats_every_non_tiered_config(self, fig7):
        for tier in ("ephSSD", "persSSD", "persHDD", "objStore"):
            assert fig7.utility_improvement_pct("CAST", f"{tier} 100%") > 0

    def test_castpp_improves_on_cast(self, fig7):
        # Paper: +14.4 %; we accept anything clearly positive.
        assert fig7.utility_improvement_pct("CAST++", "CAST") > 5.0

    def test_castpp_beats_greedy_baselines_substantially(self, fig7):
        # Paper: 52.9–211.8 % over greedy and key configs.
        assert fig7.utility_improvement_pct("CAST++", "greedy exact-fit") > 25.0
        assert fig7.utility_improvement_pct("CAST++", "greedy over-prov") > 25.0

    def test_objstore_100_is_the_weakest_config(self, fig7):
        worst = min(fig7.configs, key=lambda c: c.measured.utility)
        assert worst.name in ("objStore 100%", "ephSSD 100%")

    def test_cast_plan_actually_mixes_tiers(self, fig7):
        mix = fig7.config("CAST").capacity_share()
        assert len([s for s in mix.values() if s > 0.02]) >= 3

    def test_castpp_is_best_overall(self, fig7):
        best = max(fig7.configs, key=lambda c: c.measured.utility)
        assert best.name == "CAST++"


class TestFig8:
    def test_prediction_error_in_paper_band(self):
        from repro.experiments.fig8 import run_fig8

        result = run_fig8()
        assert result.mean_abs_error_pct < 15.0  # paper: 7.9 %
        assert result.same_trend

    def test_runtime_falls_with_capacity(self):
        from repro.experiments.fig8 import run_fig8

        points = run_fig8().points
        obs = [p.observed_min for p in points]
        assert obs == sorted(obs, reverse=True)


@pytest.fixture(scope="module")
def fig9():
    from repro.experiments.fig9 import run_fig9

    return run_fig9(iterations=2000)


class TestFig9:
    def test_castpp_meets_every_deadline(self, fig9):
        assert fig9.config("CAST++").misses == 0

    def test_castpp_has_the_lowest_cost(self, fig9):
        costs = {c.name: c.total_cost_usd for c in fig9.configs}
        assert min(costs, key=costs.get) == "CAST++"

    def test_slow_tiers_miss_everything(self, fig9):
        assert fig9.config("persHDD 100%").miss_rate_pct == 100.0
        assert fig9.config("objStore 100%").miss_rate_pct == 100.0

    def test_persssd_misses_some(self, fig9):
        assert 0 < fig9.config("persSSD 100%").misses < 5

    def test_workflow_oblivious_cast_misses_deadlines(self, fig9):
        assert fig9.config("CAST").misses >= 1

    def test_fast_sim_panel_is_bit_identical(self, fig9):
        # The suite's DAG jobs are all phased, so --fast-sim must fall
        # back to the exact event engine per request: the whole panel
        # is bit-identical with the flag on.  (The second run's
        # simulations are content-addressed cache hits, so this mostly
        # costs the two solver runs.)
        from repro.experiments.fig9 import run_fig9

        assert run_fig9(iterations=2000, fast_sim=True) == fig9
