"""Simulator edge cases: tiny jobs, cross-tier outputs, phase clocks."""

import pytest

from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.simulator.engine import simulate_job, simulate_workflow
from repro.simulator.tasks import TASK_STARTUP_S
from repro.workloads.apps import GREP, KMEANS, SORT
from repro.workloads.spec import JobSpec
from repro.workloads.workflow import Workflow


class TestTinyJobs:
    def test_single_map_job_completes(self, provider, char_cluster):
        job = JobSpec(job_id="tiny", app=GREP, input_gb=0.25, n_maps=1)
        res = simulate_job(job, Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb={Tier.PERS_SSD: 100.0})
        assert res.total_s > 2 * TASK_STARTUP_S  # map + reduce startups

    def test_small_jobs_are_tier_insensitive(self, provider, char_cluster):
        """§5.1.1: 'the runtime for small jobs is not sensitive to the
        choice of storage tier'."""
        job = JobSpec(job_id="bin1", app=GREP, input_gb=1.0, n_maps=1)
        times = []
        for tier, caps in [
            (Tier.PERS_SSD, {Tier.PERS_SSD: 500.0}),
            (Tier.PERS_HDD, {Tier.PERS_HDD: 500.0}),
        ]:
            times.append(
                simulate_job(job, tier, char_cluster, provider,
                             per_vm_capacity_gb=caps).processing_s
            )
        assert max(times) / min(times) < 2.0

    def test_more_nodes_than_tasks_is_fine(self, provider):
        big_cluster = ClusterSpec(n_vms=50)
        job = JobSpec(job_id="wide", app=SORT, input_gb=2.0, n_maps=8)
        res = simulate_job(job, Tier.PERS_SSD, big_cluster, provider,
                           per_vm_capacity_gb={Tier.PERS_SSD: 100.0})
        assert res.total_s > 0


class TestCrossTierOutputs:
    def test_output_to_block_tier_skips_upload(self, provider, char_cluster):
        job = JobSpec(job_id="x", app=SORT, input_gb=20.0)
        res = simulate_job(
            job, Tier.EPH_SSD, char_cluster, provider,
            per_vm_capacity_gb={Tier.EPH_SSD: 375.0, Tier.PERS_SSD: 500.0},
            output_tier=Tier.PERS_SSD,
        )
        # Input staged in, but the persistent output needs no upload.
        assert res.download_s > 0
        assert res.upload_s == 0.0

    def test_small_file_outputs_pay_connector_overheads(self, provider,
                                                        char_cluster):
        """A many-small-files app (Join, 150 objects per reduce task)
        slows markedly when its output lands on objStore; a one-file
        app (Sort) does not — per-request setup, not bandwidth, is the
        object store's write penalty."""
        from repro.workloads.apps import JOIN

        def slowdown(app):
            job = JobSpec(job_id="x", app=app, input_gb=20.0)
            local = simulate_job(
                job, Tier.PERS_SSD, char_cluster, provider,
                per_vm_capacity_gb={Tier.PERS_SSD: 500.0},
            )
            remote = simulate_job(
                job, Tier.PERS_SSD, char_cluster, provider,
                per_vm_capacity_gb={Tier.PERS_SSD: 500.0},
                output_tier=Tier.OBJ_STORE,
            )
            return remote.reduce_s / local.reduce_s

        assert slowdown(JOIN) > 1.5
        assert slowdown(SORT) < 1.2


class TestWorkflowShapes:
    def test_multi_root_workflow(self, provider, char_cluster):
        a = JobSpec(job_id="rootA", app=GREP, input_gb=20.0)
        b = JobSpec(job_id="rootB", app=GREP, input_gb=20.0)
        c = JobSpec(job_id="joinC", app=SORT, input_gb=10.0)
        wf = Workflow(name="two-roots", jobs=(a, b, c),
                      edges=(("rootA", "joinC"), ("rootB", "joinC")),
                      deadline_s=10_000.0)
        res = simulate_workflow(
            wf, {j.job_id: Tier.PERS_SSD for j in wf.jobs},
            char_cluster, provider,
            per_vm_capacity_gb={Tier.PERS_SSD: 500.0},
        )
        assert res.n_jobs == 3

    def test_single_job_workflow_equals_plain_job(self, provider, char_cluster):
        job = JobSpec(job_id="solo", app=KMEANS, input_gb=30.0)
        wf = Workflow(name="solo-wf", jobs=(job,), edges=(), deadline_s=1e6)
        caps = {Tier.PERS_HDD: 500.0}
        wf_res = simulate_workflow(wf, {"solo": Tier.PERS_HDD},
                                   char_cluster, provider,
                                   per_vm_capacity_gb=caps)
        job_res = simulate_job(job, Tier.PERS_HDD, char_cluster, provider,
                               per_vm_capacity_gb=caps)
        assert wf_res.makespan_s == pytest.approx(job_res.total_s)

    def test_transfer_counted_once_per_edge(self, provider, char_cluster):
        a = JobSpec(job_id="p", app=GREP, input_gb=40.0)
        b = JobSpec(job_id="c1", app=SORT, input_gb=10.0)
        c = JobSpec(job_id="c2", app=SORT, input_gb=10.0)
        wf = Workflow(name="fanout", jobs=(a, b, c),
                      edges=(("p", "c1"), ("p", "c2")), deadline_s=1e6)
        caps = {Tier.PERS_SSD: 500.0, Tier.PERS_HDD: 500.0}
        one_edge = simulate_workflow(
            wf, {"p": Tier.PERS_SSD, "c1": Tier.PERS_HDD, "c2": Tier.PERS_SSD},
            char_cluster, provider, per_vm_capacity_gb=caps,
        )
        two_edges = simulate_workflow(
            wf, {"p": Tier.PERS_SSD, "c1": Tier.PERS_HDD, "c2": Tier.PERS_HDD},
            char_cluster, provider, per_vm_capacity_gb=caps,
        )
        assert two_edges.transfer_s == pytest.approx(2 * one_edge.transfer_s)


class TestPhaseClockConsistency:
    def test_phase_durations_sum_to_total(self, provider, char_cluster):
        job = JobSpec(job_id="sum", app=SORT, input_gb=50.0)
        res = simulate_job(job, Tier.EPH_SSD, char_cluster, provider,
                           per_vm_capacity_gb={Tier.EPH_SSD: 375.0})
        assert res.total_s == pytest.approx(
            res.download_s + res.map_s + res.reduce_s + res.upload_s
        )

    def test_events_counted(self, provider, char_cluster):
        job = JobSpec(job_id="ev", app=GREP, input_gb=10.0)
        res = simulate_job(job, Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb={Tier.PERS_SSD: 500.0})
        # At least read+compute+write legs per map task.
        assert res.events >= job.map_tasks * 3
