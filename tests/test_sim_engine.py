"""End-to-end job/workload/workflow simulation behaviours."""

import pytest

from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.errors import SimulationError
from repro.simulator.engine import (
    cross_tier_transfer_seconds,
    default_per_vm_capacity,
    intermediate_tier_for,
    simulate_job,
    simulate_workflow,
    simulate_workload,
)
from repro.simulator.hdfs import BlockPlacement
from repro.workloads.apps import GREP, KMEANS, SORT
from repro.workloads.spec import JobSpec, WorkloadSpec
from repro.workloads.workflow import Workflow, search_engine_workflow

CAPS = {
    Tier.EPH_SSD: {Tier.EPH_SSD: 375.0},
    Tier.PERS_SSD: {Tier.PERS_SSD: 500.0},
    Tier.PERS_HDD: {Tier.PERS_HDD: 500.0},
    Tier.OBJ_STORE: {Tier.PERS_SSD: 250.0},
}


def sort_job(gb=50.0):
    return JobSpec(job_id="sort", app=SORT, input_gb=gb)


class TestIntermediateTier:
    def test_block_tiers_keep_their_own_intermediate(self, provider):
        for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD):
            assert intermediate_tier_for(provider, tier) is tier

    def test_objstore_shuffles_through_persssd(self, provider):
        assert intermediate_tier_for(provider, Tier.OBJ_STORE) is Tier.PERS_SSD


class TestDefaultCapacity:
    def test_objstore_gets_helper_volume(self, provider, char_cluster):
        caps = default_per_vm_capacity(sort_job(), Tier.OBJ_STORE, char_cluster, provider)
        assert caps[Tier.PERS_SSD] > 0

    def test_eph_rounds_to_volumes(self, provider, char_cluster):
        caps = default_per_vm_capacity(sort_job(2000.0), Tier.EPH_SSD, char_cluster, provider)
        assert caps[Tier.EPH_SSD] % 375.0 == 0.0

    def test_block_tier_gets_footprint_share(self, provider, char_cluster):
        job = sort_job(5000.0)
        caps = default_per_vm_capacity(job, Tier.PERS_SSD, char_cluster, provider)
        assert caps[Tier.PERS_SSD] == pytest.approx(job.footprint_gb / 10)


class TestSimulateJob:
    def test_phases_ordered_and_positive(self, provider, char_cluster):
        res = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        assert res.map_s > 0
        assert res.reduce_s > 0
        assert res.download_s == 0.0
        assert res.upload_s == 0.0
        assert res.total_s == pytest.approx(res.map_s + res.reduce_s)

    def test_eph_jobs_pay_staging(self, provider, char_cluster):
        res = simulate_job(sort_job(), Tier.EPH_SSD, char_cluster, provider,
                           per_vm_capacity_gb=CAPS[Tier.EPH_SSD])
        assert res.download_s > 0
        assert res.upload_s > 0

    def test_staging_flags_disable_transfers(self, provider, char_cluster):
        res = simulate_job(sort_job(), Tier.EPH_SSD, char_cluster, provider,
                           per_vm_capacity_gb=CAPS[Tier.EPH_SSD],
                           stage_in=False, stage_out=False)
        assert res.download_s == 0.0
        assert res.upload_s == 0.0

    def test_faster_tier_finishes_sooner(self, provider, char_cluster):
        ssd = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        hdd = simulate_job(sort_job(), Tier.PERS_HDD, char_cluster, provider,
                           per_vm_capacity_gb=CAPS[Tier.PERS_HDD])
        assert hdd.total_s > ssd.total_s * 1.5

    def test_capacity_scaling_speeds_io_jobs(self, provider, char_cluster):
        small = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                             per_vm_capacity_gb={Tier.PERS_SSD: 100.0})
        large = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                             per_vm_capacity_gb={Tier.PERS_SSD: 500.0})
        assert small.total_s > large.total_s * 2

    def test_cpu_bound_job_is_tier_insensitive(self, provider, char_cluster):
        job = JobSpec(job_id="km", app=KMEANS, input_gb=50.0)
        times = [
            simulate_job(job, tier, char_cluster, provider,
                         per_vm_capacity_gb=CAPS[tier]).processing_s
            for tier in (Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE)
        ]
        assert max(times) / min(times) < 1.1

    def test_determinism(self, provider, char_cluster):
        a = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                         per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        b = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                         per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        assert a.total_s == b.total_s
        assert a.events == b.events

    def test_block_placement_must_match_map_count(self, provider, char_cluster):
        job = sort_job()
        bp = BlockPlacement.uniform(job.map_tasks + 1, Tier.PERS_SSD)
        with pytest.raises(SimulationError, match="placement"):
            simulate_job(job, Tier.PERS_SSD, char_cluster, provider,
                         block_placement=bp)

    def test_output_tier_override(self, provider, char_cluster):
        res = simulate_job(sort_job(), Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb=CAPS[Tier.PERS_SSD],
                           output_tier=Tier.EPH_SSD)
        assert res.output_tier is Tier.EPH_SSD
        assert res.upload_s > 0  # ephSSD output needs persistence


class TestStragglers:
    """The Fig. 5 mechanism at unit scale."""

    def test_half_slow_blocks_dominate_runtime(self, provider):
        cluster = ClusterSpec(n_vms=4)
        job = JobSpec(job_id="g", app=GREP, input_gb=3.0, n_maps=12)
        caps = {Tier.EPH_SSD: 375.0, Tier.PERS_HDD: 250.0}
        pure_slow = simulate_job(job, Tier.EPH_SSD, cluster, provider,
                                 per_vm_capacity_gb=caps,
                                 block_placement=BlockPlacement.uniform(12, Tier.PERS_HDD))
        hybrid = simulate_job(job, Tier.EPH_SSD, cluster, provider,
                              per_vm_capacity_gb=caps,
                              block_placement=BlockPlacement.fractional(
                                  12, Tier.EPH_SSD, Tier.PERS_HDD, 0.5))
        assert hybrid.map_s == pytest.approx(pure_slow.map_s, rel=0.02)


class TestWorkload:
    def test_sequential_makespan_is_sum(self, provider, char_cluster):
        jobs = (sort_job(), JobSpec(job_id="g", app=GREP, input_gb=30.0))
        wl = WorkloadSpec(jobs=jobs)
        tiers = {"sort": Tier.PERS_SSD, "g": Tier.PERS_SSD}
        res = simulate_workload(wl, tiers, char_cluster, provider,
                                per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        assert res.n_jobs == 2
        assert res.makespan_s == pytest.approx(
            sum(r.total_s for r in res.job_results)
        )

    def test_by_job_lookup(self, provider, char_cluster):
        wl = WorkloadSpec(jobs=(sort_job(),))
        res = simulate_workload(wl, {"sort": Tier.PERS_SSD}, char_cluster, provider,
                                per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        assert res.by_job()["sort"].job_id == "sort"


class TestWorkflow:
    def test_same_tier_workflow_has_no_transfers(self, provider, char_cluster):
        wf = search_engine_workflow()
        tiers = {j.job_id: Tier.PERS_SSD for j in wf.jobs}
        res = simulate_workflow(wf, tiers, char_cluster, provider,
                                per_vm_capacity_gb=CAPS[Tier.PERS_SSD])
        assert res.transfer_s == 0.0

    def test_cross_tier_edges_add_transfer_time(self, provider, char_cluster):
        wf = search_engine_workflow()
        tiers = {j.job_id: Tier.PERS_SSD for j in wf.jobs}
        tiers["join-120g"] = Tier.PERS_HDD
        res = simulate_workflow(wf, tiers, char_cluster, provider,
                                per_vm_capacity_gb={Tier.PERS_SSD: 500.0,
                                                    Tier.PERS_HDD: 500.0})
        assert res.transfer_s > 0

    def test_mid_dag_eph_jobs_skip_staging(self, provider, char_cluster):
        wf = search_engine_workflow()
        tiers = {j.job_id: Tier.EPH_SSD for j in wf.jobs}
        res = simulate_workflow(wf, tiers, char_cluster, provider,
                                per_vm_capacity_gb={Tier.EPH_SSD: 375.0})
        by_job = res.by_job()
        assert by_job["grep-250g"].download_s > 0      # root stages in
        assert by_job["sort-120g"].download_s == 0.0   # mid-DAG warm
        assert by_job["sort-120g"].upload_s == 0.0
        assert by_job["join-120g"].upload_s > 0        # leaf persists

    def test_transfer_seconds_zero_for_same_tier(self, provider, char_cluster):
        assert cross_tier_transfer_seconds(
            100.0, Tier.PERS_SSD, Tier.PERS_SSD, char_cluster, provider
        ) == 0.0

    def test_transfer_seconds_bottlenecked_by_slower_side(self, provider, char_cluster):
        caps = {Tier.PERS_SSD: 500.0, Tier.PERS_HDD: 500.0}
        t = cross_tier_transfer_seconds(
            100.0, Tier.PERS_SSD, Tier.PERS_HDD, char_cluster, provider, caps
        )
        # 10 GB per node at the HDD's 97 MB/s.
        assert t == pytest.approx(10_000.0 / 97.0, rel=0.01)
