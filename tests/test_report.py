"""The reproduction-report generator."""

import pytest

from repro.experiments.report import generate_report


@pytest.fixture(scope="module")
def quick_report():
    return generate_report(quick=True)


class TestReport:
    def test_contains_every_section(self, quick_report):
        for title in (
            "Table 1", "Table 2", "Table 4",
            "Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5",
            "Fig. 7", "Fig. 8", "Fig. 9",
            "annealing budget", "PCHIP vs linear",
            "heat-based", "reactive dynamic",
        ):
            assert title in quick_report, title

    def test_quick_mode_is_flagged(self, quick_report):
        assert "quick mode" in quick_report

    def test_is_markdown_with_code_fences(self, quick_report):
        assert quick_report.startswith("# CAST reproduction report")
        assert quick_report.count("```") % 2 == 0
        assert quick_report.count("## ") == 15

    def test_cli_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--quick", "--out", str(out)]) == 0
        assert out.exists()
        assert "CAST reproduction report" in out.read_text()
