"""Virtual-time channel: properties and parity with the reference impl.

The two :mod:`repro.simulator.storage_backend` implementations are
exercised *directly* (bypassing the env-driven factory) so one process
can compare them side by side on identical transfer schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.events import EventQueue
from repro.simulator.storage_backend import (
    ReferenceSharedChannel,
    SharedChannel,
    VirtualTimeSharedChannel,
    channel_impl_name,
    use_reference_channel,
)

IMPLS = [ReferenceSharedChannel, VirtualTimeSharedChannel]

#: (start offset, size) schedules: a few overlapping bursts of varied
#: sizes, including same-instant cohorts (offset 0 repeats).
schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=0.001, max_value=2000.0, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=1,
    max_size=20,
)


def run_schedule(cls, transfers, bandwidth=100.0, overhead=0.0):
    """Run (start, size) transfers through ``cls``; completion times by index."""
    q = EventQueue()
    ch = cls(q, bandwidth, request_overhead_s=overhead)
    done = {}
    for i, (start, size) in enumerate(transfers):
        def submit(i=i, size=size):
            ch.start_transfer(size, lambda i=i: done.__setitem__(i, q.now))
        q.schedule_at(start, submit)
    q.run()
    return done, ch


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(schedules)
    @pytest.mark.parametrize("cls", IMPLS)
    def test_byte_conservation(self, cls, transfers):
        # The fluid model serves at aggregate rate B whenever anything
        # is active, so the busy-MB odometer must equal the bytes fed in.
        done, ch = run_schedule(cls, transfers)
        total = sum(size for _, size in transfers)
        assert ch.busy_mb == pytest.approx(total, rel=1e-9)
        assert ch.n_transfers == len(transfers)
        assert ch.active_transfers == 0
        assert len(done) == len(transfers)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.5, max_value=500.0, allow_nan=False,
                  allow_infinity=False),
        st.integers(min_value=2, max_value=12),
    )
    @pytest.mark.parametrize("cls", IMPLS)
    def test_equal_size_cohort_is_fifo_and_simultaneous(self, cls, size, k):
        # k equal transfers admitted together finish together, and
        # their callbacks fire in admission order.
        q = EventQueue()
        ch = cls(q, 100.0)
        order = []
        for i in range(k):
            ch.start_transfer(size, lambda i=i: order.append((i, q.now)))
        q.run()
        assert [i for i, _ in order] == list(range(k))
        times = {t for _, t in order}
        assert len(times) == 1
        assert times.pop() == pytest.approx(size * k / 100.0, rel=1e-9)

    @pytest.mark.parametrize("cls", IMPLS)
    def test_completion_monotone_in_size_within_batch(self, cls):
        done, _ = run_schedule(cls, [(0.0, 100.0), (0.0, 50.0), (0.0, 200.0)])
        assert done[1] < done[0] < done[2]


class TestParity:
    @settings(max_examples=80, deadline=None)
    @given(schedules)
    def test_completion_times_match_reference(self, transfers):
        ref, _ = run_schedule(ReferenceSharedChannel, transfers)
        virt, _ = run_schedule(VirtualTimeSharedChannel, transfers)
        for i, t_ref in ref.items():
            t_virt = virt[i]
            denom = max(abs(t_ref), abs(t_virt), 1e-12)
            assert abs(t_ref - t_virt) / denom <= 1e-9, (
                f"transfer {i}: ref={t_ref!r} virt={t_virt!r}"
            )

    @settings(max_examples=20, deadline=None)
    @given(schedules)
    def test_parity_with_request_overhead(self, transfers):
        ref, _ = run_schedule(ReferenceSharedChannel, transfers, overhead=0.08)
        virt, _ = run_schedule(VirtualTimeSharedChannel, transfers, overhead=0.08)
        for i in ref:
            assert virt[i] == pytest.approx(ref[i], rel=1e-9)


class TestFactory:
    def test_default_is_virtual_time(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
        assert not use_reference_channel()
        assert channel_impl_name() == "virtual-time"
        ch = SharedChannel(EventQueue(), 100.0)
        assert isinstance(ch, VirtualTimeSharedChannel)

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        assert use_reference_channel()
        assert channel_impl_name() == "reference"
        ch = SharedChannel(EventQueue(), 100.0)
        assert isinstance(ch, ReferenceSharedChannel)

    def test_env_zero_means_virtual(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "0")
        assert not use_reference_channel()
        assert isinstance(SharedChannel(EventQueue(), 100.0), VirtualTimeSharedChannel)
