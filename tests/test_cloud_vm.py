"""VM shapes and cluster wave arithmetic."""

import pytest

from repro.cloud.vm import (
    CHARACTERIZATION_CLUSTER,
    EVALUATION_CLUSTER,
    N1_STANDARD_4,
    N1_STANDARD_16,
    ClusterSpec,
    VMType,
)


class TestVMTypes:
    def test_paper_testbed_shapes(self):
        assert N1_STANDARD_16.vcpus == 16
        assert N1_STANDARD_16.memory_gb == 60.0
        assert N1_STANDARD_4.vcpus == 4
        assert N1_STANDARD_4.memory_gb == 15.0

    def test_slots_positive(self):
        assert N1_STANDARD_16.map_slots > 0
        assert N1_STANDARD_16.reduce_slots > 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            VMType(name="bad", vcpus=0, memory_gb=1.0, map_slots=1, reduce_slots=1)
        with pytest.raises(ValueError):
            VMType(name="bad", vcpus=4, memory_gb=1.0, map_slots=0, reduce_slots=1)


class TestClusterSpec:
    def test_paper_clusters_core_counts(self):
        assert CHARACTERIZATION_CLUSTER.total_cores == 160
        assert EVALUATION_CLUSTER.total_cores == 400

    def test_slot_totals(self):
        cluster = ClusterSpec(n_vms=10)
        assert cluster.total_map_slots == 10 * N1_STANDARD_16.map_slots
        assert cluster.total_reduce_slots == 10 * N1_STANDARD_16.reduce_slots

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_vms=0)


class TestWaves:
    @pytest.fixture()
    def cluster(self):
        return ClusterSpec(n_vms=10)  # 100 map slots, 60 reduce slots

    def test_exact_fill_is_one_wave(self, cluster):
        assert cluster.map_waves(100) == 1

    def test_one_task_over_is_two_waves(self, cluster):
        assert cluster.map_waves(101) == 2

    def test_zero_tasks_zero_waves(self, cluster):
        assert cluster.map_waves(0) == 0
        assert cluster.reduce_waves(0) == 0

    def test_reduce_waves_use_reduce_slots(self, cluster):
        assert cluster.reduce_waves(60) == 1
        assert cluster.reduce_waves(61) == 2

    def test_eq1_ceil_semantics(self, cluster):
        # ceil(m / (nvm * mc)) from Eq. 1
        for m in (1, 99, 100, 150, 250, 1000):
            assert cluster.map_waves(m) == -(-m // cluster.total_map_slots)
