"""Simulated cluster: channel sizing from the catalog."""

import pytest

from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.errors import SimulationError
from repro.simulator.cluster import SimCluster


@pytest.fixture()
def cluster(provider):
    return SimCluster(
        ClusterSpec(n_vms=4),
        provider,
        {Tier.PERS_SSD: 500.0, Tier.PERS_HDD: 250.0, Tier.EPH_SSD: 750.0},
    )


class TestChannelSizing:
    def test_pers_ssd_follows_volume_curve(self, cluster):
        assert cluster.tier_bandwidth_per_node(Tier.PERS_SSD) == pytest.approx(234.0)

    def test_pers_hdd_follows_volume_curve(self, cluster):
        assert cluster.tier_bandwidth_per_node(Tier.PERS_HDD) == pytest.approx(45.0)

    def test_eph_ssd_single_device_speed_regardless_of_volumes(self, cluster):
        # Two volumes provisioned, but Hadoop local dirs don't stripe.
        assert cluster.tier_bandwidth_per_node(Tier.EPH_SSD) == pytest.approx(733.0)

    def test_obj_store_per_node_connector_rate(self, cluster):
        assert cluster.tier_bandwidth_per_node(Tier.OBJ_STORE) == pytest.approx(265.0)

    def test_obj_store_channel_has_request_overhead(self, cluster, provider):
        ch = cluster.node(0).channel(Tier.OBJ_STORE)
        assert ch.request_overhead_s == provider.service(Tier.OBJ_STORE).request_overhead_s

    def test_unsized_block_tier_falls_back_to_smallest_volume(self, provider):
        cluster = SimCluster(ClusterSpec(n_vms=2), provider, {})
        assert cluster.tier_bandwidth_per_node(Tier.PERS_SSD) == pytest.approx(48.0)

    def test_staging_channel_slower_than_streaming(self, cluster, provider):
        staging = cluster.node(0).staging_channel()
        svc = provider.service(Tier.OBJ_STORE)
        assert staging.bandwidth_mb_s == svc.bulk_staging_mb_s
        assert staging.bandwidth_mb_s < svc.throughput_mb_s(1.0)


class TestNodeStructure:
    def test_channels_are_per_node(self, cluster):
        a = cluster.node(0).channel(Tier.PERS_SSD)
        b = cluster.node(1).channel(Tier.PERS_SSD)
        assert a is not b

    def test_channel_is_cached_per_node(self, cluster):
        assert cluster.node(2).channel(Tier.PERS_SSD) is cluster.node(2).channel(Tier.PERS_SSD)

    def test_slot_counters_initialized(self, cluster):
        node = cluster.node(0)
        assert node.map_slots_free == cluster.spec.vm.map_slots
        assert node.reduce_slots_free == cluster.spec.vm.reduce_slots

    def test_node_lookup_bounds(self, cluster):
        with pytest.raises(SimulationError, match="no node"):
            cluster.node(99)

    def test_n_nodes(self, cluster):
        assert cluster.n_nodes == 4
