"""Capacity→performance scaling curves."""

import numpy as np
import pytest

from repro.cloud.scaling import ScalingCurve, flat_curve


@pytest.fixture()
def pers_ssd_curve() -> ScalingCurve:
    """The Table 1 persSSD anchors with the 240 MB/s per-VM cap."""
    return ScalingCurve(
        points=((100.0, 48.0), (250.0, 118.0), (500.0, 234.0)), cap=240.0
    )


class TestAnchors:
    def test_exact_at_anchors(self, pers_ssd_curve):
        assert pers_ssd_curve(100.0) == pytest.approx(48.0)
        assert pers_ssd_curve(250.0) == pytest.approx(118.0)
        assert pers_ssd_curve(500.0) == pytest.approx(234.0)

    def test_interpolation_between_anchors_is_bounded(self, pers_ssd_curve):
        mid = pers_ssd_curve(175.0)
        assert 48.0 < mid < 118.0

    def test_below_first_anchor_scales_through_origin(self, pers_ssd_curve):
        assert pers_ssd_curve(50.0) == pytest.approx(24.0)

    def test_above_last_anchor_continues_then_caps(self, pers_ssd_curve):
        assert pers_ssd_curve(510.0) > 234.0
        assert pers_ssd_curve(5000.0) == 240.0


class TestMonotonicity:
    def test_non_decreasing_over_range(self, pers_ssd_curve):
        caps = np.linspace(10.0, 2000.0, 300)
        vals = pers_ssd_curve.evaluate(caps)
        assert np.all(np.diff(vals) >= -1e-9)

    def test_saturation_capacity(self, pers_ssd_curve):
        sat = pers_ssd_curve.saturation_capacity_gb
        assert pers_ssd_curve(sat) == pytest.approx(240.0, rel=1e-6)
        assert pers_ssd_curve(sat - 50.0) < 240.0


class TestValidation:
    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            ScalingCurve(points=(), cap=1.0)

    def test_non_increasing_capacities_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            ScalingCurve(points=((100.0, 10.0), (100.0, 20.0)), cap=30.0)

    def test_decreasing_values_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ScalingCurve(points=((100.0, 20.0), (200.0, 10.0)), cap=30.0)

    def test_cap_below_anchor_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            ScalingCurve(points=((100.0, 50.0),), cap=10.0)

    def test_non_positive_capacity_query_rejected(self, pers_ssd_curve):
        with pytest.raises(ValueError, match="capacity"):
            pers_ssd_curve(0.0)


class TestFlatCurve:
    def test_constant_everywhere(self):
        curve = flat_curve(733.0)
        for cap in (1.0, 375.0, 10_000.0):
            assert curve(cap) == 733.0

    def test_saturates_immediately(self):
        assert flat_curve(10.0).saturation_capacity_gb == 1.0
