"""The AWS-style provider catalog and cross-provider planning."""

import pytest

from repro.cloud.aws import C3_4XLARGE, aws_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec


@pytest.fixture(scope="module")
def aws():
    return aws_2015()


class TestCatalog:
    def test_all_four_roles_present(self, aws):
        assert set(aws.tiers) == set(Tier)

    def test_instance_store_is_ephemeral_with_backing(self, aws):
        svc = aws.service(Tier.EPH_SSD)
        assert not svc.persistent
        assert svc.requires_backing is Tier.OBJ_STORE
        assert svc.fixed_volume_gb == 160.0
        assert svc.max_volumes_per_vm == 2

    def test_gp2_stripes_to_the_instance_ceiling(self, aws):
        svc = aws.service(Tier.PERS_SSD)
        assert svc.throughput_mb_s(100.0) < svc.throughput_mb_s(500.0)
        assert svc.throughput_mb_s(50_000.0 if False else 5000.0) == 250.0

    def test_s3_has_higher_request_latency_than_gcs(self, aws, provider):
        s3 = aws.service(Tier.OBJ_STORE)
        gcs = provider.service(Tier.OBJ_STORE)
        assert s3.request_overhead_s > gcs.request_overhead_s

    def test_s3_requires_intermediate_helper(self, aws):
        assert aws.service(Tier.OBJ_STORE).requires_intermediate is Tier.PERS_SSD

    def test_gp2_undercuts_gce_persistent_ssd(self, aws, provider):
        # Mid-2015 EBS gp2 ($0.10) undercut GCE pd-ssd ($0.17)...
        assert (
            aws.service(Tier.PERS_SSD).price_gb_month
            < provider.service(Tier.PERS_SSD).price_gb_month
        )
        # ...while magnetic EBS cost slightly more than GCE pd-standard.
        assert (
            aws.service(Tier.PERS_HDD).price_gb_month
            > provider.service(Tier.PERS_HDD).price_gb_month
        )

    def test_default_vm(self, aws):
        assert aws.default_vm is C3_4XLARGE
        assert aws.default_vm.vcpus == 16


class TestCrossProviderPlanning:
    """The whole pipeline must run unchanged against the AWS catalog."""

    @pytest.fixture(scope="class")
    def aws_matrix(self, aws):
        from repro.profiler.profiler import build_model_matrix

        return build_model_matrix(provider=aws, cluster_spec=ClusterSpec(n_vms=10, vm=aws.default_vm))

    def test_profiler_runs_on_aws(self, aws, aws_matrix):
        bw = aws_matrix.bandwidths("sort", Tier.PERS_SSD, 500.0)
        assert bw.map_mb_s > 0

    def test_simulator_respects_aws_channel_speeds(self, aws):
        from repro.simulator.cluster import SimCluster

        cluster = SimCluster(ClusterSpec(n_vms=2, vm=aws.default_vm), aws,
                             {Tier.PERS_SSD: 500.0})
        assert cluster.tier_bandwidth_per_node(Tier.PERS_SSD) == pytest.approx(220.0)
        assert cluster.tier_bandwidth_per_node(Tier.OBJ_STORE) == pytest.approx(180.0)

    def test_solver_produces_valid_aws_plan(self, aws, aws_matrix):
        from repro.core.annealing import AnnealingSchedule
        from repro.core.castpp import CastPlusPlus
        from repro.workloads.swim import synthesize_small_workload

        wl = synthesize_small_workload()
        cluster = ClusterSpec(n_vms=10, vm=aws.default_vm)
        solver = CastPlusPlus(cluster_spec=cluster, matrix=aws_matrix,
                              provider=aws,
                              schedule=AnnealingSchedule(iter_max=300), seed=1)
        plan = solver.solve(wl).best_state
        plan.validate(wl, aws)
        assert solver.evaluate(wl, plan).utility > 0

    def test_providers_yield_different_plans_or_economics(self, aws, aws_matrix,
                                                          provider, matrix,
                                                          char_cluster):
        """Same workload, different catalogs → different evaluations."""
        from repro.core.plan import TieringPlan
        from repro.core.utility import evaluate_plan
        from repro.workloads.swim import synthesize_small_workload

        wl = synthesize_small_workload()
        plan = TieringPlan.uniform(wl, Tier.PERS_SSD)
        aws_cluster = ClusterSpec(n_vms=10, vm=aws.default_vm)
        ev_g = evaluate_plan(wl, plan, char_cluster, matrix, provider)
        ev_a = evaluate_plan(wl, plan, aws_cluster, aws_matrix, aws)
        assert ev_g.cost.total_usd != pytest.approx(ev_a.cost.total_usd, rel=0.01)
