"""The supervisor: real shard subprocesses, crash restart, SIGTERM drain.

These tests spawn actual ``python -m repro serve`` processes, so they
are the slowest in the suite — each scenario keeps its fleet as small
as the behaviour under test allows.
"""

import asyncio
import signal

import pytest

from repro.errors import FleetError
from repro.fleet import FleetRouter, FleetSupervisor
from repro.service import PlannerClient
from repro.workloads.io import workload_to_dict
from repro.workloads.swim import synthesize_small_workload

pytestmark = pytest.mark.slow


def small_spec(n_jobs=4):
    return workload_to_dict(synthesize_small_workload(n_jobs=n_jobs))


def run(coro):
    return asyncio.run(coro)


async def fleet_up(shards, **kwargs):
    router = FleetRouter(health_interval_s=0, default_restarts=2)
    await router.start()
    serve_task = asyncio.create_task(router.serve_forever())
    supervisor = FleetSupervisor(
        router, shards=shards, restarts=2, check_interval_s=0.1, **kwargs
    )
    try:
        await supervisor.start()
    except BaseException:
        serve_task.cancel()
        await asyncio.gather(serve_task, return_exceptions=True)
        await router.stop()
        raise
    return router, supervisor, serve_task


async def fleet_down(router, supervisor, serve_task):
    await supervisor.stop()
    serve_task.cancel()
    await asyncio.gather(serve_task, return_exceptions=True)
    await router.stop()


class TestLifecycle:
    def test_bad_shard_count_rejected(self):
        with pytest.raises(FleetError, match="shard"):
            FleetSupervisor(FleetRouter(), shards=0)

    def test_kill_unknown_shard_rejected(self):
        async def scenario():
            router, supervisor, serve_task = await fleet_up(1, auto_restart=False)
            try:
                with pytest.raises(FleetError, match="nosuch"):
                    await supervisor.kill_shard("nosuch")
            finally:
                await fleet_down(router, supervisor, serve_task)

        run(scenario())

    def test_sigterm_drains_and_exits_zero(self):
        """The graceful-shutdown satellite, end to end: a live shard
        receiving SIGTERM (what ``supervisor.stop`` sends) exits 0."""

        async def scenario():
            router, supervisor, serve_task = await fleet_up(1, auto_restart=False)
            try:
                shard = supervisor.shards[0]
                assert shard.alive
                shard.detached = True  # keep the monitor's hands off
                shard.process.send_signal(signal.SIGTERM)
                code = await asyncio.wait_for(shard.process.wait(), timeout=15)
                assert code == 0
            finally:
                await fleet_down(router, supervisor, serve_task)

        run(scenario())


class TestFailure:
    def test_kill_one_shard_failover_and_scrape(self):
        """The smoke scenario as a test: solve, kill a shard, the retried
        solve succeeds via the survivor, and the fleet scrape reflects it."""

        async def scenario():
            router, supervisor, serve_task = await fleet_up(2, auto_restart=False)
            try:
                spec = small_spec()
                async with PlannerClient(*router.address, retries=2) as client:
                    first = await client.plan(spec, iterations=20, seed=1)
                    assert first["kind"] == "plan"

                    await supervisor.kill_shard("shard-0", respawn=False)
                    assert router.healthy_shards == ["shard-1"]

                    # Fresh request (no L1 hit): must complete with zero
                    # errors whatever shard it hashes to.
                    second = await client.plan(spec, iterations=20, seed=2)
                    assert second["kind"] == "plan"
                    assert second["shard"] == "shard-1"

                    scraped = await client.metrics(format="json", scope="fleet")
                    shards = set()
                    for entry in scraped["metrics"].values():
                        for sample in entry["values"]:
                            shards.add(sample["labels"].get("shard"))
                    assert shards == {"router", "shard-1"}
            finally:
                await fleet_down(router, supervisor, serve_task)

        run(scenario())

    def test_crashed_shard_respawns_on_same_port(self):
        """Restart is invisible to routing: same id, same port, ring
        membership restored once the monitor brings it back."""

        async def scenario():
            router, supervisor, serve_task = await fleet_up(1, auto_restart=True)
            try:
                shard = supervisor.shards[0]
                port_before = shard.port
                pid_before = shard.process.pid

                await supervisor.kill_shard("shard-0", respawn=True)
                assert not shard.alive

                deadline = asyncio.get_running_loop().time() + 30
                while asyncio.get_running_loop().time() < deadline:
                    if shard.alive and "shard-0" in router.healthy_shards:
                        break
                    await asyncio.sleep(0.1)
                assert shard.alive, "monitor never respawned the shard"
                assert shard.restarts == 1
                assert shard.port == port_before
                assert shard.process.pid != pid_before
                assert router.healthy_shards == ["shard-0"]

                async with PlannerClient(*router.address) as client:
                    result = await client.plan(small_spec(), iterations=20, seed=3)
                    assert result["shard"] == "shard-0"
            finally:
                await fleet_down(router, supervisor, serve_task)

        run(scenario())
