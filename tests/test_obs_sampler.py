"""The sampling profiler: frame classification, sampling, folded output."""

import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs.sampler import (
    SUBSYSTEMS,
    SamplingProfiler,
    classify_frame,
    profile_for,
)


class TestClassifyFrame:
    def test_evaluator_outranks_the_generic_core_rule(self):
        assert classify_frame("src/repro/core/evaluator.py") == "evaluator"
        assert classify_frame("src/repro/core/tensor_eval.py") == "evaluator"
        assert classify_frame("src/repro/core/annealing.py") == "solver"

    def test_serialization_outranks_service(self):
        assert classify_frame("src/repro/service/protocol.py") == \
            "serialization"
        assert classify_frame("src/repro/service/fingerprint.py") == \
            "serialization"
        assert classify_frame("src/repro/service/server.py") == "service"

    def test_idle_outranks_everything(self):
        assert classify_frame("/usr/lib/python3.11/selectors.py") == "idle"
        assert classify_frame("/usr/lib/python3.11/threading.py") == "idle"
        # A named wait in an otherwise-classified module is still idle.
        assert classify_frame("src/repro/core/solver.py", "wait") == "idle"

    def test_stdlib_json_is_serialization(self):
        assert classify_frame("/usr/lib/python3.11/json/encoder.py") == \
            "serialization"

    def test_windows_paths_normalize(self):
        assert classify_frame(r"C:\repo\src\repro\fleet\router.py") == "fleet"

    def test_everything_else_is_other(self):
        assert classify_frame("/home/me/app.py") == "other"

    def test_rules_only_emit_known_subsystems(self):
        for path in ("src/repro/obs/slo.py", "src/repro/sweep/grid.py",
                     "src/repro/session/planner.py",
                     "src/repro/simulator/engine.py",
                     "src/repro/workloads/swim.py",
                     "src/repro/cloud/pricing.py"):
            assert classify_frame(path) in SUBSYSTEMS


def spin_thread(stop):
    """A busy helper thread whose frames land in this (tests/) file."""
    while not stop.is_set():
        sum(range(100))


class TestSampling:
    def test_bad_interval_rejected(self):
        with pytest.raises(ObservabilityError, match="interval"):
            SamplingProfiler(interval_s=0.0)

    def test_sample_once_sees_a_real_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_thread, args=(stop,),
                                  daemon=True)
        worker.start()
        try:
            prof = SamplingProfiler()
            own = threading.get_ident()
            for _ in range(20):
                prof.sample_once(exclude=(own,))
                time.sleep(0.001)
        finally:
            stop.set()
            worker.join()
        report = prof.report()
        assert report["samples"] >= 20
        # The spin loop lives outside src/repro, so it counts as
        # "other"; the folded stacks must name this module's function.
        assert report["by_subsystem"]["other"]["samples"] >= 1
        assert any("spin_thread" in line for line in report["folded"])

    def test_synthetic_frames_are_deterministic(self):
        """Classification end-to-end with hand-built frame objects."""
        import sys

        def leaf():
            return sys._getframe()

        frame = leaf()
        prof = SamplingProfiler(interval_s=0.01)
        assert prof.sample_once(frames_by_thread={1: frame, 2: frame}) == 2
        assert prof.sample_once(frames_by_thread={1: frame},
                                exclude=(1,)) == 0
        report = prof.report()
        assert report["samples"] == 2
        ((stack, count),) = [line.rsplit(" ", 1)
                             for line in report["folded"]]
        assert int(count) == 2
        assert stack.endswith(":leaf")
        shares = [e["share"] for e in report["by_subsystem"].values()]
        assert sum(shares) == pytest.approx(1.0)

    def test_start_stop_idempotent_and_thread_excluded(self):
        prof = SamplingProfiler(interval_s=0.001)
        prof.start()
        prof.start()  # no-op
        time.sleep(0.05)
        prof.stop()
        prof.stop()  # no-op
        report = prof.report()
        assert report["duration_s"] > 0
        # The sampler never samples itself.
        assert not any("repro-obs-sampler" in line
                       for line in report["folded"])
        assert not any("sampler:_run" in line for line in report["folded"])

    def test_to_folded_is_flamegraph_input(self):
        import sys

        def leaf():
            return sys._getframe()

        prof = SamplingProfiler()
        prof.sample_once(frames_by_thread={7: leaf()})
        folded = prof.to_folded()
        assert folded.endswith("\n")
        stack, count = folded.strip().rsplit(" ", 1)
        assert count == "1"
        assert ";" in stack  # full stack, not just the leaf

    def test_empty_profiler_reports_cleanly(self):
        prof = SamplingProfiler()
        report = prof.report()
        assert report["samples"] == 0
        assert report["folded"] == []
        assert prof.to_folded() == ""

    def test_profile_for_returns_a_report(self):
        report = profile_for(duration_s=0.05, interval_s=0.005)
        assert report["interval_s"] == 0.005
        assert report["duration_s"] >= 0.05
        assert set(report["by_subsystem"]) <= set(SUBSYSTEMS)
