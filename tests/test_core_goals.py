"""Tenant goals and the goal dispatcher."""

import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.castpp import evaluate_workflow_plan
from repro.core.goals import GoalOutcome, TenantGoal, solve_for_goal
from repro.errors import SolverError
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, WorkloadSpec
from repro.workloads.workflow import search_engine_workflow


@pytest.fixture()
def workload():
    return WorkloadSpec(
        jobs=tuple(
            JobSpec(job_id=f"g{i}", app=GREP if i % 2 else SORT,
                    input_gb=120.0, n_maps=120)
            for i in range(4)
        ),
        name="goal-wl",
    )


@pytest.fixture()
def fast_schedule():
    return AnnealingSchedule(iter_max=300)


class TestDispatch:
    def test_max_utility_returns_one_plan(self, workload, char_cluster,
                                          matrix, provider, fast_schedule):
        outcome = solve_for_goal(
            TenantGoal.MAX_UTILITY,
            cluster_spec=char_cluster, matrix=matrix, provider=provider,
            workload=workload, schedule=fast_schedule,
        )
        assert isinstance(outcome, GoalOutcome)
        assert set(outcome.plans) == {"goal-wl"}
        assert outcome.objective_value > 0

    def test_reuse_goal_uses_castpp(self, workload, char_cluster,
                                    matrix, provider, fast_schedule):
        outcome = solve_for_goal(
            TenantGoal.MAX_UTILITY_REUSE,
            cluster_spec=char_cluster, matrix=matrix, provider=provider,
            workload=workload, schedule=fast_schedule,
        )
        assert outcome.goal is TenantGoal.MAX_UTILITY_REUSE
        assert outcome.objective_value > 0

    def test_deadline_goal_plans_per_workflow(self, char_cluster, matrix,
                                              provider, fast_schedule):
        wfs = [search_engine_workflow(deadline_s=2000.0)]
        outcome = solve_for_goal(
            TenantGoal.MIN_COST_UNDER_DEADLINES,
            cluster_spec=char_cluster, matrix=matrix, provider=provider,
            workflows=wfs, schedule=fast_schedule,
        )
        assert set(outcome.plans) == {wfs[0].name}
        ev = evaluate_workflow_plan(
            wfs[0], outcome.plans[wfs[0].name], char_cluster, matrix, provider
        )
        assert ev.meets_deadline
        assert outcome.objective_value == pytest.approx(ev.cost.total_usd)

    def test_missing_inputs_rejected(self, char_cluster, matrix, provider):
        with pytest.raises(SolverError, match="workload"):
            solve_for_goal(
                TenantGoal.MAX_UTILITY,
                cluster_spec=char_cluster, matrix=matrix, provider=provider,
            )
        with pytest.raises(SolverError, match="workflows"):
            solve_for_goal(
                TenantGoal.MIN_COST_UNDER_DEADLINES,
                cluster_spec=char_cluster, matrix=matrix, provider=provider,
            )


class TestMinMissRate:
    def test_feasible_deadlines_all_met(self, char_cluster, matrix,
                                        provider, fast_schedule):
        wfs = [search_engine_workflow(deadline_s=3000.0)]
        outcome = solve_for_goal(
            TenantGoal.MIN_MISS_RATE,
            cluster_spec=char_cluster, matrix=matrix, provider=provider,
            workflows=wfs, schedule=fast_schedule,
        )
        assert outcome.objective_value == 0.0

    def test_impossible_deadline_degrades_gracefully(self, char_cluster,
                                                     matrix, provider,
                                                     fast_schedule):
        """A 1-second deadline is infeasible on every tier; the planner
        must still return a plan (smallest overshoot) and report 1 miss
        instead of failing."""
        wfs = [search_engine_workflow(deadline_s=1.0)]
        outcome = solve_for_goal(
            TenantGoal.MIN_MISS_RATE,
            cluster_spec=char_cluster, matrix=matrix, provider=provider,
            workflows=wfs, schedule=fast_schedule,
        )
        assert outcome.objective_value == 1.0
        assert wfs[0].name in outcome.plans

    def test_mixed_suite_counts_only_infeasible(self, char_cluster, matrix,
                                                provider, fast_schedule):
        wfs = [
            search_engine_workflow(deadline_s=3000.0),
            search_engine_workflow(deadline_s=1.0),
        ]
        # Rename the second so ids do not collide in the outcome map.
        from repro.workloads.workflow import Workflow

        wf2 = Workflow(
            name="impossible-twin",
            jobs=wfs[1].jobs,
            edges=wfs[1].edges,
            deadline_s=1.0,
        )
        outcome = solve_for_goal(
            TenantGoal.MIN_MISS_RATE,
            cluster_spec=char_cluster, matrix=matrix, provider=provider,
            workflows=[wfs[0], wf2], schedule=fast_schedule,
        )
        assert outcome.objective_value == 1.0
