"""The cross-catalog sweep engine: grid, transfer, exactness, fan-out."""

import numpy as np
import pytest

from repro.cloud import resolve_provider
from repro.errors import SolverError
from repro.sweep import (
    SweepConfig,
    SweepEngine,
    plan_grid,
    transfer_plan,
)
from repro.workloads.swim import synthesize_small_workload

PROVIDERS = ("google", "aws", "azure")


def small(n_jobs=6, name="sweep-w", seed=7):
    return synthesize_small_workload(
        n_jobs=n_jobs,
        total_dataset_gb=600.0,
        rng=np.random.default_rng(seed),
        name=name,
    )


def tiny_config(**overrides):
    base = dict(n_vms=6, iterations=150, seed=11)
    base.update(overrides)
    return SweepConfig(**base)


def grid(providers=PROVIDERS, workloads=None, knobs=({}, {}, {})):
    return plan_grid(
        providers,
        workloads or [small()],
        knobs,
        n_vms=6,
        iterations=150,
        seed=11,
        use_castpp=True,
        backend="anneal",
        replicas=8,
    )


class TestGrid:
    def test_row_major_and_deterministic(self):
        pts = grid()
        assert len(pts) == 9
        assert [p.index for p in pts] == list(range(9))
        again = grid()
        assert pts == again

    def test_donor_dag(self):
        pts = grid()
        by_cell = {(p.catalog_idx, p.knob_idx): p for p in pts}
        # Reference catalog's first knob is the only donor-less anchor.
        assert by_cell[(0, 0)].donor is None
        # Knob points transfer from the previous knob on the same catalog.
        assert by_cell[(0, 1)].donor == by_cell[(0, 0)].index
        assert by_cell[(2, 2)].donor == by_cell[(2, 1)].index
        assert not by_cell[(0, 1)].cross_catalog
        # Non-reference anchors transfer cross-catalog from catalog 0.
        assert by_cell[(1, 0)].donor == by_cell[(0, 0)].index
        assert by_cell[(1, 0)].cross_catalog

    def test_waves_respect_donors(self):
        pts = grid()
        for p in pts:
            if p.donor is not None:
                assert pts[p.donor].wave < p.wave

    def test_crn_seeds_shared_across_catalogs(self):
        pts = grid()
        by_cell = {(p.catalog_idx, p.knob_idx): p for p in pts}
        for k in range(3):
            seeds = {by_cell[(c, k)].seed for c in range(3)}
            assert len(seeds) == 1, "one seed per (workload, knob) cell"
        # ...and knob cells draw distinct seeds (cell 0 = request seed).
        assert by_cell[(0, 0)].seed == 11
        assert len({by_cell[(0, k)].seed for k in range(3)}) == 3

    def test_knob_overrides_and_validation(self):
        pts = grid(knobs=({}, {"n_vms": 9, "iterations": 77}))
        assert pts[1].n_vms == 9 and pts[1].iterations == 77
        with pytest.raises(SolverError):
            grid(knobs=({"n_vms": 0},))
        with pytest.raises(SolverError):
            grid(providers=())
        with pytest.raises(SolverError):
            plan_grid(
                PROVIDERS, [], [{}], n_vms=6, iterations=150, seed=11,
                use_castpp=True, backend="anneal", replicas=8,
            )

    def test_fingerprints_unique_per_cell(self):
        pts = grid()
        assert len({p.fingerprint for p in pts}) == len(pts)


class TestTransferPlan:
    def test_roundtrip_same_catalog_is_identity(self):
        from repro import plan_workload

        w = small()
        prov = resolve_provider("google")
        donor = plan_workload(w, n_vms=6, provider=prov, iterations=100).plan
        moved = transfer_plan(donor, w, prov)
        assert moved.placements == donor.placements

    def test_cross_catalog_transfer_validates(self):
        from repro import plan_workload

        w = small()
        donor = plan_workload(
            w, n_vms=6, provider=resolve_provider("google"), iterations=100
        ).plan
        for name in ("aws", "azure"):
            prov = resolve_provider(name)
            moved = transfer_plan(donor, w, prov)
            moved.validate(w, prov)  # must not raise
            for job in w.jobs:
                p = moved.placement(job.job_id)
                assert p.tier == donor.placement(job.job_id).tier
                assert p.capacity_gb + 1e-9 >= job.footprint_gb


class TestEngine:
    @pytest.fixture(scope="class")
    def sweep(self):
        engine = SweepEngine(
            PROVIDERS, [small()], knobs=[{}, {}, {}], config=tiny_config()
        )
        return engine.run()

    def test_every_point_has_bit_parity(self, sweep):
        assert all(r.parity_ok for r in sweep.points)

    def test_modes_cover_anchor_and_transfers(self, sweep):
        # One cold anchor; every other point either warms or falls back.
        assert sweep.modes.get("cold", 0) >= 1
        assert sum(sweep.modes.values()) == len(sweep.points)
        assert (
            sweep.modes.get("warm", 0) + sweep.modes.get("fallback", 0)
            == len(sweep.points) - sweep.modes.get("cold", 0)
            - sweep.modes.get("dedup", 0)
        )

    def test_warm_points_clear_the_seed_bar(self, sweep):
        for r in sweep.points:
            if r.mode == "warm":
                assert r.transfer_utility is not None
                # Accepted transfer, then annealed: never worse than it.
                assert r.utility >= r.transfer_utility * (1 - 1e-12)

    def test_ranking_sorted_with_relative(self, sweep):
        (block,) = sweep.ranking()
        utils = [e["mean_utility"] for e in block["ranking"]]
        assert utils == sorted(utils, reverse=True)
        assert block["ranking"][0]["relative"] == pytest.approx(1.0)

    def test_to_dict_shape(self, sweep):
        d = sweep.to_dict()
        assert d["kind"] == "sweep"
        assert d["parity_ok"] is True
        assert d["n_points"] == len(sweep.points)
        assert {p["mode"] for p in d["points"]} == set(sweep.modes)
        assert "plan" not in d["points"][0]
        assert "plan" in sweep.to_dict(include_plans=True)["points"][0]

    def test_duplicate_catalogs_dedup(self):
        engine = SweepEngine(
            ("google", "google"), [small()], knobs=[{}], config=tiny_config()
        )
        result = engine.run()
        assert result.modes == {"cold": 1, "dedup": 1}
        a, b = result.points
        assert b.utility == a.utility
        assert b.plan.placements == a.plan.placements
        assert b.solve_s == 0.0

    def test_duplicate_workload_names_rejected(self):
        with pytest.raises(SolverError, match="duplicate workload name"):
            SweepEngine(PROVIDERS, [small(), small()], config=tiny_config())

    def test_cold_sweep_never_transfers(self):
        engine = SweepEngine(
            ("google", "aws"), [small()], knobs=[{}, {}],
            config=tiny_config(warm=False),
        )
        result = engine.run()
        assert set(result.modes) == {"cold"}
        assert all(r.transfer_utility is None for r in result.points)

    def test_warm_quality_tracks_cold(self):
        warm = SweepEngine(
            PROVIDERS, [small()], knobs=[{}, {}], config=tiny_config()
        ).run()
        cold = SweepEngine(
            PROVIDERS, [small()], knobs=[{}, {}],
            config=tiny_config(warm=False),
        ).run()
        for rw, rc in zip(warm.points, cold.points):
            assert rw.utility >= rc.utility * 0.95

    def test_serial_and_pooled_runs_identical(self):
        kwargs = dict(
            providers=("google", "aws"),
            workloads=[small()],
            knobs=[{}, {}],
            config=tiny_config(),
        )
        serial = SweepEngine(**kwargs).run()
        pooled = SweepEngine(**kwargs, workers=2).run()
        assert len(serial.points) == len(pooled.points)
        for rs, rp in zip(serial.points, pooled.points):
            assert rs.mode == rp.mode
            assert rs.utility == rp.utility  # bit-exact
            assert rs.plan.placements == rp.plan.placements

    def test_metrics_recorded(self):
        from repro.obs.metrics import get_registry

        reg = get_registry()
        before = reg.counter("cast_sweep_runs_total", "Sweep grids executed").value()
        SweepEngine(("google",), [small()], config=tiny_config()).run()
        after = reg.counter("cast_sweep_runs_total", "Sweep grids executed").value()
        assert after == before + 1


class TestCrossCloudExperiment:
    def test_rows_cover_every_mix_and_provider(self):
        from repro.experiments import format_crosscloud, run_crosscloud

        rows = run_crosscloud(
            providers=("google", "aws"), n_jobs=4, n_vms=5,
            iterations=120, replications=1,
        )
        mixes = {r.mix for r in rows}
        assert mixes == {"balanced", "shuffle-heavy", "map-io-heavy", "cpu-heavy"}
        for mix in mixes:
            ranked = [r for r in rows if r.mix == mix]
            assert [r.rank for r in ranked] == [1, 2]
            assert ranked[0].relative == pytest.approx(1.0)
        text = format_crosscloud(rows)
        assert "balanced" in text and "vs best" in text
