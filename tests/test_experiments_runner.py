"""Experiment runner: seed spawning, ordered fan-out, dedup, parity."""

import pytest

from repro.cloud.provider import google_cloud_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.experiments.runner import (
    ExperimentRunner,
    sim_report,
    simulate_job_task,
    spawn_seeds,
)
from repro.simulator.cache import simulation_cache
from repro.simulator.engine import simulate_job
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec


def _double(x):
    return 2 * x


def _jobs():
    return [
        JobSpec(job_id="s0", app=SORT, input_gb=10.0, n_maps=8, n_reduces=4),
        JobSpec(job_id="s1", app=SORT, input_gb=10.0, n_maps=8, n_reduces=4),
        JobSpec(job_id="g0", app=GREP, input_gb=5.0, n_maps=6, n_reduces=2),
        JobSpec(job_id="s2", app=SORT, input_gb=10.0, n_maps=8, n_reduces=4),
    ]


class TestSpawnSeeds:
    def test_slot_zero_is_the_request_seed(self):
        assert spawn_seeds(42, 4)[0] == 42

    def test_deterministic_and_distinct(self):
        a = spawn_seeds(7, 6)
        assert a == spawn_seeds(7, 6)
        assert len(set(a)) == 6
        assert spawn_seeds(8, 6) != a

    def test_single_seed(self):
        assert spawn_seeds(3, 1) == [3]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spawn_seeds(3, 0)


class TestSerialRunner:
    def test_serial_map_preserves_order(self):
        with ExperimentRunner() as r:
            assert not r.parallel
            assert r.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert r.stats()["tasks_run"] == 3
        assert r.stats()["batches"] == 1

    def test_workers_one_is_serial(self):
        assert not ExperimentRunner(1).parallel
        assert ExperimentRunner(2).parallel

    def test_simulate_jobs_matches_direct_calls(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        jobs = _jobs()
        direct = [simulate_job(j, Tier.PERS_SSD, cluster, prov) for j in jobs]
        with ExperimentRunner() as r:
            batch = r.simulate_jobs(
                [(j, Tier.PERS_SSD, None) for j in jobs], cluster, prov
            )
        assert batch == direct


class TestParallelRunner:
    def test_parallel_batch_is_bit_exact_and_dedupes(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        prov = google_cloud_2015()
        cluster = ClusterSpec(n_vms=4)
        jobs = _jobs()
        serial = [simulate_job(j, Tier.PERS_SSD, cluster, prov) for j in jobs]
        simulation_cache().clear()
        with ExperimentRunner(2) as r:
            batch = r.simulate_jobs(
                [(j, Tier.PERS_SSD, None) for j in jobs], cluster, prov
            )
            # 4 items, 2 distinct shapes: 3 sort clones collapse to one.
            assert r.tasks_deduped == 2
        assert [b.job_id for b in batch] == [j.job_id for j in jobs]
        assert batch == serial

    def test_parallel_map_orders_results(self):
        with ExperimentRunner(2) as r:
            assert r.map(_double, [5, 4, 3, 2, 1]) == [10, 8, 6, 4, 2]


class TestSimReport:
    def test_report_shape(self):
        with ExperimentRunner(2) as r:
            report = sim_report(r).to_dict()
        assert report["channel"] in ("virtual-time", "reference")
        assert set(report["cache"]) == {"hits", "misses", "evictions", "size"}
        assert report["runner"]["workers"] == 2

    def test_report_without_runner(self):
        assert sim_report().to_dict()["runner"] == {}


def test_simulate_job_task_payload_roundtrip(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
    monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
    prov = google_cloud_2015()
    cluster = ClusterSpec(n_vms=4)
    job = _jobs()[0]
    direct = simulate_job(job, Tier.PERS_SSD, cluster, prov)
    via_task = simulate_job_task((job, Tier.PERS_SSD, None, cluster, prov, {}))
    assert via_task == direct
