"""SWIM / Facebook workload synthesis (Table 4)."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.spec import ReuseLifetime
from repro.workloads.swim import (
    FACEBOOK_BINS,
    facebook_bin_table,
    synthesize_facebook_workload,
    synthesize_small_workload,
)


class TestBins:
    def test_seven_bins(self):
        assert len(FACEBOOK_BINS) == 7

    def test_bin_job_counts_sum_to_100(self):
        assert sum(b.jobs_in_workload for b in FACEBOOK_BINS) == 100

    def test_paper_map_counts(self):
        assert [b.maps_in_workload for b in FACEBOOK_BINS] == [1, 5, 10, 50, 500, 1500, 3000]

    def test_paper_job_counts(self):
        assert [b.jobs_in_workload for b in FACEBOOK_BINS] == [35, 22, 16, 13, 7, 4, 3]

    def test_fb_percentages_on_merged_rows(self):
        pct = [b.fb_jobs_pct for b in FACEBOOK_BINS]
        assert pct[:2] == [None, None]
        assert pct[2:] == [73.0, 13.0, 7.0, 4.0, 3.0]

    def test_bin_table_rows(self):
        rows = facebook_bin_table()
        assert len(rows) == 7
        assert rows[6]["maps_in_workload"] == 3000


class TestFacebookWorkload:
    def test_exactly_100_jobs(self, facebook_workload):
        assert facebook_workload.n_jobs == 100

    def test_map_histogram_matches_table4(self, facebook_workload):
        counts = Counter(j.map_tasks for j in facebook_workload.jobs)
        expected = {b.maps_in_workload: b.jobs_in_workload for b in FACEBOOK_BINS}
        assert counts == expected

    def test_apps_rotate_round_robin(self, facebook_workload):
        apps = Counter(j.app.name for j in facebook_workload.jobs)
        assert apps == {"sort": 25, "join": 25, "grep": 25, "kmeans": 25}

    def test_fifteen_percent_share_input(self, facebook_workload):
        sharing = sum(len(rs.job_ids) for rs in facebook_workload.reuse_sets)
        assert 13 <= sharing <= 17  # ~15 of 100 jobs

    def test_reuse_groups_are_same_size_jobs(self, facebook_workload):
        for rs in facebook_workload.reuse_sets:
            sizes = {facebook_workload.job(j).map_tasks for j in rs.job_ids}
            assert len(sizes) == 1

    def test_large_bins_carry_most_data(self, facebook_workload):
        total = sum(j.input_gb for j in facebook_workload.jobs)
        large = sum(j.input_gb for j in facebook_workload.jobs if j.map_tasks >= 500)
        assert large / total > 0.90

    def test_deterministic_default_seed(self):
        a = synthesize_facebook_workload()
        b = synthesize_facebook_workload()
        assert [j.job_id for j in a.jobs] == [j.job_id for j in b.jobs]
        assert [j.app.name for j in a.jobs] == [j.app.name for j in b.jobs]

    def test_different_seeds_shuffle_assignment(self):
        a = synthesize_facebook_workload(rng=np.random.default_rng(1))
        b = synthesize_facebook_workload(rng=np.random.default_rng(2))
        assert [j.map_tasks for j in a.jobs] != [j.map_tasks for j in b.jobs]

    def test_gb_per_map_scales_inputs(self):
        wl = synthesize_facebook_workload(gb_per_map=2.0)
        for job in wl.jobs:
            assert job.input_gb == pytest.approx(job.map_tasks * 2.0)

    def test_reuse_lifetime_propagates(self):
        wl = synthesize_facebook_workload(reuse_lifetime=ReuseLifetime.LONG)
        assert all(rs.lifetime is ReuseLifetime.LONG for rs in wl.reuse_sets)

    def test_zero_reuse_fraction(self):
        wl = synthesize_facebook_workload(reuse_fraction=0.0)
        assert wl.reuse_sets == ()

    def test_bad_reuse_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_facebook_workload(reuse_fraction=1.5)

    def test_bad_gb_per_map_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_facebook_workload(gb_per_map=0.0)

    def test_empty_app_list_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_facebook_workload(apps=())


class TestSmallWorkload:
    def test_sixteen_jobs(self, small_workload):
        assert small_workload.n_jobs == 16

    def test_footprint_near_two_tb(self, small_workload):
        assert small_workload.total_footprint_gb == pytest.approx(2000.0, rel=0.05)

    def test_splits_are_production_sized(self, small_workload):
        for job in small_workload.jobs:
            assert job.input_gb / job.map_tasks == pytest.approx(1.0)

    def test_mixed_apps(self, small_workload):
        names = {j.app.name for j in small_workload.jobs}
        assert names == {"sort", "join", "grep", "kmeans"}

    def test_zero_jobs_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_small_workload(n_jobs=0)
