"""The basic CAST solver (Algorithm 2 over tiering plans)."""

import numpy as np
import pytest

from repro.cloud.storage import Tier
from repro.core.annealing import AnnealingSchedule
from repro.core.solver import CAPACITY_MULTIPLIERS, CastSolver
from repro.core.utility import evaluate_plan
from repro.workloads.apps import GREP, KMEANS, SORT
from repro.workloads.spec import JobSpec, WorkloadSpec


@pytest.fixture()
def workload():
    return WorkloadSpec(
        jobs=tuple(
            JobSpec(job_id=f"{app.name}-{i}", app=app, input_gb=150.0, n_maps=150)
            for app in (SORT, GREP, KMEANS)
            for i in range(2)
        )
    )


@pytest.fixture()
def solver(char_cluster, matrix, provider):
    return CastSolver(
        cluster_spec=char_cluster,
        matrix=matrix,
        provider=provider,
        schedule=AnnealingSchedule(iter_max=400),
        seed=7,
    )


class TestSolve:
    def test_result_is_valid_plan(self, solver, workload, provider):
        result = solver.solve(workload)
        result.best_state.validate(workload, provider)

    def test_never_worse_than_seed(self, solver, workload, provider):
        init = solver.initial_plan(workload)
        init_u = solver.objective(workload)(init)
        result = solver.solve(workload, initial=init)
        assert result.best_utility >= init_u

    def test_beats_worst_uniform_plan(self, solver, workload, char_cluster, matrix, provider):
        from repro.core.plan import TieringPlan

        worst = min(
            evaluate_plan(
                workload, TieringPlan.uniform(workload, t), char_cluster, matrix, provider
            ).utility
            for t in Tier
        )
        assert solver.solve(workload).best_utility > worst

    def test_deterministic_given_seed(self, char_cluster, matrix, provider, workload):
        def run():
            return CastSolver(
                cluster_spec=char_cluster, matrix=matrix, provider=provider,
                schedule=AnnealingSchedule(iter_max=200), seed=5,
            ).solve(workload)

        assert run().best_state.placements == run().best_state.placements

    def test_objective_is_reuse_oblivious(self, solver, workload, char_cluster, matrix, provider):
        from repro.core.plan import TieringPlan

        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        assert solver.objective(workload)(plan) == pytest.approx(
            evaluate_plan(workload, plan, char_cluster, matrix, provider,
                          reuse_aware=False).utility
        )


class TestNeighborhood:
    def test_moves_preserve_eq3_feasibility(self, solver, workload, provider, rng):
        move = solver.neighbor(workload)
        plan = solver.initial_plan(workload)
        for _ in range(100):
            plan = move(plan, rng)
        plan.validate(workload, provider)

    def test_moves_change_something(self, solver, workload, rng):
        move = solver.neighbor(workload)
        plan = solver.initial_plan(workload)
        changed = False
        for _ in range(10):
            new = move(plan, rng)
            if new.placements != plan.placements:
                changed = True
                break
        assert changed

    def test_capacity_multipliers_start_at_exact_fit(self):
        assert CAPACITY_MULTIPLIERS[0] == 1.0
        assert all(m >= 1.0 for m in CAPACITY_MULTIPLIERS)

    def test_bulk_move_retiers_whole_app(self, solver, workload):
        move = solver.neighbor(workload)
        # Force kind==3 (bulk) by scanning seeds until one occurs.
        for seed in range(100):
            rng = np.random.default_rng(seed)
            if rng.integers(4) == 3:
                rng2 = np.random.default_rng(seed)
                plan = solver.initial_plan(workload)
                new = move(plan, rng2)
                by_app = {}
                for job in workload.jobs:
                    by_app.setdefault(job.app.name, set()).add(new.tier_of(job.job_id))
                # At least one app is now uniformly placed.
                assert any(len(tiers) == 1 for tiers in by_app.values())
                return
        pytest.fail("no bulk move drawn in 100 seeds")


class TestSeeds:
    def test_table2_seed_uses_characteristics(self, solver, workload):
        plan = solver._table2_seed(workload)
        for job in workload.jobs:
            tier = plan.tier_of(job.job_id)
            if job.app.cpu_intensive:
                assert tier is Tier.PERS_HDD
            elif job.app.io_intensive_shuffle:
                assert tier is Tier.PERS_SSD
            elif job.app.io_intensive_map:
                assert tier is Tier.OBJ_STORE

    def test_initial_plan_picks_stronger_seed(self, solver, workload):
        init = solver.initial_plan(workload)
        objective = solver.objective(workload)
        greedy_u = objective(
            __import__("repro.core.greedy", fromlist=["greedy_exact_fit"]).greedy_exact_fit(
                workload, solver.cluster_spec, solver.matrix, solver.provider
            )
        )
        heur_u = objective(solver._table2_seed(workload))
        assert objective(init) == pytest.approx(max(greedy_u, heur_u))
