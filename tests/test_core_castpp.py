"""CAST++: reuse pinning (Constraint 7) and workflow mode (Eq. 8-10)."""

import pytest

from repro.cloud.storage import Tier
from repro.core.annealing import AnnealingSchedule
from repro.core.castpp import CastPlusPlus, evaluate_workflow_plan
from repro.core.plan import TieringPlan
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec
from repro.workloads.workflow import search_engine_workflow


@pytest.fixture()
def castpp(char_cluster, matrix, provider):
    return CastPlusPlus(
        cluster_spec=char_cluster,
        matrix=matrix,
        provider=provider,
        schedule=AnnealingSchedule(iter_max=400),
        seed=11,
    )


@pytest.fixture()
def reuse_workload():
    jobs = tuple(
        JobSpec(job_id=f"j{i}", app=SORT if i < 3 else GREP, input_gb=150.0, n_maps=150)
        for i in range(5)
    )
    return WorkloadSpec(
        jobs=jobs,
        reuse_sets=(
            ReuseSet(job_ids=frozenset({"j0", "j1"}), lifetime=ReuseLifetime.SHORT),
        ),
    )


class TestConstraint7:
    def test_initial_plan_coplaces_reuse_sets(self, castpp, reuse_workload):
        plan = castpp.initial_plan(reuse_workload)
        assert plan.tier_of("j0") is plan.tier_of("j1")

    def test_neighbor_moves_keep_sets_together(self, castpp, reuse_workload, rng):
        move = castpp.neighbor(reuse_workload)
        plan = castpp.initial_plan(reuse_workload)
        for _ in range(200):
            plan = move(plan, rng)
            assert plan.tier_of("j0") is plan.tier_of("j1")

    def test_solution_respects_constraint7(self, castpp, reuse_workload):
        result = castpp.solve(reuse_workload)
        assert result.best_state.tier_of("j0") is result.best_state.tier_of("j1")

    def test_objective_is_reuse_aware(self, castpp, reuse_workload,
                                      char_cluster, matrix, provider):
        from repro.core.utility import evaluate_plan

        plan = TieringPlan.uniform(reuse_workload, Tier.EPH_SSD)
        assert castpp.objective(reuse_workload)(plan) == pytest.approx(
            evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                          reuse_aware=True).utility
        )


class TestWorkflowEvaluation:
    def test_uniform_plan_has_no_transfers(self, char_cluster, matrix, provider):
        wf = search_engine_workflow(deadline_s=10_000.0)
        plan = TieringPlan.uniform(wf.as_workload(), Tier.PERS_SSD)
        ev = evaluate_workflow_plan(wf, plan, char_cluster, matrix, provider)
        assert ev.transfer_s == 0.0
        assert ev.makespan_s > 0
        assert ev.meets_deadline

    def test_cross_tier_plan_charges_transfers(self, char_cluster, matrix, provider):
        wf = search_engine_workflow(deadline_s=10_000.0)
        tiers = {j.job_id: Tier.PERS_SSD for j in wf.jobs}
        tiers["join-120g"] = Tier.PERS_HDD
        plan = TieringPlan.exact_fit(wf.as_workload(), tiers)
        ev = evaluate_workflow_plan(wf, plan, char_cluster, matrix, provider)
        assert ev.transfer_s > 0

    def test_tight_deadline_flags_miss(self, char_cluster, matrix, provider):
        wf = search_engine_workflow(deadline_s=1.0)
        plan = TieringPlan.uniform(wf.as_workload(), Tier.PERS_HDD)
        ev = evaluate_workflow_plan(wf, plan, char_cluster, matrix, provider)
        assert not ev.meets_deadline

    def test_eph_stages_only_at_dag_boundary(self, char_cluster, matrix, provider):
        wf = search_engine_workflow(deadline_s=10_000.0)
        eph = TieringPlan.uniform(wf.as_workload(), Tier.EPH_SSD)
        ssd = TieringPlan.uniform(wf.as_workload(), Tier.PERS_SSD)
        ev_eph = evaluate_workflow_plan(wf, eph, char_cluster, matrix, provider)
        ev_ssd = evaluate_workflow_plan(wf, ssd, char_cluster, matrix, provider)
        # ephSSD pays root download + leaf upload but no mid-DAG staging;
        # its processing advantage keeps it within 2x of persSSD.
        assert ev_eph.makespan_s < 2 * ev_ssd.makespan_s


class TestWorkflowSolver:
    def test_feasible_deadline_is_met(self, castpp):
        wf = search_engine_workflow(deadline_s=2000.0)
        result = castpp.solve_workflow(wf)
        ev = evaluate_workflow_plan(
            wf, result.best_state, castpp.cluster_spec, castpp.matrix, castpp.provider
        )
        assert ev.meets_deadline

    def test_objective_prefers_cheap_feasible_plans(self, castpp):
        wf = search_engine_workflow(deadline_s=2000.0)
        objective = castpp.workflow_objective(wf)
        cheap_feasible = TieringPlan.uniform(wf.as_workload(), Tier.PERS_SSD)
        infeasible = TieringPlan.uniform(wf.as_workload(), Tier.PERS_HDD)
        ev = evaluate_workflow_plan(wf, infeasible, castpp.cluster_spec,
                                    castpp.matrix, castpp.provider)
        if not ev.meets_deadline:
            assert objective(cheap_feasible) > objective(infeasible)

    def test_looser_deadline_never_costs_more(self, castpp):
        tight = castpp.solve_workflow(search_engine_workflow(deadline_s=900.0))
        loose = castpp.solve_workflow(search_engine_workflow(deadline_s=5000.0))
        # Objective is -cost for feasible plans.
        assert loose.best_utility >= tight.best_utility - 1e-9

    def test_solve_workflows_returns_per_workflow_results(self, castpp):
        from repro.workloads.workflow import evaluation_workflow_suite

        suite = evaluation_workflow_suite()[:2]
        results = castpp.solve_workflows(suite)
        assert set(results) == {wf.name for wf in suite}

    def test_dfs_neighbor_walks_the_dag(self, castpp, rng):
        wf = search_engine_workflow(deadline_s=2000.0)
        move = castpp.workflow_neighbor(wf)
        plan = TieringPlan.uniform(wf.as_workload(), Tier.PERS_SSD)
        touched = set()
        for _ in range(8):
            new = move(plan, rng)
            for jid in plan.job_ids:
                if new.placement(jid) != plan.placement(jid):
                    touched.add(jid)
            plan = new
        # The DFS cursor cycles through every job.
        assert touched == set(plan.job_ids)
