"""Workload / workflow JSON serialization."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads.io import (
    load_json,
    save_json,
    workflow_from_dict,
    workflow_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec
from repro.workloads.swim import synthesize_facebook_workload
from repro.workloads.workflow import search_engine_workflow


@pytest.fixture()
def workload():
    return WorkloadSpec(
        jobs=(
            JobSpec.make("a", "sort", 100.0, n_maps=100),
            JobSpec.make("b", "grep", 50.0),
        ),
        reuse_sets=(
            ReuseSet(job_ids=frozenset({"a", "b"}),
                     lifetime=ReuseLifetime.LONG, n_accesses=3),
        ),
        name="io-test",
    )


class TestWorkloadRoundTrip:
    def test_dict_round_trip_preserves_everything(self, workload):
        back = workload_from_dict(workload_to_dict(workload))
        assert back.name == workload.name
        assert [j.job_id for j in back.jobs] == ["a", "b"]
        assert back.job("a").n_maps == 100
        assert back.job("b").n_maps is None
        assert back.job("a").app.name == "sort"
        rs = back.reuse_sets[0]
        assert rs.job_ids == frozenset({"a", "b"})
        assert rs.lifetime is ReuseLifetime.LONG
        assert rs.n_accesses == 3

    def test_file_round_trip(self, workload, tmp_path):
        path = tmp_path / "wl.json"
        save_json(workload, path)
        back = load_json(path)
        assert isinstance(back, WorkloadSpec)
        assert back.job("a").input_gb == 100.0

    def test_synthesized_workload_survives_round_trip(self, tmp_path):
        wl = synthesize_facebook_workload()
        path = tmp_path / "fb.json"
        save_json(wl, path)
        back = load_json(path)
        assert back.n_jobs == 100
        assert sorted(j.map_tasks for j in back.jobs) == sorted(
            j.map_tasks for j in wl.jobs
        )
        assert len(back.reuse_sets) == len(wl.reuse_sets)

    def test_json_is_stable_and_sorted(self, workload, tmp_path):
        path = tmp_path / "wl.json"
        save_json(workload, path)
        a = path.read_text()
        save_json(workload, path)
        assert path.read_text() == a


class TestWorkflowRoundTrip:
    def test_dict_round_trip(self):
        wf = search_engine_workflow(deadline_s=777.0)
        back = workflow_from_dict(workflow_to_dict(wf))
        assert back.name == wf.name
        assert back.deadline_s == 777.0
        assert set(back.edges) == set(wf.edges)
        assert back.topological_order() == wf.topological_order()

    def test_file_round_trip_dispatches_on_kind(self, tmp_path):
        wf = search_engine_workflow()
        path = tmp_path / "wf.json"
        save_json(wf, path)
        back = load_json(path)
        assert back.n_jobs == 4


class TestRoundTripGuarantee:
    """``load_json(save_json(x)) == x`` — exact equality, not just
    field spot-checks.  The service fingerprints requests via the
    canonical dict form, so serialization must be lossless for
    workloads (including reuse sets) and workflows (including DAG
    edges and deadlines)."""

    def test_workload_equality(self, workload, tmp_path):
        path = tmp_path / "wl.json"
        save_json(workload, path)
        assert load_json(path) == workload

    def test_workflow_equality(self, tmp_path):
        wf = search_engine_workflow(deadline_s=1234.5)
        path = tmp_path / "wf.json"
        save_json(wf, path)
        back = load_json(path)
        assert back == wf
        assert back.edges == wf.edges  # order preserved, not just set-equal

    def test_synthesized_workload_equality(self, tmp_path):
        wl = synthesize_facebook_workload()
        path = tmp_path / "fb.json"
        save_json(wl, path)
        assert load_json(path) == wl

    def test_dict_round_trip_is_canonical_fixpoint(self, workload):
        # to_dict(from_dict(d)) == d for canonical d: fingerprinting
        # relies on the dict form being a fixpoint.
        data = workload_to_dict(workload)
        assert workload_to_dict(workload_from_dict(data)) == data
        wf_data = workflow_to_dict(search_engine_workflow())
        assert workflow_to_dict(workflow_from_dict(wf_data)) == wf_data


class TestValidation:
    def test_bad_version_rejected(self, workload):
        data = workload_to_dict(workload)
        data["version"] = 99
        with pytest.raises(WorkloadError, match="version"):
            workload_from_dict(data)

    def test_kind_mismatch_rejected(self, workload):
        data = workload_to_dict(workload)
        data["kind"] = "workflow"
        with pytest.raises(WorkloadError, match="kind"):
            workload_from_dict(data)

    def test_unknown_app_rejected(self, workload):
        data = workload_to_dict(workload)
        data["jobs"][0]["app"] = "teragen"
        with pytest.raises(WorkloadError, match="unknown application"):
            workload_from_dict(data)

    def test_missing_job_field_rejected(self, workload):
        data = workload_to_dict(workload)
        del data["jobs"][0]["input_gb"]
        with pytest.raises(WorkloadError, match="missing field"):
            workload_from_dict(data)

    def test_bad_lifetime_rejected(self, workload):
        data = workload_to_dict(workload)
        data["reuse_sets"][0]["lifetime"] = "fortnight"
        with pytest.raises(WorkloadError, match="lifetime"):
            workload_from_dict(data)

    def test_workflow_missing_deadline_rejected(self):
        data = workflow_to_dict(search_engine_workflow())
        del data["deadline_s"]
        with pytest.raises(WorkloadError, match="deadline"):
            workflow_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError, match="JSON"):
            load_json(path)

    def test_unknown_kind_file(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"version": 1, "kind": "cluster"}))
        with pytest.raises(WorkloadError, match="kind"):
            load_json(path)

    def test_unserializable_object_rejected(self, tmp_path):
        with pytest.raises(WorkloadError, match="serialize"):
            save_json(object(), tmp_path / "x.json")  # type: ignore[arg-type]
