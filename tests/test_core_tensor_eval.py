"""Tensor batch evaluator and parallel-tempering backend.

The exactness contract under test: the tensor path only *guides* the
search — batch utilities must track the canonical
:func:`~repro.core.utility.evaluate_plan` score to within 1e-9
relative on arbitrary plans, and any plan the tempering backend
returns is re-scored canonically, so its reported metrics are
bit-identical to the naive path.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.provider import google_cloud_2015
from repro.cloud.vm import ClusterSpec
from repro.core.annealing import AnnealingSchedule
from repro.core.castpp import CastPlusPlus
from repro.core.solver import CastSolver
from repro.core.tempering import _replica_streams, parallel_tempering
from repro.core.tensor_eval import TensorWorkloadModel
from repro.core.utility import evaluate_plan
from repro.errors import SolverError
from repro.profiler.profiler import build_model_matrix
from repro.service.fingerprint import request_fingerprint
from repro.workloads.io import workload_to_dict
from repro.workloads.swim import (
    synthesize_facebook_workload,
    synthesize_small_workload,
)

PROVIDER = google_cloud_2015()
CLUSTER = ClusterSpec(n_vms=25)
MATRIX = build_model_matrix(provider=PROVIDER, cluster_spec=CLUSTER)
WORKLOAD = synthesize_small_workload(n_jobs=14, rng=np.random.default_rng(11))
FB = synthesize_facebook_workload(rng=np.random.default_rng(11))
PARITY_RTOL = 1e-9


def make_solver(cls=CastSolver, **kwargs):
    kwargs.setdefault("schedule", AnnealingSchedule(iter_max=300))
    return cls(
        cluster_spec=CLUSTER, matrix=MATRIX, provider=PROVIDER,
        seed=7, **kwargs,
    )


def batch_state(model, tier, lvl):
    """A TensorBatchState holding arbitrary per-replica plans."""
    state = model.make_state(tier[0], lvl[0], tier.shape[0])
    state.tier[:] = tier
    state.lvl[:] = lvl
    model.refresh(state)
    return state


class TestEncodeDecode:
    def test_round_trip_is_bit_exact(self):
        model = TensorWorkloadModel(WORKLOAD, CLUSTER, MATRIX, PROVIDER)
        plan = make_solver().initial_plan(WORKLOAD)
        # Force a custom (non-level) capacity onto one job so the
        # custom-column rewrite path is exercised too.
        job_id = WORKLOAD.jobs[0].job_id
        p = plan.placements[job_id]
        plan.placements[job_id] = replace(p, capacity_gb=p.capacity_gb + 0.3125)
        tier, lvl = model.encode_plan(plan)
        decoded = model.decode_plan(tier, lvl)
        assert decoded.to_dict() == plan.to_dict()

    def test_custom_capacity_lands_on_level_zero(self):
        model = TensorWorkloadModel(WORKLOAD, CLUSTER, MATRIX, PROVIDER)
        plan = make_solver().initial_plan(WORKLOAD)
        job_id = WORKLOAD.jobs[0].job_id
        p = plan.placements[job_id]
        plan.placements[job_id] = replace(p, capacity_gb=p.capacity_gb + 0.3125)
        _, lvl = model.encode_plan(plan)
        assert lvl[model._job_pos[job_id]] == 0


class TestBatchParity:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_canonical_within_1e9(self, data):
        model = TensorWorkloadModel(WORKLOAD, CLUSTER, MATRIX, PROVIDER)
        N, T, L = model.n_jobs, model.n_tiers, model.n_levels
        K = 3
        tier = np.array(data.draw(st.lists(
            st.lists(st.integers(0, T - 1), min_size=N, max_size=N),
            min_size=K, max_size=K,
        )), dtype=np.int64)
        lvl = np.array(data.draw(st.lists(
            st.lists(st.integers(1, L - 1), min_size=N, max_size=N),
            min_size=K, max_size=K,
        )), dtype=np.int64)
        batch = model.utilities(batch_state(model, tier, lvl))
        for r in range(K):
            canonical = evaluate_plan(
                WORKLOAD, model.decode_plan(tier[r], lvl[r]),
                CLUSTER, MATRIX, PROVIDER,
            )
            assert batch[r] == pytest.approx(
                canonical.utility, rel=PARITY_RTOL
            )

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_reuse_aware_parity_on_group_uniform_plans(self, data):
        # The CAST++ batch path assumes each reuse set sits on one tier
        # (Constraint 7, preserved by the group move kernels), so the
        # random plans draw one tier per reuse group.
        model = TensorWorkloadModel(
            FB, CLUSTER, MATRIX, PROVIDER, reuse_aware=True
        )
        N, T, L, G = model.n_jobs, model.n_tiers, model.n_levels, len(model.groups)
        tier = np.empty(N, dtype=np.int64)
        for g, ns in enumerate(model.groups):
            tier[ns] = data.draw(st.integers(0, T - 1))
        lvl = np.array(
            data.draw(st.lists(st.integers(1, L - 1), min_size=N, max_size=N)),
            dtype=np.int64,
        )
        batch = model.utilities(batch_state(model, tier[None, :], lvl[None, :]))
        canonical = evaluate_plan(
            FB, model.decode_plan(tier, lvl),
            CLUSTER, MATRIX, PROVIDER, reuse_aware=True,
        )
        assert batch[0] == pytest.approx(canonical.utility, rel=PARITY_RTOL)

    def test_plan_utility_exact_path_matches_canonical(self):
        model = TensorWorkloadModel(WORKLOAD, CLUSTER, MATRIX, PROVIDER)
        rng = np.random.default_rng(3)
        for _ in range(10):
            tier = rng.integers(model.n_tiers, size=model.n_jobs)
            lvl = rng.integers(1, model.n_levels, size=model.n_jobs)
            canonical = evaluate_plan(
                WORKLOAD, model.decode_plan(tier, lvl),
                CLUSTER, MATRIX, PROVIDER,
            )
            assert model.plan_utility(tier, lvl) == pytest.approx(
                canonical.utility, rel=PARITY_RTOL
            )


class TestTemperingBackend:
    @pytest.mark.parametrize("cls,workload,reuse", [
        (CastSolver, WORKLOAD, False),
        (CastPlusPlus, FB, True),
    ])
    def test_rescore_is_bit_identical(self, cls, workload, reuse):
        solver = make_solver(cls, backend="tempering", replicas=4)
        result = solver.solve(workload)
        canonical = evaluate_plan(
            workload, result.best_state, CLUSTER, MATRIX, PROVIDER,
            reuse_aware=reuse,
        )
        assert result.best_utility == canonical.utility  # bit-identical
        assert solver.last_tempering["canonical_utility"] == canonical.utility
        assert solver.last_tempering["replicas"] == 4

    def test_same_seed_same_plan(self):
        a = make_solver(backend="tempering", replicas=4).solve(WORKLOAD)
        b = make_solver(backend="tempering", replicas=4).solve(WORKLOAD)
        assert a.best_utility == b.best_utility
        assert a.best_state.to_dict() == b.best_state.to_dict()

    def test_replica_zero_stream_is_seed_pinned(self):
        # Documented seeding: replica 0 always consumes default_rng(seed),
        # so changing the replica count perturbs results only through
        # the extra SeedSequence-spawned streams.
        draws = []
        for replicas in (1, 4, 8):
            streams, _ = _replica_streams(42, replicas)
            draws.append(streams[0].integers(1 << 30, size=8).tolist())
        assert draws[0] == draws[1] == draws[2]
        assert draws[0] == np.random.default_rng(42).integers(
            1 << 30, size=8
        ).tolist()

    def test_validation_errors(self):
        model = TensorWorkloadModel(WORKLOAD, CLUSTER, MATRIX, PROVIDER)
        solver = make_solver()
        tier, lvl = model.encode_plan(solver.initial_plan(WORKLOAD))
        with pytest.raises(SolverError):
            parallel_tempering(model, tier, lvl, solver.schedule, replicas=0)
        with pytest.raises(SolverError):
            parallel_tempering(
                model, tier, lvl, solver.schedule, ladder_ratio=0.5
            )
        with pytest.raises(SolverError):
            parallel_tempering(model, tier, lvl, solver.schedule, swap_every=0)


class TestBackendWiring:
    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError, match="unknown solver backend"):
            make_solver(backend="quantum").solve(WORKLOAD)

    def test_fingerprint_distinguishes_backends(self):
        spec = workload_to_dict(WORKLOAD)
        anneal = request_fingerprint("plan", spec, backend="anneal")
        tempering = request_fingerprint("plan", spec, backend="tempering")
        assert anneal != tempering
        assert request_fingerprint(
            "plan", spec, backend="tempering", replicas=4
        ) != tempering
