"""Discrete-event queue semantics."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule_at(5.0, lambda: log.append("late"))
        q.schedule_at(1.0, lambda: log.append("early"))
        q.schedule_at(3.0, lambda: log.append("mid"))
        q.run()
        assert log == ["early", "mid", "late"]

    def test_simultaneous_events_fifo(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule_at(1.0, lambda i=i: log.append(i))
        q.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances_with_events(self):
        q = EventQueue()
        seen = []
        q.schedule_at(2.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [2.5]

    def test_schedule_after_is_relative(self):
        q = EventQueue()
        seen = []

        def first():
            q.schedule_after(3.0, lambda: seen.append(q.now))

        q.schedule_at(2.0, first)
        q.run()
        assert seen == [5.0]

    def test_scheduling_into_the_past_rejected(self):
        q = EventQueue()

        def bad():
            q.schedule_at(0.5, lambda: None)

        q.schedule_at(1.0, bad)
        with pytest.raises(SimulationError, match="past"):
            q.run()

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="negative"):
            q.schedule_after(-1.0, lambda: None)


class TestRun:
    def test_run_returns_final_time(self):
        q = EventQueue()
        q.schedule_at(7.0, lambda: None)
        assert q.run() == 7.0

    def test_run_until_stops_early(self):
        q = EventQueue()
        log = []
        q.schedule_at(1.0, lambda: log.append(1))
        q.schedule_at(10.0, lambda: log.append(10))
        assert q.run(until=5.0) == 5.0
        assert log == [1]
        assert len(q) == 1  # the late event is still pending

    def test_events_can_schedule_events(self):
        q = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                q.schedule_after(1.0, tick)

        q.schedule_at(0.0, tick)
        q.run()
        assert count[0] == 10
        assert q.now == 9.0

    def test_runaway_loop_detected(self):
        q = EventQueue()

        def forever():
            q.schedule_after(0.0, forever)

        q.schedule_at(0.0, forever)
        with pytest.raises(SimulationError, match="events"):
            q.run(max_events=1000)

    def test_not_reentrant(self):
        q = EventQueue()

        def nested():
            q.run()

        q.schedule_at(0.0, nested)
        with pytest.raises(SimulationError, match="reentrant"):
            q.run()

    def test_dispatch_counter(self):
        q = EventQueue()
        for i in range(4):
            q.schedule_at(float(i), lambda: None)
        q.run()
        assert q.events_dispatched == 4
