"""Logging configuration: idempotency, JSON format, trace stamping."""

import io
import json
import logging

import pytest

from repro.obs.logs import JsonFormatter, configure_logging, json_log_record
from repro.obs.tracing import span


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    logger = logging.getLogger("repro")
    before_handlers = list(logger.handlers)
    before_level = logger.level
    yield
    logger.handlers[:] = before_handlers
    logger.setLevel(before_level)


class TestConfigureLogging:
    def test_reconfigure_replaces_instead_of_stacking(self):
        logger = logging.getLogger("repro")
        first = configure_logging("info")
        second = configure_logging("debug")
        installed = [h for h in logger.handlers if h in (first, second)]
        assert installed == [second]
        assert logger.level == logging.DEBUG

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_null_handler_on_package_root(self):
        # Importing repro must not leave the package chatty: the root
        # carries a NullHandler so embedding apps stay in control.
        import repro  # noqa: F401

        logger = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in logger.handlers
        )

    def test_text_format_includes_trace_id(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        with span("traced-op") as sp:
            logging.getLogger("repro.test").info("inside")
        logging.getLogger("repro.test").info("outside")
        lines = stream.getvalue().splitlines()
        assert sp.trace_id[:8] in lines[0]
        assert sp.trace_id[:8] not in lines[1]


class TestJsonLogging:
    def test_json_lines_carry_trace_id_inside_span(self):
        stream = io.StringIO()
        configure_logging("info", json_format=True, stream=stream)
        with span("traced") as sp:
            logging.getLogger("repro.test").info("hello %s", "world")
        payload = json.loads(stream.getvalue())
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert payload["trace_id"] == sp.trace_id

    def test_json_record_outside_span_has_no_trace(self):
        record = logging.LogRecord(
            "repro.x", logging.WARNING, __file__, 1, "msg", (), None
        )
        payload = json_log_record(record)
        assert "trace_id" not in payload
        assert payload["level"] == "WARNING"

    def test_exception_info_serialized(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                "repro.x", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        line = JsonFormatter().format(record)
        payload = json.loads(line)
        assert payload["exc_type"] == "RuntimeError"
        assert "boom" in payload["exc"]
