"""Cost model (Eq. 5/6), tenant utility (Eq. 2), plan evaluation."""

import pytest

from repro.cloud.storage import Tier
from repro.core.cost import CostBreakdown, deployment_cost, holding_cost
from repro.core.plan import Placement, TieringPlan
from repro.core.utility import evaluate_plan, per_vm_capacity, tenant_utility
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec


class TestCostBreakdown:
    def test_total_is_sum(self):
        cost = CostBreakdown(vm_usd=2.0, storage_usd=3.0)
        assert cost.total_usd == 5.0

    def test_addition(self):
        a = CostBreakdown(1.0, 2.0)
        b = CostBreakdown(3.0, 4.0)
        assert (a + b).vm_usd == 4.0
        assert (a + b).storage_usd == 6.0


class TestDeploymentCost:
    def test_combines_eq5_and_eq6(self, provider, char_cluster):
        cost = deployment_cost(
            provider, char_cluster, 3600.0, {Tier.PERS_SSD: 1000.0}
        )
        assert cost.vm_usd == pytest.approx(10 * 0.832)
        assert cost.storage_usd == pytest.approx(1000.0 * 0.17 / 730.0)

    def test_empty_capacity_bills_vm_only(self, provider, char_cluster):
        cost = deployment_cost(provider, char_cluster, 60.0, {})
        assert cost.storage_usd == 0.0
        assert cost.vm_usd > 0


class TestHoldingCost:
    def test_eph_holding_includes_backing(self, provider):
        eph = holding_cost(provider, Tier.EPH_SSD, 100.0, 3600.0)
        raw = provider.prices.storage_holding_cost(Tier.EPH_SSD, 100.0, 3600.0)
        backing = provider.prices.storage_holding_cost(Tier.OBJ_STORE, 100.0, 3600.0)
        assert eph == pytest.approx(raw + backing)

    def test_persistent_holding_is_plain(self, provider):
        ssd = holding_cost(provider, Tier.PERS_SSD, 100.0, 3600.0)
        assert ssd == pytest.approx(
            provider.prices.storage_holding_cost(Tier.PERS_SSD, 100.0, 3600.0)
        )

    def test_zero_duration_free(self, provider):
        assert holding_cost(provider, Tier.PERS_SSD, 100.0, 0.0) == 0.0

    def test_negative_size_rejected(self, provider):
        with pytest.raises(ValueError):
            holding_cost(provider, Tier.PERS_SSD, -1.0, 10.0)


class TestTenantUtility:
    def test_eq2_definition(self):
        # 30-minute workload at $2: U = (1/30)/2.
        assert tenant_utility(1800.0, 2.0) == pytest.approx((1 / 30) / 2)

    def test_faster_is_better(self):
        assert tenant_utility(600.0, 1.0) > tenant_utility(1200.0, 1.0)

    def test_cheaper_is_better(self):
        assert tenant_utility(600.0, 1.0) > tenant_utility(600.0, 2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            tenant_utility(0.0, 1.0)
        with pytest.raises(ValueError):
            tenant_utility(1.0, 0.0)


@pytest.fixture()
def reuse_workload():
    jobs = (
        JobSpec(job_id="a", app=SORT, input_gb=200.0),
        JobSpec(job_id="b", app=SORT, input_gb=200.0),
        JobSpec(job_id="c", app=GREP, input_gb=100.0),
    )
    return WorkloadSpec(
        jobs=jobs,
        reuse_sets=(ReuseSet(job_ids=frozenset({"a", "b"}), lifetime=ReuseLifetime.SHORT),),
    )


class TestPerVMCapacity:
    def test_spreads_aggregate_across_vms(self, provider, char_cluster, reuse_workload):
        plan = TieringPlan.uniform(reuse_workload, Tier.PERS_SSD)
        pvc = per_vm_capacity(plan, char_cluster, provider)
        agg = sum(p.capacity_gb for p in plan.placements.values())
        assert pvc[Tier.PERS_SSD] == pytest.approx(agg / 10)

    def test_clamps_to_per_vm_limit(self, provider, char_cluster):
        plan = TieringPlan(
            placements={"x": Placement(tier=Tier.EPH_SSD, capacity_gb=100_000.0)}
        )
        pvc = per_vm_capacity(plan, char_cluster, provider)
        assert pvc[Tier.EPH_SSD] == 1500.0

    def test_floors_tiny_aggregates(self, provider, char_cluster):
        wl = WorkloadSpec(jobs=(JobSpec(job_id="x", app=GREP, input_gb=1.0),))
        plan = TieringPlan.exact_fit(wl, {"x": Tier.PERS_HDD})
        pvc = per_vm_capacity(plan, char_cluster, provider)
        assert pvc[Tier.PERS_HDD] >= 10.0


class TestEvaluatePlan:
    def test_returns_consistent_utility(self, provider, char_cluster, matrix, reuse_workload):
        plan = TieringPlan.uniform(reuse_workload, Tier.PERS_SSD)
        ev = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider)
        assert ev.utility == pytest.approx(
            tenant_utility(ev.makespan_s, ev.cost.total_usd)
        )
        assert set(ev.per_job) == {"a", "b", "c"}

    def test_reuse_aware_eph_amortizes_downloads(
        self, provider, char_cluster, matrix, reuse_workload
    ):
        plan = TieringPlan.uniform(reuse_workload, Tier.EPH_SSD)
        oblivious = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                                  reuse_aware=False)
        aware = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                              reuse_aware=True)
        # One of the two shared downloads disappears.
        saved = oblivious.makespan_s - aware.makespan_s
        assert saved == pytest.approx(aware.per_job["a"].download_s, rel=0.01)

    def test_reuse_aware_dedups_shared_capacity(
        self, provider, char_cluster, matrix, reuse_workload
    ):
        plan = TieringPlan.uniform(reuse_workload, Tier.PERS_SSD)
        oblivious = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                                  reuse_aware=False)
        aware = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                              reuse_aware=True)
        assert (
            oblivious.capacity_gb[Tier.PERS_SSD]
            - aware.capacity_gb[Tier.PERS_SSD]
        ) == pytest.approx(200.0)

    def test_split_reuse_set_gets_no_discount_but_pays_holding(
        self, provider, char_cluster, matrix, reuse_workload
    ):
        plan = TieringPlan.exact_fit(
            reuse_workload,
            {"a": Tier.PERS_SSD, "b": Tier.PERS_HDD, "c": Tier.OBJ_STORE},
        )
        oblivious = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                                  reuse_aware=False)
        aware = evaluate_plan(reuse_workload, plan, char_cluster, matrix, provider,
                              reuse_aware=True)
        assert aware.makespan_s == pytest.approx(oblivious.makespan_s)
        assert aware.cost.storage_usd >= oblivious.cost.storage_usd

    def test_invalid_plan_rejected(self, provider, char_cluster, matrix, reuse_workload):
        from repro.errors import PlanError

        bad = TieringPlan(
            placements={
                "a": Placement(tier=Tier.PERS_SSD, capacity_gb=1.0),
                "b": Placement(tier=Tier.PERS_SSD, capacity_gb=1.0),
                "c": Placement(tier=Tier.PERS_SSD, capacity_gb=1.0),
            }
        )
        with pytest.raises(PlanError):
            evaluate_plan(reuse_workload, bad, char_cluster, matrix, provider)
