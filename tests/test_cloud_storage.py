"""Storage catalog (Table 1) and provisioning rules."""

import pytest

from repro.cloud.storage import GOOGLE_CLOUD_2015_SERVICES, Tier
from repro.errors import CapacityError


@pytest.fixture(params=list(Tier), ids=[t.value for t in Tier])
def service(request):
    return GOOGLE_CLOUD_2015_SERVICES[request.param]


class TestTable1Numbers:
    """The catalog must encode Table 1 verbatim."""

    def test_eph_ssd_row(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.EPH_SSD]
        assert svc.throughput_mb_s(375.0) == 733.0
        assert svc.iops_4k(375.0) == 100_000.0
        assert svc.price_gb_month == 0.218
        assert svc.fixed_volume_gb == 375.0
        assert svc.max_volumes_per_vm == 4
        assert not svc.persistent
        assert svc.requires_backing is Tier.OBJ_STORE

    @pytest.mark.parametrize(
        "cap,mb_s,iops",
        [(100.0, 48.0, 3000.0), (250.0, 118.0, 7500.0), (500.0, 234.0, 15000.0)],
    )
    def test_pers_ssd_rows(self, cap, mb_s, iops):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.PERS_SSD]
        assert svc.throughput_mb_s(cap) == pytest.approx(mb_s)
        assert svc.iops_4k(cap) == pytest.approx(iops)
        assert svc.price_gb_month == 0.17

    @pytest.mark.parametrize(
        "cap,mb_s,iops",
        [(100.0, 20.0, 150.0), (250.0, 45.0, 375.0), (500.0, 97.0, 750.0)],
    )
    def test_pers_hdd_rows(self, cap, mb_s, iops):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.PERS_HDD]
        assert svc.throughput_mb_s(cap) == pytest.approx(mb_s)
        assert svc.iops_4k(cap) == pytest.approx(iops)
        assert svc.price_gb_month == 0.04

    def test_obj_store_row(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.OBJ_STORE]
        assert svc.throughput_mb_s(1.0) == 265.0
        assert svc.iops_4k(1.0) == 550.0
        assert svc.price_gb_month == 0.026
        assert svc.max_volume_gb is None
        assert svc.request_overhead_s > 0
        assert svc.requires_intermediate is Tier.PERS_SSD

    def test_persistent_volume_limit(self):
        for tier in (Tier.PERS_SSD, Tier.PERS_HDD):
            assert GOOGLE_CLOUD_2015_SERVICES[tier].max_volume_gb == 10_240.0

    def test_table1_persssd_vs_ephssd_claim(self):
        """§1: a 500 GB persSSD has ~2x lower throughput and ~6x lower
        IOPS than a 375 GB ephSSD volume."""
        eph = GOOGLE_CLOUD_2015_SERVICES[Tier.EPH_SSD]
        ssd = GOOGLE_CLOUD_2015_SERVICES[Tier.PERS_SSD]
        assert eph.throughput_mb_s(375.0) / ssd.throughput_mb_s(500.0) == pytest.approx(
            733 / 234, rel=1e-6
        )
        assert eph.iops_4k(375.0) / ssd.iops_4k(500.0) == pytest.approx(100000 / 15000)


class TestProvisioning:
    def test_eph_rounds_to_whole_volumes(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.EPH_SSD]
        assert svc.provisionable_capacity_gb(1.0) == 375.0
        assert svc.provisionable_capacity_gb(375.0) == 375.0
        assert svc.provisionable_capacity_gb(376.0) == 750.0
        assert svc.provisionable_capacity_gb(1500.0) == 1500.0

    def test_eph_rejects_more_than_four_volumes(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.EPH_SSD]
        with pytest.raises(CapacityError, match="volumes"):
            svc.provisionable_capacity_gb(1501.0)

    def test_block_volume_floor(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.PERS_SSD]
        assert svc.provisionable_capacity_gb(3.0) == 10.0

    def test_block_volume_ceiling(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.PERS_HDD]
        with pytest.raises(CapacityError, match="per-volume"):
            svc.provisionable_capacity_gb(10_241.0)

    def test_obj_store_bills_exact(self):
        svc = GOOGLE_CLOUD_2015_SERVICES[Tier.OBJ_STORE]
        assert svc.provisionable_capacity_gb(0.5) == 0.5

    def test_zero_request_is_zero(self, service):
        assert service.provisionable_capacity_gb(0.0) == 0.0

    def test_negative_request_rejected(self, service):
        with pytest.raises(CapacityError):
            service.provisionable_capacity_gb(-1.0)

    def test_max_capacity_per_vm(self):
        assert GOOGLE_CLOUD_2015_SERVICES[Tier.EPH_SSD].max_capacity_per_vm_gb() == 1500.0
        assert GOOGLE_CLOUD_2015_SERVICES[Tier.PERS_SSD].max_capacity_per_vm_gb() == 10_240.0
        assert GOOGLE_CLOUD_2015_SERVICES[Tier.OBJ_STORE].max_capacity_per_vm_gb() == float("inf")
