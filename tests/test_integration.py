"""End-to-end pipeline: profile → solve → evaluate → measure."""

import pytest

from repro import PlanningOutcome, plan_workload
from repro.cloud.storage import Tier
from repro.experiments.measure import measure_plan
from repro.workloads.swim import synthesize_small_workload


@pytest.fixture(scope="module")
def outcome():
    return plan_workload(
        synthesize_small_workload(),
        n_vms=10,
        iterations=600,
        seed=3,
    )


class TestPlanWorkload:
    def test_returns_complete_outcome(self, outcome):
        assert isinstance(outcome, PlanningOutcome)
        assert outcome.evaluation.utility > 0
        assert outcome.evaluation.cost.total_usd > 0

    def test_plan_covers_every_job(self, outcome):
        assert len(outcome.plan.job_ids) == 16

    def test_plan_satisfies_eq3(self, outcome):
        wl = synthesize_small_workload()
        outcome.plan.validate(wl, outcome.solver.provider)

    def test_prediction_tracks_measurement(self, outcome):
        """Deploying the plan on the simulator should land within the
        Fig.-8 error band of the solver's prediction."""
        wl = synthesize_small_workload()
        measured = measure_plan(
            wl, outcome.plan, outcome.solver.cluster_spec, outcome.solver.provider
        )
        predicted = outcome.evaluation.makespan_s
        assert measured.makespan_s == pytest.approx(predicted, rel=0.25)

    def test_basic_cast_also_works(self):
        outcome = plan_workload(
            synthesize_small_workload(), n_vms=10, use_castpp=False,
            iterations=300, seed=3,
        )
        assert outcome.evaluation.utility > 0

    def test_determinism_across_runs(self):
        a = plan_workload(synthesize_small_workload(), n_vms=10, iterations=200, seed=9)
        b = plan_workload(synthesize_small_workload(), n_vms=10, iterations=200, seed=9)
        assert a.plan.placements == b.plan.placements
        assert a.evaluation.utility == b.evaluation.utility


class TestPlannedVsNaive:
    def test_plan_beats_the_worst_uniform_choice(self, outcome):
        from repro.core.plan import TieringPlan
        from repro.core.utility import evaluate_plan

        wl = synthesize_small_workload()
        solver = outcome.solver
        worst = min(
            evaluate_plan(
                wl, TieringPlan.uniform(wl, t),
                solver.cluster_spec, solver.matrix, solver.provider,
                reuse_aware=True,
            ).utility
            for t in Tier
        )
        assert outcome.evaluation.utility > worst * 1.2
