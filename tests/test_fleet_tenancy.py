"""Weighted fair queueing admission: fairness, shedding, slot hygiene."""

import asyncio

import pytest

from repro.errors import FleetError, ServiceBusyError
from repro.fleet.tenancy import WeightedFairScheduler
from repro.obs.metrics import MetricsRegistry


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(FleetError, match="max_inflight"):
            WeightedFairScheduler(max_inflight=0)
        with pytest.raises(FleetError, match="max_queue_per_tenant"):
            WeightedFairScheduler(max_queue_per_tenant=-1)
        with pytest.raises(FleetError, match="default_weight"):
            WeightedFairScheduler(default_weight=0)
        with pytest.raises(FleetError, match="weight"):
            WeightedFairScheduler(weights={"t": -1.0})

    def test_weight_lookup_defaults(self):
        sched = WeightedFairScheduler(weights={"gold": 3.0})
        assert sched.weight("gold") == 3.0
        assert sched.weight("anybody") == 1.0


class TestAdmission:
    def test_uncontended_acquire_is_immediate(self):
        async def scenario():
            sched = WeightedFairScheduler(max_inflight=2)
            await sched.acquire("a")
            await sched.acquire("b")
            assert sched.inflight_total == 2
            assert sched.queued_total == 0
            sched.release("a")
            sched.release("b")
            assert sched.inflight_total == 0

        run(scenario())

    def test_shed_at_tenant_queue_cap(self):
        async def scenario():
            sched = WeightedFairScheduler(max_inflight=1, max_queue_per_tenant=1)
            await sched.acquire("hog")  # takes the only slot
            waiting = asyncio.create_task(sched.acquire("hog"))
            await asyncio.sleep(0)  # fills hog's 1-deep queue
            with pytest.raises(ServiceBusyError, match="hog"):
                await sched.acquire("hog")
            assert sched.shed == 1
            # Another tenant's queue is unaffected by hog's cap.
            other = asyncio.create_task(sched.acquire("calm"))
            await asyncio.sleep(0)
            assert sched.queue_depths() == {"hog": 1, "calm": 1}
            sched.release("hog")
            await waiting
            sched.release("hog")
            await other
            sched.release("calm")

        run(scenario())

    def test_light_tenant_not_starved_by_saturating_tenant(self):
        """The satellite acceptance check: a hog queues behind itself."""

        async def scenario():
            sched = WeightedFairScheduler(max_inflight=1)
            await sched.acquire("hog")  # slot held; everything below queues
            order = []

            async def waiter(tenant):
                await sched.acquire(tenant)
                order.append(tenant)
                sched.release(tenant)

            tasks = [asyncio.create_task(waiter("hog")) for _ in range(6)]
            await asyncio.sleep(0)  # hog's backlog enqueues first
            tasks.append(asyncio.create_task(waiter("light")))
            await asyncio.sleep(0)
            sched.release("hog")  # start the dispatch cascade
            await asyncio.gather(*tasks)
            # FIFO would serve light last (position 6); WFQ tags place it
            # right after hog's first queued request.
            assert order.index("light") <= 1
            assert sorted(order) == ["hog"] * 6 + ["light"]

        run(scenario())

    def test_weighted_share_under_contention(self):
        async def scenario():
            sched = WeightedFairScheduler(
                max_inflight=1, weights={"heavy": 2.0}
            )
            await sched.acquire("seed")
            order = []

            async def waiter(tenant):
                await sched.acquire(tenant)
                order.append(tenant)
                sched.release(tenant)

            tasks = [asyncio.create_task(waiter("heavy")) for _ in range(4)]
            await asyncio.sleep(0)
            tasks += [asyncio.create_task(waiter("light")) for _ in range(4)]
            await asyncio.sleep(0)
            sched.release("seed")
            await asyncio.gather(*tasks)
            # While both are backlogged, weight 2 earns ~2 dispatches per 1.
            assert order[:3].count("heavy") >= 2

        run(scenario())

    def test_cancelled_waiter_leaks_nothing(self):
        async def scenario():
            sched = WeightedFairScheduler(max_inflight=1)
            await sched.acquire("a")
            doomed = asyncio.create_task(sched.acquire("b"))
            await asyncio.sleep(0)
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            sched.release("a")
            # The dead entry is skipped; the slot is free again.
            assert sched.inflight_total == 0
            assert sched.queued_total == 0
            await sched.acquire("c")  # still grantable
            sched.release("c")

        run(scenario())

    def test_cancel_after_dispatch_returns_the_slot(self):
        async def scenario():
            sched = WeightedFairScheduler(max_inflight=1)
            await sched.acquire("a")
            waiter = asyncio.create_task(sched.acquire("b"))
            await asyncio.sleep(0)
            sched.release("a")  # dispatches b's future...
            waiter.cancel()  # ...but b is cancelled before it runs
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert sched.inflight_total == 0
            await sched.acquire("c")
            sched.release("c")

        run(scenario())


class TestIntrospection:
    def test_stats_shape(self):
        async def scenario():
            sched = WeightedFairScheduler(
                max_inflight=2, max_queue_per_tenant=3, weights={"gold": 2.0}
            )
            await sched.acquire("gold")
            stats = sched.stats()
            assert stats["max_inflight"] == 2
            assert stats["inflight"] == 1
            assert stats["admitted"] == 1
            assert stats["weights"] == {"gold": 2.0}
            sched.release("gold")

        run(scenario())

    def test_bind_metrics_mirrors_depths(self):
        async def scenario():
            registry = MetricsRegistry()
            sched = WeightedFairScheduler(max_inflight=1, max_queue_per_tenant=0)
            sched.bind_metrics(registry)
            await sched.acquire("a")
            with pytest.raises(ServiceBusyError):
                await sched.acquire("a")
            snap = registry.snapshot()
            inflight = {
                tuple(sample["labels"].items()): sample["value"]
                for sample in snap["cast_fleet_tenant_inflight"]["values"]
            }
            assert inflight[(("tenant", "a"),)] == 1
            admission = {
                sample["labels"]["outcome"]: sample["value"]
                for sample in snap["cast_fleet_admission_total"]["values"]
            }
            assert admission == {"admitted": 1, "shed": 1}
            sched.release("a")

        run(scenario())
