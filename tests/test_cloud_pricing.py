"""Pricing model (Eq. 5 / Eq. 6)."""

import pytest

from repro.cloud.pricing import google_cloud_2015_pricebook
from repro.cloud.storage import Tier
from repro.units import HOURS_PER_MONTH


@pytest.fixture()
def prices():
    return google_cloud_2015_pricebook()


class TestVMCost:
    def test_eq5_linear_in_time_and_vms(self, prices):
        one = prices.vm_cost(1, 60.0)
        assert prices.vm_cost(10, 60.0) == pytest.approx(10 * one)
        assert prices.vm_cost(1, 600.0) == pytest.approx(10 * one)

    def test_rate_matches_2015_gce(self, prices):
        # n1-standard-16 on-demand: $0.832/hour.
        assert prices.vm_cost(1, 3600.0) == pytest.approx(0.832)

    def test_zero_time_is_free(self, prices):
        assert prices.vm_cost(25, 0.0) == 0.0

    def test_negative_inputs_rejected(self, prices):
        with pytest.raises(ValueError):
            prices.vm_cost(-1, 10.0)
        with pytest.raises(ValueError):
            prices.vm_cost(1, -10.0)


class TestStorageCost:
    def test_eq6_hourly_rounding(self, prices):
        caps = {Tier.PERS_SSD: 1000.0}
        one_hour = prices.storage_cost(caps, 3600.0)
        # 61 minutes bills two hours.
        assert prices.storage_cost(caps, 3660.0) == pytest.approx(2 * one_hour)

    def test_rates_derive_from_monthly(self, prices):
        caps = {Tier.PERS_HDD: HOURS_PER_MONTH}  # so the math is exact
        assert prices.storage_cost(caps, 3600.0) == pytest.approx(0.04)

    def test_multiple_services_sum(self, prices):
        a = prices.storage_cost({Tier.EPH_SSD: 100.0}, 3600.0)
        b = prices.storage_cost({Tier.OBJ_STORE: 100.0}, 3600.0)
        both = prices.storage_cost(
            {Tier.EPH_SSD: 100.0, Tier.OBJ_STORE: 100.0}, 3600.0
        )
        assert both == pytest.approx(a + b)

    def test_cheapest_service_is_objstore(self, prices):
        rates = prices.storage_price_gb_hr
        assert min(rates, key=rates.get) is Tier.OBJ_STORE

    def test_most_expensive_service_is_ephssd(self, prices):
        rates = prices.storage_price_gb_hr
        assert max(rates, key=rates.get) is Tier.EPH_SSD

    def test_negative_capacity_rejected(self, prices):
        with pytest.raises(ValueError):
            prices.storage_cost({Tier.PERS_SSD: -1.0}, 3600.0)


class TestHoldingCost:
    def test_holding_equals_storage_at_same_duration(self, prices):
        held = prices.storage_holding_cost(Tier.PERS_SSD, 100.0, 7200.0)
        billed = prices.storage_cost({Tier.PERS_SSD: 100.0}, 7200.0)
        assert held == pytest.approx(billed)

    def test_week_long_holding_scales(self, prices):
        week = prices.storage_holding_cost(Tier.OBJ_STORE, 100.0, 7 * 24 * 3600.0)
        hour = prices.storage_holding_cost(Tier.OBJ_STORE, 100.0, 3600.0)
        assert week == pytest.approx(hour * 168)
