"""The Eq. 1 estimator and its staging / wave refinements."""

import pytest

from repro.cloud.storage import Tier
from repro.core.perf_model import _effective_waves, estimate_job, staging_seconds
from repro.simulator.engine import simulate_job
from repro.workloads.apps import GREP, JOIN, KMEANS, SORT
from repro.workloads.spec import JobSpec


class TestEffectiveWaves:
    def test_full_waves_exact(self):
        assert _effective_waves(200, 100, cpu_bound=False) == 2.0
        assert _effective_waves(200, 100, cpu_bound=True) == 2.0

    def test_cpu_bound_remainder_is_a_full_wave(self):
        assert _effective_waves(201, 100, cpu_bound=True) == 3.0

    def test_io_bound_remainder_is_sublinear_fraction(self):
        waves = _effective_waves(150, 100, cpu_bound=False)
        assert 1.5 < waves < 2.0

    def test_zero_tasks(self):
        assert _effective_waves(0, 100, cpu_bound=False) == 0.0

    def test_monotone_in_tasks(self):
        prev = 0.0
        for n in range(1, 300, 7):
            w = _effective_waves(n, 100, cpu_bound=False)
            assert w >= prev
            prev = w


class TestStaging:
    def test_zero_size_free(self, provider, char_cluster):
        assert staging_seconds(0.0, 10, char_cluster, provider) == 0.0

    def test_scales_with_size(self, provider, char_cluster):
        t1 = staging_seconds(100.0, 100, char_cluster, provider)
        t2 = staging_seconds(200.0, 100, char_cluster, provider)
        assert t2 > t1

    def test_many_objects_add_request_overhead(self, provider, char_cluster):
        few = staging_seconds(100.0, 10, char_cluster, provider)
        many = staging_seconds(100.0, 100_000, char_cluster, provider)
        assert many > few

    def test_uses_bulk_rate_not_streaming_rate(self, provider, char_cluster):
        svc = provider.service(Tier.OBJ_STORE)
        t = staging_seconds(100.0, 1, char_cluster, provider)
        expected = (100.0 / 10) * 1000.0 / svc.bulk_staging_mb_s + svc.request_overhead_s
        assert t == pytest.approx(expected)


class TestEstimateJob:
    def test_eph_estimates_include_staging(self, provider, char_cluster, matrix):
        job = JobSpec(job_id="s", app=SORT, input_gb=100.0)
        est = estimate_job(job, Tier.EPH_SSD, 375.0, char_cluster, matrix, provider)
        assert est.download_s > 0
        assert est.upload_s > 0
        assert est.total_s == pytest.approx(
            est.download_s + est.processing_s + est.upload_s
        )

    def test_staging_can_be_disabled(self, provider, char_cluster, matrix):
        job = JobSpec(job_id="s", app=SORT, input_gb=100.0)
        est = estimate_job(job, Tier.EPH_SSD, 375.0, char_cluster, matrix, provider,
                           include_staging=False)
        assert est.download_s == 0.0
        assert est.upload_s == 0.0

    def test_persistent_tiers_never_stage(self, provider, char_cluster, matrix):
        job = JobSpec(job_id="s", app=SORT, input_gb=100.0)
        for tier in (Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE):
            est = estimate_job(job, tier, 500.0, char_cluster, matrix, provider)
            assert est.download_s == 0.0
            assert est.upload_s == 0.0

    def test_capacity_scaling_flows_through(self, provider, char_cluster, matrix):
        job = JobSpec(job_id="s", app=SORT, input_gb=100.0)
        slow = estimate_job(job, Tier.PERS_SSD, 100.0, char_cluster, matrix, provider)
        fast = estimate_job(job, Tier.PERS_SSD, 500.0, char_cluster, matrix, provider)
        assert slow.total_s > fast.total_s * 2

    @pytest.mark.parametrize("app", [SORT, JOIN, GREP, KMEANS], ids=lambda a: a.name)
    def test_prediction_matches_simulation_at_calibration_shape(
        self, provider, char_cluster, matrix, app
    ):
        """On wave-aligned jobs at profiled capacities the Eq. 1 model
        should track the simulator within a few percent."""
        from repro.profiler.profiler import Profiler

        profiler = Profiler(provider=provider, cluster_spec=char_cluster)
        job = profiler.calibration_job(app)
        obs = simulate_job(job, Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb={Tier.PERS_SSD: 500.0}).total_s
        pred = estimate_job(job, Tier.PERS_SSD, 500.0, char_cluster, matrix, provider).total_s
        assert pred == pytest.approx(obs, rel=0.05)

    def test_prediction_reasonable_off_calibration(self, provider, char_cluster, matrix):
        """Odd-shaped jobs must still predict within a Fig.-8-like
        error band (paper: 7.9 %; we allow 25 %)."""
        job = JobSpec(job_id="x", app=SORT, input_gb=137.0, n_maps=137)
        obs = simulate_job(job, Tier.PERS_SSD, char_cluster, provider,
                           per_vm_capacity_gb={Tier.PERS_SSD: 300.0}).total_s
        pred = estimate_job(job, Tier.PERS_SSD, 300.0, char_cluster, matrix, provider).total_s
        assert abs(pred - obs) / obs < 0.25
