"""Unit-conversion helpers: exactness and edge cases."""


import pytest

from repro.units import (
    HOURS_PER_MONTH,
    gb_to_mb,
    mb_to_gb,
    monthly_to_hourly_price,
    seconds_to_hours_ceil,
    seconds_to_minutes,
    transfer_seconds,
)


class TestConversions:
    def test_gb_to_mb_decimal(self):
        assert gb_to_mb(1.0) == 1000.0

    def test_mb_to_gb_roundtrip(self):
        assert mb_to_gb(gb_to_mb(123.456)) == pytest.approx(123.456)

    def test_seconds_to_minutes(self):
        assert seconds_to_minutes(90.0) == 1.5

    def test_monthly_price_uses_730_hours(self):
        assert monthly_to_hourly_price(HOURS_PER_MONTH) == pytest.approx(1.0)


class TestHoursCeil:
    def test_zero_bills_zero_hours(self):
        assert seconds_to_hours_ceil(0.0) == 0

    def test_negative_bills_zero_hours(self):
        assert seconds_to_hours_ceil(-5.0) == 0

    def test_one_second_bills_one_hour(self):
        assert seconds_to_hours_ceil(1.0) == 1

    def test_exact_hour_bills_one_hour(self):
        assert seconds_to_hours_ceil(3600.0) == 1

    def test_hour_plus_epsilon_bills_two(self):
        assert seconds_to_hours_ceil(3600.5) == 2

    def test_paper_eq6_minutes_example(self):
        # 263 minutes (the paper's persSSD-100% runtime) bills 5 hours.
        assert seconds_to_hours_ceil(263 * 60.0) == 5


class TestTransferSeconds:
    def test_basic(self):
        # 1 GB at 100 MB/s = 10 s.
        assert transfer_seconds(1.0, 100.0) == pytest.approx(10.0)

    def test_zero_size_is_instant(self):
        assert transfer_seconds(0.0, 100.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            transfer_seconds(-1.0, 100.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            transfer_seconds(1.0, 0.0)
