"""The SLO engine: objectives, burn windows, state machine, roll-up.

Everything here runs on a manual clock — explicit ``t=`` timestamps
into :meth:`SLOEngine.observe`/``evaluate`` — so the ok → warning →
page → ok cycle is deterministic and instant.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    LATENCY_METRIC,
    REQUESTS_METRIC,
    BurnPolicy,
    Objective,
    SLOEngine,
    default_objectives,
    rollup_reports,
    worst_state,
)

# Small windows so test scenarios need seconds of simulated time, not
# hours: page on 14.4x over 10 s AND 60 s, warn on 6x over 30 s AND
# 120 s.
POLICY = BurnPolicy(
    fast_short_s=10.0, fast_long_s=60.0,
    slow_short_s=30.0, slow_long_s=120.0,
)

AVAIL = Objective("solve", ("plan", "plan_workflow"),
                  kind="availability", target=0.99)


def requests_snapshot(ok, err, op="plan"):
    """A registry-snapshot fragment with cumulative request counters."""
    return {
        REQUESTS_METRIC: {
            "kind": "counter",
            "values": [
                {"labels": {"op": op, "outcome": "ok"}, "value": ok},
                {"labels": {"op": op, "outcome": "error"}, "value": err},
            ],
        }
    }


def latency_snapshot(counts, bounds=(0.1, 1.0, 10.0), op="whatif"):
    """A snapshot fragment with a cumulative latency histogram."""
    return {
        LATENCY_METRIC: {
            "kind": "histogram",
            "buckets": list(bounds),
            "values": [
                {
                    "labels": {"op": op},
                    "value": {
                        "counts": list(counts),
                        "count": float(sum(counts)),
                        "sum": 0.0,
                    },
                }
            ],
        }
    }


class TestObjective:
    def test_budget_is_one_minus_target(self):
        assert AVAIL.budget == pytest.approx(0.01)

    def test_bad_kind_rejected(self):
        with pytest.raises(ObservabilityError, match="kind"):
            Objective("x", ("plan",), kind="vibes")

    def test_target_must_be_a_fraction(self):
        with pytest.raises(ObservabilityError, match="target"):
            Objective("x", ("plan",), target=1.0)
        with pytest.raises(ObservabilityError, match="target"):
            Objective("x", ("plan",), target=0.0)

    def test_latency_needs_threshold(self):
        with pytest.raises(ObservabilityError, match="threshold"):
            Objective("x", ("plan",), kind="latency", target=0.95)

    def test_round_trip(self):
        obj = Objective("whatif", ("whatif",), kind="latency",
                        target=0.99, threshold_s=2.5)
        assert Objective.from_dict(obj.to_dict()) == obj

    def test_defaults_cover_the_serving_ops(self):
        names = {o.name for o in default_objectives()}
        assert names == {"solve", "whatif", "session_delta", "sweep"}


class TestWorstState:
    def test_ordering(self):
        assert worst_state([]) == "ok"
        assert worst_state(["ok", "warning"]) == "warning"
        assert worst_state(["warning", "page", "ok"]) == "page"


class TestStateMachine:
    def test_full_cycle_ok_warning_page_ok(self):
        """The acceptance-criteria cycle, on a unit clock."""
        engine = SLOEngine([AVAIL], policy=POLICY)
        seen = []
        engine.on_transition(lambda e: seen.append((e.old, e.new, e.at)))

        engine.observe(requests_snapshot(0, 0), t=0.0)
        assert engine.evaluate(t=0.0)["ops"]["solve"]["state"] == "ok"

        # 10% errors sustained over every window: burn 10x — above the
        # slow threshold (6) but under the fast one (14.4) -> warning.
        engine.observe(requests_snapshot(900, 100), t=121.0)
        report = engine.evaluate(t=121.0)
        assert report["ops"]["solve"]["state"] == "warning"
        assert report["state"] == "warning"

        # Total failure: burn 100x on both fast windows -> page.
        engine.observe(requests_snapshot(900, 1100), t=182.0)
        report = engine.evaluate(t=182.0)
        assert report["ops"]["solve"]["state"] == "page"
        burn = report["ops"]["solve"]["burn"]
        assert burn["fast_short"] >= POLICY.fast_burn
        assert burn["fast_long"] >= POLICY.fast_burn

        # Bleeding stops; once every window has slid past the incident
        # the state returns to ok.
        engine.observe(requests_snapshot(5900, 1100), t=303.0)
        report = engine.evaluate(t=303.0)
        assert report["ops"]["solve"]["state"] == "ok"

        assert [(old, new) for old, new, _ in seen] == [
            ("ok", "warning"), ("warning", "page"), ("page", "ok"),
        ]
        # The transition log in the report matches the callbacks.
        assert [(e["old"], e["new"]) for e in report["transitions"]] == [
            ("ok", "warning"), ("warning", "page"), ("page", "ok"),
        ]

    def test_short_window_alone_cannot_page(self):
        """A burst inside the fast window does not page while the long
        window is still diluted — the multi-window AND."""
        engine = SLOEngine([AVAIL], policy=POLICY)
        engine.observe(requests_snapshot(0, 0), t=0.0)
        # A long healthy stretch first.
        engine.observe(requests_snapshot(10_000, 0), t=49.0)
        # Then 5 straight errors in the last 10 s: fast_short burns
        # hot, but fast_long is ~0.05% bad -> no page.
        engine.observe(requests_snapshot(10_000, 5), t=59.0)
        report = engine.evaluate(t=59.0)
        assert report["ops"]["solve"]["state"] == "ok"
        burn = report["ops"]["solve"]["burn"]
        assert burn["fast_short"] >= POLICY.fast_burn
        assert burn["fast_long"] < POLICY.fast_burn

    def test_min_events_suppresses_thin_alerts(self):
        policy = BurnPolicy(
            fast_short_s=10.0, fast_long_s=60.0,
            slow_short_s=30.0, slow_long_s=120.0, min_events=10,
        )
        engine = SLOEngine([AVAIL], policy=policy)
        engine.observe(requests_snapshot(0, 0), t=0.0)
        engine.observe(requests_snapshot(0, 3), t=61.0)  # 100% of 3 events
        assert engine.evaluate(t=61.0)["ops"]["solve"]["state"] == "ok"

    def test_latency_objective_pages_on_slow_requests(self):
        obj = Objective("whatif", ("whatif",), kind="latency",
                        target=0.95, threshold_s=1.0)
        engine = SLOEngine([obj], policy=POLICY)
        engine.observe(latency_snapshot([0, 0, 0]), t=0.0)
        # Everything lands in the 10 s bucket: 100% bad, burn 20x.
        engine.observe(latency_snapshot([0, 0, 50]), t=61.0)
        report = engine.evaluate(t=61.0)
        assert report["ops"]["whatif"]["state"] == "page"

    def test_latency_objective_happy_under_threshold(self):
        obj = Objective("whatif", ("whatif",), kind="latency",
                        target=0.95, threshold_s=1.0)
        engine = SLOEngine([obj], policy=POLICY)
        engine.observe(latency_snapshot([0, 0, 0]), t=0.0)
        engine.observe(latency_snapshot([40, 10, 0]), t=61.0)
        assert engine.evaluate(t=61.0)["ops"]["whatif"]["state"] == "ok"

    def test_ops_aggregate_into_one_logical_op(self):
        """plan and plan_workflow pool their events under "solve"."""
        engine = SLOEngine([AVAIL], policy=POLICY)
        snap0 = {REQUESTS_METRIC: {"kind": "counter", "values": []}}
        engine.observe(snap0, t=0.0)
        snap = {
            REQUESTS_METRIC: {
                "kind": "counter",
                "values": [
                    {"labels": {"op": "plan", "outcome": "ok"},
                     "value": 99.0},
                    {"labels": {"op": "plan_workflow", "outcome": "error"},
                     "value": 1.0},
                ],
            }
        }
        engine.observe(snap, t=61.0)
        report = engine.evaluate(t=61.0)
        entry = report["ops"]["solve"]["objectives"][0]
        assert entry["bad_fraction"]["fast_long"] == pytest.approx(0.01)

    def test_counter_reset_clamps_to_new_value(self):
        """A shard restart zeroes its counters mid-stream; the window
        delta must clamp to the new total, never go negative."""
        engine = SLOEngine([AVAIL], policy=POLICY)
        engine.observe(requests_snapshot(1000, 10), t=0.0)
        # Restarted server: totals fall. 50 ok + 0 errors since boot.
        engine.observe(requests_snapshot(50, 0), t=61.0)
        report = engine.evaluate(t=61.0)
        entry = report["ops"]["solve"]["objectives"][0]
        assert entry["events"]["fast_long"] == pytest.approx(50.0)
        assert entry["bad_fraction"]["fast_long"] == 0.0
        assert report["ops"]["solve"]["state"] == "ok"

    def test_non_monotonic_observation_rejected(self):
        engine = SLOEngine([AVAIL], policy=POLICY)
        engine.observe(requests_snapshot(1, 0), t=10.0)
        with pytest.raises(ObservabilityError, match="monotonic"):
            engine.observe(requests_snapshot(2, 0), t=9.0)

    def test_evaluate_before_observe_rejected(self):
        with pytest.raises(ObservabilityError, match="observe"):
            SLOEngine([AVAIL], policy=POLICY).evaluate()

    def test_injected_clock_drives_timestamps(self):
        ticks = iter([5.0, 7.0, 7.0])
        engine = SLOEngine([AVAIL], policy=POLICY,
                           clock=lambda: next(ticks))
        assert engine.observe(requests_snapshot(1, 0)) == 5.0
        report = engine.evaluate(requests_snapshot(2, 0))
        assert report["clock"] == 7.0

    def test_history_pruned_past_longest_window(self):
        engine = SLOEngine([AVAIL], policy=POLICY)
        for i in range(500):
            engine.observe(requests_snapshot(i, 0), t=float(i))
        # 120 s longest window + one boundary entry.
        assert len(engine._history) <= 123

    def test_evaluate_from_registry_snapshot(self):
        reg = MetricsRegistry()
        counter = reg.counter(REQUESTS_METRIC, labelnames=("op", "outcome"))
        counter.inc(3, op="plan", outcome="ok")
        engine = SLOEngine([AVAIL], policy=POLICY)
        report = engine.evaluate(registry=reg, t=0.0)
        assert report["ops"]["solve"]["state"] == "ok"


class TestMetricsMirror:
    def test_report_mirrored_as_cast_slo_series(self):
        reg = MetricsRegistry()
        engine = SLOEngine([AVAIL], policy=POLICY)
        engine.bind_metrics(reg)
        engine.observe(requests_snapshot(0, 0), t=0.0)
        engine.observe(requests_snapshot(0, 100), t=61.0)
        engine.evaluate(t=61.0)

        snap = reg.snapshot()
        states = {
            s["labels"]["op"]: s["value"]
            for s in snap["cast_slo_state"]["values"]
        }
        assert states["solve"] == 2  # page
        burns = {
            (s["labels"]["op"], s["labels"]["window"]): s["value"]
            for s in snap["cast_slo_burn_rate"]["values"]
        }
        assert burns[("solve", "fast_short")] >= POLICY.fast_burn
        transitions = {
            (s["labels"]["op"], s["labels"]["to"]): s["value"]
            for s in snap["cast_slo_transitions_total"]["values"]
        }
        assert transitions[("solve", "page")] == 1

    def test_mirror_is_inert_before_first_evaluation(self):
        reg = MetricsRegistry()
        SLOEngine([AVAIL], policy=POLICY).bind_metrics(reg)
        snap = reg.snapshot()
        assert snap.get("cast_slo_state", {}).get("values", []) == []


class TestRollup:
    def _report(self, state, burn=1.0, budget=0.9):
        return {
            "scope": "server",
            "state": state,
            "ops": {
                "solve": {
                    "state": state,
                    "burn": {"fast_short": burn},
                    "budget_remaining": budget,
                },
            },
        }

    def test_worst_shard_wins(self):
        rollup = rollup_reports({
            "s0": self._report("ok", burn=0.5, budget=0.99),
            "s1": self._report("page", burn=50.0, budget=0.0),
            "router": self._report("ok", burn=0.1),
        })
        assert rollup["scope"] == "fleet"
        assert rollup["state"] == "page"
        solve = rollup["ops"]["solve"]
        assert solve["state"] == "page"
        assert solve["shards"] == {"s0": "ok", "s1": "page", "router": "ok"}
        assert solve["burn"]["fast_short"] == 50.0
        assert solve["budget_remaining"] == 0.0
        assert rollup["shards"]["s1"] == "page"

    def test_all_ok_rolls_up_ok(self):
        rollup = rollup_reports({
            "s0": self._report("ok"), "s1": self._report("ok"),
        })
        assert rollup["state"] == "ok"
        assert rollup["ops"]["solve"]["state"] == "ok"

    def test_empty_fleet_is_ok(self):
        assert rollup_reports({})["state"] == "ok"
