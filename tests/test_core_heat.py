"""Heat-based tiering straw man (§3.2)."""

import pytest

from repro.cloud.storage import Tier
from repro.core.heat import (
    DEFAULT_HEAT_LADDER,
    heat_based_plan,
    heat_scores,
)
from repro.errors import SolverError
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec


@pytest.fixture()
def workload():
    jobs = tuple(
        JobSpec(job_id=f"j{i}", app=SORT if i % 2 else GREP, input_gb=100.0 + i)
        for i in range(8)
    )
    return WorkloadSpec(
        jobs=jobs,
        reuse_sets=(
            ReuseSet(job_ids=frozenset({"j0", "j1"}),
                     lifetime=ReuseLifetime.SHORT, n_accesses=7),
            ReuseSet(job_ids=frozenset({"j2", "j3"}),
                     lifetime=ReuseLifetime.LONG, n_accesses=7),
        ),
    )


class TestHeatScores:
    def test_shared_short_lifetime_is_hottest(self, workload):
        scores = {s.job_id: s.heat for s in heat_scores(workload)}
        # j0/j1: 14 accesses every ~8.5 min -> very hot.
        # j2/j3: 14 accesses daily -> warm.
        # j4..j7: single access -> cold.
        assert scores["j0"] > scores["j2"] > scores["j4"]

    def test_unshared_jobs_are_cold_and_equal(self, workload):
        scores = {s.job_id: s.heat for s in heat_scores(workload)}
        assert scores["j4"] == scores["j7"]

    def test_every_job_scored(self, workload):
        assert {s.job_id for s in heat_scores(workload)} == {
            j.job_id for j in workload.jobs
        }


class TestHeatBasedPlan:
    def test_ladder_assignment_follows_heat(self, workload, provider):
        plan = heat_based_plan(workload, provider)
        # The hottest pair lands on the fastest rung...
        assert plan.tier_of("j0") is Tier.EPH_SSD
        assert plan.tier_of("j1") is Tier.EPH_SSD
        # ...and some cold job lands on the cheapest rung.
        cold_tiers = {plan.tier_of(f"j{i}") for i in range(4, 8)}
        assert Tier.OBJ_STORE in cold_tiers

    def test_plan_is_valid_exact_fit(self, workload, provider):
        plan = heat_based_plan(workload, provider)
        plan.validate(workload, provider)
        for job in workload.jobs:
            assert plan.placement(job.job_id).capacity_gb == pytest.approx(
                job.footprint_gb
            )

    def test_all_rungs_used_on_large_workloads(self, facebook_workload, provider):
        plan = heat_based_plan(facebook_workload, provider)
        used = {p.tier for p in plan.placements.values()}
        assert used == set(DEFAULT_HEAT_LADDER)

    def test_deterministic(self, workload, provider):
        a = heat_based_plan(workload, provider)
        b = heat_based_plan(workload, provider)
        assert a.placements == b.placements

    def test_ladder_quantile_mismatch_rejected(self, workload, provider):
        with pytest.raises(SolverError, match="rungs"):
            heat_based_plan(workload, provider,
                            ladder=(Tier.EPH_SSD, Tier.OBJ_STORE),
                            quantiles=(0.25, 0.5, 0.75))

    def test_bad_quantiles_rejected(self, workload, provider):
        with pytest.raises(SolverError, match="quantiles"):
            heat_based_plan(workload, provider,
                            ladder=(Tier.EPH_SSD, Tier.OBJ_STORE),
                            quantiles=(1.5,))

    def test_custom_two_rung_ladder(self, workload, provider):
        plan = heat_based_plan(
            workload, provider,
            ladder=(Tier.PERS_SSD, Tier.PERS_HDD), quantiles=(0.5,),
        )
        tiers = {p.tier for p in plan.placements.values()}
        assert tiers == {Tier.PERS_SSD, Tier.PERS_HDD}


class TestHeatVsCast:
    def test_cast_measures_better_than_heat(self, provider, eval_cluster,
                                            eval_matrix, facebook_workload):
        """§3.2 quantified: even with perfect future-access knowledge,
        the hot/cold ladder loses to application-aware tiering."""
        from repro.core.annealing import AnnealingSchedule
        from repro.core.solver import CastSolver
        from repro.experiments.measure import measure_plan

        heat = measure_plan(
            facebook_workload, heat_based_plan(facebook_workload, provider),
            eval_cluster, provider,
        )
        solver = CastSolver(cluster_spec=eval_cluster, matrix=eval_matrix,
                            provider=provider,
                            schedule=AnnealingSchedule(iter_max=1500), seed=42)
        cast = measure_plan(
            facebook_workload, solver.solve(facebook_workload).best_state,
            eval_cluster, provider,
        )
        assert cast.utility > heat.utility * 2
