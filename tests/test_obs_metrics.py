"""Metrics registry: instruments, snapshots, merge, exposition."""

import math
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    snapshot_delta,
    use_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(2.0, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3.0
        assert c.value(kind="b") == 1.0
        assert c.value(kind="never") == 0.0

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("x").inc(-1)

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("y", labelnames=("op",))
        with pytest.raises(ObservabilityError):
            c.inc()  # missing label
        with pytest.raises(ObservabilityError):
            c.inc(op="plan", extra="nope")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("taken")
        with pytest.raises(ObservabilityError):
            reg.gauge("taken")
        with pytest.raises(ObservabilityError):
            reg.counter("taken", labelnames=("other",))

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("c", labelnames=("a",)) is reg.counter(
            "c", labelnames=("a",)
        )


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` is inclusive: an observation exactly on a
        # bound belongs to that bound's bucket.
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(0.5)
        h.observe(10.0)  # overflow -> +Inf bucket
        ((labels, series),) = h.samples()
        assert labels == {}
        assert series["counts"] == [2, 1, 0, 1]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(13.5)

    def test_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            h.observe(v)
        assert 0.0 < h.quantile(0.25) <= 1.0
        assert 2.0 < h.quantile(0.9) <= 4.0
        # above the last finite bound clamps to it
        h2 = reg.histogram("lat2", buckets=(1.0,))
        h2.observe(100.0)
        assert h2.quantile(0.99) == 1.0

    def test_empty_quantile_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.histogram("empty").quantile(0.5))

    def test_bad_buckets_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("bad2", buckets=())

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestPrometheusExposition:
    def test_counter_and_gauge_format(self):
        reg = MetricsRegistry()
        reg.counter("cast_reqs_total", "Requests", labelnames=("op",)).inc(
            3, op="plan"
        )
        reg.gauge("cast_depth", "Queue depth").set(2)
        text = reg.to_prometheus()
        assert "# HELP cast_reqs_total Requests" in text
        assert "# TYPE cast_reqs_total counter" in text
        assert 'cast_reqs_total{op="plan"} 3' in text
        assert "# TYPE cast_depth gauge" in text
        assert "cast_depth 2" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("cast_lat_seconds", "Latency", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = reg.to_prometheus()
        assert 'cast_lat_seconds_bucket{le="1"} 1' in text
        assert 'cast_lat_seconds_bucket{le="2"} 2' in text
        assert 'cast_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "cast_lat_seconds_count 3" in text
        assert "# TYPE cast_lat_seconds histogram" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("v",)).inc(v='a"b\\c')
        text = reg.to_prometheus()
        assert 'v="a\\"b\\\\c"' in text

    def test_help_text_escaped(self):
        # 0.0.4 format: HELP escapes backslash and newline (a raw
        # newline would truncate the comment and corrupt the scrape).
        reg = MetricsRegistry()
        reg.counter("c", "path C:\\tmp\nsecond line").inc()
        text = reg.to_prometheus()
        assert "# HELP c path C:\\\\tmp\\nsecond line" in text
        assert "\nsecond line" not in text.replace("\\nsecond", "")

    def test_json_exposition_has_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(0.3)
        payload = reg.to_json()
        q = payload["h"]["values"][0]["quantiles"]
        assert set(q) == {"p50", "p95", "p99"}


class TestSnapshotMerge:
    def test_round_trip(self):
        a = MetricsRegistry()
        a.counter("c", labelnames=("k",)).inc(2, k="x")
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        a.gauge("g").set(7)

        b = MetricsRegistry()
        b.counter("c", labelnames=("k",)).inc(1, k="x")
        b.merge(a.snapshot())
        assert b.counter("c", labelnames=("k",)).value(k="x") == 3.0
        assert b.gauge("g").value() == 7.0
        h = b.get("h")
        assert isinstance(h, Histogram)
        ((_, series),) = h.samples()
        assert series["count"] == 1

    def test_merge_is_additive_for_histograms(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        b.merge(a.snapshot())
        ((_, series),) = b.get("h").samples()
        assert series["counts"] == [1, 1]
        assert series["count"] == 2

    def test_snapshot_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(5)
        before = reg.snapshot()
        c.inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.1)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["c"]["values"][0]["value"] == 2.0
        assert delta["h"]["values"][0]["value"]["count"] == 1
        # unchanged series drop out of the delta entirely
        c2 = MetricsRegistry()
        c2.merge(delta)
        assert c2.counter("c").value() == 2.0

    def test_snapshot_delta_clamps_counter_reset(self):
        """A source restart mid-scrape (shard respawn) zeroes its
        counters; the delta clamps to the new total, never negative."""
        old = MetricsRegistry()
        old.counter("c").inc(100)
        before = old.snapshot()
        restarted = MetricsRegistry()
        restarted.counter("c").inc(7)
        delta = snapshot_delta(before, restarted.snapshot())
        assert delta["c"]["values"][0]["value"] == 7.0

    def test_snapshot_delta_clamps_histogram_reset(self):
        old = MetricsRegistry()
        h = old.histogram("h", buckets=(1.0,))
        for _ in range(50):
            h.observe(0.5)
        before = old.snapshot()
        restarted = MetricsRegistry()
        restarted.histogram("h", buckets=(1.0,)).observe(2.0)
        delta = snapshot_delta(before, restarted.snapshot())
        value = delta["h"]["values"][0]["value"]
        assert value["count"] == 1
        assert value["counts"] == [0, 1]
        assert all(c >= 0 for c in value["counts"])
        # And the clamped delta still merges cleanly elsewhere.
        sink = MetricsRegistry()
        sink.merge(delta)
        ((_, series),) = sink.get("h").samples()
        assert series["count"] == 1

    def test_reset_keeps_instruments_and_collectors(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(4)
        reg.register_collector("m", lambda r: r.gauge("mirrored").set(1))
        reg.reset()
        assert c.value() == 0.0
        assert "mirrored" in reg.to_prometheus()  # collector still runs


def _worker_task(n: int) -> dict:
    """Simulate a pool worker: record into the process-global registry
    and ship the snapshot delta home (the solve_restart protocol)."""
    reg = get_registry()
    before = reg.snapshot()
    reg.counter("work_done_total").inc(n)
    reg.histogram("work_seconds", buckets=(1.0, 10.0)).observe(0.5 * n)
    return snapshot_delta(before, reg.snapshot())


class TestCrossProcessRollUp:
    def test_deltas_from_real_workers_merge(self):
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for delta in pool.map(_worker_task, [1, 2, 3]):
                parent.merge(delta)
        assert parent.counter("work_done_total").value() == 6.0
        ((_, series),) = parent.get("work_seconds").samples()
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(3.0)

    def test_delta_excludes_preexisting_totals(self):
        # A worker that already had history only ships what the task
        # itself did — the parent can merge many tasks from one
        # process without double counting.
        with ProcessPoolExecutor(max_workers=1) as pool:
            first = pool.submit(_worker_task, 5).result()
            second = pool.submit(_worker_task, 1).result()
        assert first["work_done_total"]["values"][0]["value"] == 5.0
        assert second["work_done_total"]["values"][0]["value"] == 1.0


class TestAmbientRegistry:
    def test_use_registry_rebinds_and_restores(self):
        mine = MetricsRegistry()
        default = get_registry()
        with use_registry(mine):
            assert get_registry() is mine
            get_registry().counter("scoped").inc()
        assert get_registry() is default
        assert mine.counter("scoped").value() == 1.0
