"""Consistent hash ring: determinism, balance, minimal movement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError
from repro.fleet.hashring import ConsistentHashRing

shard_sets = st.sets(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8),
    min_size=1,
    max_size=8,
)
keys = st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=50)


class TestBasics:
    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(FleetError, match="empty"):
            ConsistentHashRing().route("k")

    def test_bad_vnodes_rejected(self):
        with pytest.raises(FleetError, match="vnodes"):
            ConsistentHashRing(vnodes=0)

    def test_membership_protocol(self):
        ring = ConsistentHashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        ring.add("a")  # idempotent
        assert len(ring) == 2
        ring.remove("c")  # idempotent
        ring.remove("a")
        assert ring.shards() == ["b"]

    def test_single_shard_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.route(f"k{i}") == "only" for i in range(100))

    def test_successors_enumerate_each_shard_once(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        succ = ring.successors("some-key")
        assert sorted(succ) == ["a", "b", "c"]
        assert succ[0] == ring.route("some-key")

    def test_load_split_reaches_every_shard(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        split = ring.load_split(f"fp{i}" for i in range(2000))
        assert set(split) == {"a", "b", "c", "d"}
        assert all(count > 0 for count in split.values())
        assert sum(split.values()) == 2000


class TestDeterminism:
    @given(shards=shard_sets, ks=keys)
    @settings(max_examples=50, deadline=None)
    def test_two_rings_always_agree(self, shards, ks):
        r1 = ConsistentHashRing(sorted(shards))
        r2 = ConsistentHashRing(sorted(shards, reverse=True))  # insertion order
        for k in ks:
            assert r1.route(k) == r2.route(k)

    def test_stable_across_rebuilds(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {f"k{i}": ring.route(f"k{i}") for i in range(200)}
        ring.remove("b")
        ring.add("b")  # leave and rejoin restores the exact mapping
        assert before == {k: ring.route(k) for k in before}


class TestMinimalMovement:
    @given(shards=shard_sets, ks=keys)
    @settings(max_examples=50, deadline=None)
    def test_remove_only_moves_the_dead_shards_keys(self, shards, ks):
        shards = sorted(shards)
        if len(shards) < 2:
            return
        ring = ConsistentHashRing(shards)
        victim = shards[0]
        before = {k: ring.route(k) for k in ks}
        ring.remove(victim)
        for k in ks:
            after = ring.route(k)
            if before[k] != victim:
                assert after == before[k]  # untouched keys stay put
            else:
                assert after != victim

    @given(shards=shard_sets, ks=keys, joiner=st.text(min_size=9, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_join_only_steals_keys_it_now_owns(self, shards, ks, joiner):
        ring = ConsistentHashRing(sorted(shards))
        before = {k: ring.route(k) for k in ks}
        ring.add(joiner)
        for k in ks:
            after = ring.route(k)
            assert after == before[k] or after == joiner
