"""Tracing: span nesting, contextvar isolation, capture and export."""

import asyncio
import json

import pytest

from repro.obs.tracing import (
    SpanRecord,
    capture_spans,
    current_span_id,
    current_trace_id,
    ingest,
    span,
    trace_collector,
)


@pytest.fixture(autouse=True)
def _clean_collector():
    trace_collector().clear()
    yield
    trace_collector().clear()


class TestNesting:
    def test_child_inherits_trace_and_parent(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = {s.name: s for s in trace_collector().records()}
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["outer"].parent_id is None

    def test_context_restored_after_block(self):
        assert current_trace_id() is None
        with span("a") as a:
            assert current_trace_id() == a.trace_id
            assert current_span_id() == a.span_id
        assert current_trace_id() is None

    def test_sibling_spans_share_parent(self):
        with span("root") as root:
            with span("s1"):
                pass
            with span("s2"):
                pass
        by_name = {s.name: s for s in trace_collector().records()}
        assert by_name["s1"].parent_id == root.span_id
        assert by_name["s2"].parent_id == root.span_id

    def test_exception_marks_error_status(self):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        (record,) = trace_collector().records()
        assert record.status == "error"
        assert "ValueError" in record.attrs["error"]

    def test_explicit_context_grafts_remote_parent(self):
        ctx = {"trace_id": "t" * 32, "span_id": "p" * 16}
        with span("remote-child", context=ctx) as sp:
            assert sp.trace_id == ctx["trace_id"]
            assert sp.parent_id == ctx["span_id"]


class TestAsyncIsolation:
    def test_interleaved_tasks_get_distinct_traces(self):
        """Two concurrent solves must never share a trace."""
        seen = {}

        async def request(name):
            with span("service.request", attrs={"who": name}):
                seen[name] = current_trace_id()
                await asyncio.sleep(0.01)  # force interleaving
                with span("service.solve"):
                    await asyncio.sleep(0.01)
                    # still the same trace after suspension points
                    assert current_trace_id() == seen[name]

        async def main():
            await asyncio.gather(request("a"), request("b"))

        asyncio.run(main())
        assert seen["a"] != seen["b"]
        solves = [
            s for s in trace_collector().records() if s.name == "service.solve"
        ]
        assert {s.trace_id for s in solves} == {seen["a"], seen["b"]}


class TestCaptureAndIngest:
    def test_capture_diverts_from_collector(self):
        with capture_spans() as captured:
            with span("inside"):
                pass
        assert [s.name for s in captured] == ["inside"]
        assert trace_collector().records() == []

    def test_ingest_adopts_dicts(self):
        with capture_spans() as captured:
            with span("worker-side", attrs={"k": 1}):
                pass
        ingest([s.to_dict() for s in captured])
        (record,) = trace_collector().records()
        assert record.name == "worker-side"
        assert record.attrs == {"k": 1}
        assert isinstance(record, SpanRecord)


class TestExport:
    def test_jsonl_round_trip_filtered_by_trace(self, tmp_path):
        with span("keep") as keep:
            with span("keep-child"):
                pass
        with span("other"):
            pass
        path = tmp_path / "trace.jsonl"
        written = trace_collector().dump_jsonl(str(path), trace_id=keep.trace_id)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert written == len(lines) == 2
        assert {r["name"] for r in lines} == {"keep", "keep-child"}
        assert all(r["trace_id"] == keep.trace_id for r in lines)
        restored = [SpanRecord.from_dict(r) for r in lines]
        assert {s.name for s in restored} == {"keep", "keep-child"}
