"""Greedy baselines (Algorithm 1)."""

import pytest

from repro.cloud.storage import Tier
from repro.core.greedy import greedy_exact_fit, greedy_over_provisioned, greedy_plan
from repro.workloads.apps import GREP, KMEANS, SORT
from repro.workloads.spec import JobSpec, WorkloadSpec


@pytest.fixture()
def workload():
    return WorkloadSpec(
        jobs=(
            JobSpec(job_id="sort", app=SORT, input_gb=200.0, n_maps=200),
            JobSpec(job_id="grep", app=GREP, input_gb=300.0, n_maps=300),
            JobSpec(job_id="kmeans", app=KMEANS, input_gb=100.0, n_maps=100),
        )
    )


class TestGreedyExactFit:
    def test_capacities_are_footprints(self, workload, char_cluster, matrix, provider):
        plan = greedy_exact_fit(workload, char_cluster, matrix, provider)
        for job in workload.jobs:
            assert plan.placement(job.job_id).capacity_gb == pytest.approx(
                job.footprint_gb
            )

    def test_plan_is_valid(self, workload, char_cluster, matrix, provider):
        plan = greedy_exact_fit(workload, char_cluster, matrix, provider)
        plan.validate(workload, provider)

    def test_each_job_gets_its_solo_best_tier(self, workload, char_cluster, matrix, provider):
        from repro.core.greedy import _single_job_utility
        from repro.core.plan import Placement

        plan = greedy_exact_fit(workload, char_cluster, matrix, provider)
        for job in workload.jobs:
            chosen_u = _single_job_utility(
                job, plan.placement(job.job_id), char_cluster, matrix, provider
            )
            for tier in provider.tiers:
                u = _single_job_utility(
                    job, Placement(tier=tier, capacity_gb=job.footprint_gb),
                    char_cluster, matrix, provider,
                )
                assert chosen_u >= u - 1e-12, (job.job_id, tier)

    def test_deterministic(self, workload, char_cluster, matrix, provider):
        a = greedy_exact_fit(workload, char_cluster, matrix, provider)
        b = greedy_exact_fit(workload, char_cluster, matrix, provider)
        assert a.placements == b.placements


class TestGreedyOverProvisioned:
    def test_block_tiers_get_extra_capacity(self, workload, char_cluster, matrix, provider):
        plan = greedy_over_provisioned(workload, char_cluster, matrix, provider)
        for job in workload.jobs:
            p = plan.placement(job.job_id)
            if p.tier in (Tier.PERS_SSD, Tier.PERS_HDD):
                assert p.capacity_gb > job.footprint_gb

    def test_over_provisioning_never_shrinks_capacity(
        self, workload, char_cluster, matrix, provider
    ):
        exact = greedy_exact_fit(workload, char_cluster, matrix, provider)
        over = greedy_over_provisioned(workload, char_cluster, matrix, provider)
        for job in workload.jobs:
            assert (
                over.placement(job.job_id).capacity_gb
                >= exact.placement(job.job_id).capacity_gb
            )


class TestTierRestriction:
    def test_candidate_tiers_can_be_restricted(self, workload, char_cluster, matrix, provider):
        plan = greedy_plan(
            workload, char_cluster, matrix, provider,
            tiers=[Tier.PERS_HDD, Tier.OBJ_STORE],
        )
        for job in workload.jobs:
            assert plan.tier_of(job.job_id) in (Tier.PERS_HDD, Tier.OBJ_STORE)
