"""Every example script must run end-to-end (deliverable integrity)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "predicted makespan" in out
        assert "tenant utility" in out
        assert "sjob-00" in out

    def test_deadline_workflows(self):
        out = run_example("deadline_workflows.py")
        assert "CAST++ placement" in out
        assert "deadline MET" in out
        # The slowest naive deployment must miss the deadline.
        assert "MISSED" in out

    def test_capacity_whatif(self):
        out = run_example("capacity_whatif.py")
        assert "sweet spot" in out
        assert "persSSD" in out

    def test_service_quickstart(self):
        out = run_example("service_quickstart.py")
        assert "planner daemon up" in out
        assert "cached=True" in out
        assert "single-flight join: 1" in out
        assert "daemon drained and stopped" in out

    def test_multicloud(self):
        out = run_example("multicloud.py")
        assert "google-cloud-2015" in out
        assert "aws-2015" in out

    @pytest.mark.slow
    def test_facebook_evaluation(self):
        out = run_example("facebook_evaluation.py", timeout=420)
        assert "CAST++" in out
        assert "headline comparisons" in out
