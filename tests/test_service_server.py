"""The planner daemon: protocol, caching, single-flight, failure paths.

Solver-independent behaviour (dedup, backpressure, timeouts) is tested
through the ``solver_fn`` seam with a stub that counts invocations;
the end-to-end paths run the real pool in thread mode (``processes=0``)
so the tests stay fast and fork-free.
"""

import asyncio
import json

import pytest

from repro.errors import (
    CatalogError,
    ProtocolError,
    ServiceBusyError,
    ServiceTimeoutError,
    WorkloadError,
)
from repro.service import PlannerClient, PlannerServer, SolverPool, SyncPlannerClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    exception_from_payload,
    make_request,
    parse_request,
    parse_response,
)
from repro.workloads.io import workflow_to_dict, workload_to_dict
from repro.workloads.swim import synthesize_small_workload
from repro.workloads.workflow import search_engine_workflow


def small_spec(n_jobs=4):
    return workload_to_dict(synthesize_small_workload(n_jobs=n_jobs))


def run(coro):
    return asyncio.run(coro)


async def serving(server):
    """Start ``server`` and return a task running its accept loop."""
    await server.start()
    return asyncio.create_task(server.serve_forever())


async def shutdown(server, serve_task):
    serve_task.cancel()
    try:
        await serve_task
    except asyncio.CancelledError:
        pass
    await server.stop()


def fake_result(**overrides):
    result = {"kind": "plan", "utility": 1.0, "plan": {"placements": {}}}
    result.update(overrides)
    return result


class TestProtocol:
    def test_request_round_trip(self):
        req = make_request("ping", req_id="r1")
        parsed = parse_request(json.dumps(req))
        assert parsed["op"] == "ping"
        assert parsed["id"] == "r1"
        assert parsed["v"] == PROTOCOL_VERSION

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="op"):
            make_request("explode")
        with pytest.raises(ProtocolError, match="op"):
            parse_request('{"v": 1, "op": "explode"}')

    def test_bad_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            parse_request('{"v": 99, "op": "ping"}')

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            parse_request("[1, 2]")

    def test_response_shape_enforced(self):
        with pytest.raises(ProtocolError, match="ok"):
            parse_response('{"v": 1, "id": null}')

    def test_error_payload_round_trips_types(self):
        exc = exception_from_payload({"type": "WorkloadError", "message": "bad"})
        assert isinstance(exc, WorkloadError)
        assert str(exc) == "bad"

    def test_unknown_error_type_degrades_safely(self):
        from repro.errors import ServiceError

        exc = exception_from_payload({"type": "OSError", "message": "x"})
        assert type(exc) is ServiceError  # never instantiates non-CastError names


class TestBasicOps:
    def test_ping_stats_catalog(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    pong = await client.ping()
                    assert pong["pong"] is True
                    stats = await client.stats()
                    assert stats["cache"]["size"] == 0
                    assert stats["limits"]["max_inflight"] == 4
                    catalog = await client.catalog("aws")
                    assert catalog["provider"] == "aws-2015"
                    assert len(catalog["tiers"]) == 4
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_catalog_unknown_provider_is_typed_error(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(CatalogError, match="digitalocean"):
                        await client.catalog("digitalocean")
            finally:
                await shutdown(server, task)

        run(scenario())


class TestSolvePath:
    def test_plan_solves_and_caches(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=2))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    first = await client.plan(small_spec(), n_vms=5, iterations=30)
                    assert first["cached"] is False
                    assert first["restarts"] == 2
                    assert first["solver"] == "CAST++"
                    second = await client.plan(small_spec(), n_vms=5, iterations=30)
                    assert second["cached"] is True
                    assert second["plan"] == first["plan"]
                    stats = await client.stats()
                    assert stats["cache"]["hits"] == 1
                    assert stats["counters"]["solves_ok"] == 1
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_plan_workflow_end_to_end(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    result = await client.plan_workflow(
                        workflow_to_dict(search_engine_workflow()),
                        n_vms=10, iterations=30,
                    )
                    assert result["kind"] == "workflow-plan"
                    assert result["n_jobs"] == 4
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_malformed_workload_is_typed_error_not_crash(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    bad = {"version": 1, "kind": "workload", "name": "x",
                           "jobs": [{"job_id": "j", "app": "nosuch", "input_gb": 1}]}
                    with pytest.raises(WorkloadError, match="unknown application"):
                        await client.plan(bad, iterations=10)
                    # The daemon survives and still answers.
                    assert (await client.ping())["pong"] is True
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_missing_spec_is_protocol_error(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(ProtocolError, match="spec"):
                        await client.request("plan", {"n_vms": 5})
            finally:
                await shutdown(server, task)

        run(scenario())


class TestSingleFlight:
    def test_concurrent_identical_requests_solve_once(self):
        async def scenario():
            calls = 0

            async def counting_solver(request):
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.2)  # hold the solve so followers join
                return fake_result(seed=request["seed"])

            server = PlannerServer(
                pool=SolverPool(processes=0, restarts=1),
                solver_fn=counting_solver,
            )
            task = await serving(server)
            try:
                host, port = server.address
                async with PlannerClient(host, port) as c1, \
                        PlannerClient(host, port) as c2:
                    r1, r2 = await asyncio.gather(
                        c1.plan(small_spec(), seed=9),
                        c2.plan(small_spec(), seed=9),
                    )
                assert calls == 1
                assert r1["fingerprint"] == r2["fingerprint"]
                assert server.counters["dedup_joined"] == 1
                # Exactly one of them led the solve; neither was cached.
                assert r1["cached"] is False and r2["cached"] is False
                assert server.cache.stats()["size"] == 1
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_distinct_requests_do_not_dedup(self):
        async def scenario():
            calls = 0

            async def counting_solver(request):
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.05)
                return fake_result(seed=request["seed"])

            server = PlannerServer(
                pool=SolverPool(processes=0, restarts=1),
                solver_fn=counting_solver,
            )
            task = await serving(server)
            try:
                host, port = server.address
                async with PlannerClient(host, port) as c1, \
                        PlannerClient(host, port) as c2:
                    await asyncio.gather(
                        c1.plan(small_spec(), seed=1),
                        c2.plan(small_spec(), seed=2),
                    )
                assert calls == 2
                assert server.counters["dedup_joined"] == 0
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_failed_solve_not_cached_and_retriable(self):
        async def scenario():
            attempts = 0

            async def flaky_solver(request):
                nonlocal attempts
                attempts += 1
                if attempts == 1:
                    raise WorkloadError("transient")
                return fake_result()

            server = PlannerServer(
                pool=SolverPool(processes=0, restarts=1), solver_fn=flaky_solver
            )
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(WorkloadError, match="transient"):
                        await client.plan(small_spec(), seed=4)
                    # Same fingerprint retried -> fresh solve, not a
                    # poisoned cache entry.
                    result = await client.plan(small_spec(), seed=4)
                    assert result["cached"] is False
                assert attempts == 2
            finally:
                await shutdown(server, task)

        run(scenario())


class TestWhatifOp:
    def test_whatif_measures_and_caches(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    spec = small_spec()
                    r1 = await client.whatif(spec, tier="persSSD", n_vms=5)
                    assert r1["cached"] is False
                    assert r1["fast"] is True
                    assert r1["n_jobs"] == 4
                    assert r1["makespan_s"] > 0
                    assert r1["cost_total_usd"] > 0
                    assert set(r1["per_job"]) == {j["job_id"] for j in spec["jobs"]}
                    # Identical question -> cached, identical answer.
                    r2 = await client.whatif(spec, tier="persSSD", n_vms=5)
                    assert r2["cached"] is True
                    assert r2["makespan_s"] == r1["makespan_s"]
                    # fast is part of the fingerprint: the exact-engine
                    # variant is a distinct entry, agreeing within the gate.
                    r3 = await client.whatif(spec, tier="persSSD", n_vms=5, fast=False)
                    assert r3["cached"] is False
                    assert r3["fast"] is False
                    assert r3["makespan_s"] == pytest.approx(
                        r1["makespan_s"], rel=1e-9
                    )
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_whatif_with_plan_dict(self):
        async def scenario():
            from repro.cloud.storage import Tier
            from repro.core.plan import TieringPlan
            from repro.workloads.io import workload_from_dict

            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    spec = small_spec()
                    plan = TieringPlan.uniform(
                        workload_from_dict(spec), Tier.OBJ_STORE
                    ).to_dict()
                    result = await client.whatif(spec, plan=plan, n_vms=5)
                    assert result["cached"] is False
                    assert result["makespan_s"] > 0
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_whatif_requires_exactly_one_tiering(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    spec = small_spec()
                    with pytest.raises(ProtocolError, match="plan.*tier|tier.*plan"):
                        await client.request("whatif", {"spec": spec})
                    with pytest.raises(ProtocolError, match="plan.*tier|tier.*plan"):
                        await client.request(
                            "whatif",
                            {"spec": spec, "tier": "objStore",
                             "plan": {"placements": {}}},
                        )
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_whatif_bad_tier_is_typed_error(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(WorkloadError, match="tier"):
                        await client.whatif(small_spec(), tier="floppyDisk")
                    # The daemon survives and still answers.
                    assert (await client.ping())["pong"] is True
            finally:
                await shutdown(server, task)

        run(scenario())


class TestSweepOp:
    def test_sweep_solves_grid_and_caches(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    spec = small_spec()
                    r1 = await client.sweep(
                        spec, providers=["google", "aws"], reps=2,
                        n_vms=5, iterations=120,
                    )
                    assert r1["cached"] is False
                    assert r1["kind"] == "sweep"
                    assert r1["n_points"] == 4
                    assert r1["parity_ok"] is True
                    assert r1["modes"].get("cold", 0) >= 1
                    (block,) = r1["ranking"]
                    assert {e["provider"] for e in block["ranking"]} == {
                        "google", "aws",
                    }
                    # Identical sweep -> answered from the cache.
                    r2 = await client.sweep(
                        spec, providers=["google", "aws"], reps=2,
                        n_vms=5, iterations=120,
                    )
                    assert r2["cached"] is True
                    assert r2["fingerprint"] == r1["fingerprint"]
                    # Axis order is part of the key (donor topology).
                    r3 = await client.sweep(
                        spec, providers=["aws", "google"], reps=2,
                        n_vms=5, iterations=120,
                    )
                    assert r3["cached"] is False
                    assert r3["fingerprint"] != r1["fingerprint"]
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_sweep_bad_params_are_typed_errors(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(ProtocolError, match="specs"):
                        await client.request("sweep", {"providers": ["google"]})
                    with pytest.raises(ProtocolError, match="providers"):
                        await client.request(
                            "sweep", {"spec": small_spec(), "providers": []}
                        )
                    with pytest.raises(WorkloadError, match="reps"):
                        await client.sweep(small_spec(), reps=0)
                    # The daemon survives and still answers.
                    assert (await client.ping())["pong"] is True
            finally:
                await shutdown(server, task)

        run(scenario())


class TestBackpressureAndTimeouts:
    def test_requests_beyond_queue_are_shed(self):
        async def scenario():
            release = asyncio.Event()

            async def stalled_solver(request):
                await release.wait()
                return fake_result()

            server = PlannerServer(
                pool=SolverPool(processes=0, restarts=1),
                solver_fn=stalled_solver,
                max_inflight=1,
                max_queue=0,
            )
            task = await serving(server)
            try:
                host, port = server.address
                async with PlannerClient(host, port) as c1, \
                        PlannerClient(host, port) as c2:
                    first = asyncio.create_task(c1.plan(small_spec(), seed=1))
                    await asyncio.sleep(0.1)  # let it occupy the only slot
                    with pytest.raises(ServiceBusyError, match="capacity"):
                        await c2.plan(small_spec(), seed=2)
                    release.set()
                    assert (await first)["utility"] == 1.0
                assert server.counters["rejected"] == 1
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_slow_solve_times_out_typed(self):
        async def scenario():
            async def sleepy_solver(request):
                await asyncio.sleep(5.0)
                return fake_result()

            server = PlannerServer(
                pool=SolverPool(processes=0, restarts=1),
                solver_fn=sleepy_solver,
                request_timeout_s=0.1,
            )
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    with pytest.raises(ServiceTimeoutError, match="deadline"):
                        await client.plan(small_spec())
                assert server.counters["timeouts"] == 1
            finally:
                await shutdown(server, task)

        run(scenario())


class TestWireRobustness:
    def test_malformed_json_gets_error_response_and_connection_survives(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"{this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "ProtocolError"
                # Same connection keeps working after the bad line.
                writer.write(
                    (json.dumps(make_request("ping", req_id="p1")) + "\n").encode()
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is True
                assert response["result"]["pong"] is True
                writer.close()
                await writer.wait_closed()
                assert server.counters["bad_requests"] == 1
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_blank_lines_ignored(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
            task = await serving(server)
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"\n\n")
                writer.write(
                    (json.dumps(make_request("ping", req_id="p1")) + "\n").encode()
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is True
                writer.close()
                await writer.wait_closed()
            finally:
                await shutdown(server, task)

        run(scenario())


class TestSyncClient:
    def test_sync_client_round_trip(self):
        # The sync facade drives its own event loops, so the server must
        # live in a different thread here.
        import threading

        started = threading.Event()
        box = {}

        def serve():
            async def body():
                server = PlannerServer(pool=SolverPool(processes=0, restarts=1))
                await server.start()
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                box["stopped"] = asyncio.Event()
                started.set()
                await box["stopped"].wait()
                await server.stop()

            asyncio.run(body())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(timeout=10)
        client = SyncPlannerClient(*box["server"].address)
        try:
            assert client.ping()["pong"] is True
            result = client.plan(small_spec(), n_vms=5, iterations=20, restarts=1)
            assert result["cached"] is False
            assert client.plan(small_spec(), n_vms=5, iterations=20,
                               restarts=1)["cached"] is True
            assert client.stats()["cache"]["hits"] == 1
        finally:
            box["loop"].call_soon_threadsafe(box["stopped"].set)
            thread.join(timeout=10)


class TestEvaluatorStats:
    def test_stats_expose_summed_evaluator_counters(self):
        async def scenario():
            server = PlannerServer(pool=SolverPool(processes=0, restarts=2))
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    before = await client.stats()
                    assert before["evaluator"] == {}
                    result = await client.plan(small_spec(), n_vms=5, iterations=30)
                    after = await client.stats()
                    # Two restarts of 30 iterations each, summed.
                    ev = after["evaluator"]
                    assert ev["incremental_evaluations"] == 60
                    assert ev == result["evaluator"]
                    # A cache hit adds nothing: no solver ran.
                    await client.plan(small_spec(), n_vms=5, iterations=30)
                    again = await client.stats()
                    assert again["evaluator"] == ev
            finally:
                await shutdown(server, task)

        run(scenario())


class TestOperationalOps:
    """The observability surface: slo / profile / debug_dump, the
    flight-recorder ring, and trace ids on error responses."""

    TIGHT_POLICY_KW = dict(
        fast_short_s=10.0, fast_long_s=60.0,
        slow_short_s=30.0, slow_long_s=120.0,
    )

    def _server(self, tmp_path=None, solver_fn=None, clock=None):
        from repro.obs.slo import BurnPolicy, Objective

        return PlannerServer(
            pool=SolverPool(processes=0, restarts=1),
            solver_fn=solver_fn,
            slo_objectives=[Objective("solve", ("plan",),
                                      kind="availability", target=0.99)],
            slo_policy=BurnPolicy(**self.TIGHT_POLICY_KW),
            slo_clock=clock,
            slo_eval_interval_s=0,  # evaluate on demand only
            dump_dir=str(tmp_path) if tmp_path is not None else None,
        )

    def test_slo_op_reports_ok_on_a_healthy_server(self):
        async def scenario():
            server = self._server()
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    await client.plan(small_spec(), n_vms=5, iterations=20)
                    report = await client.slo()
                    assert report["scope"] == "server"
                    assert report["state"] == "ok"
                    assert report["ops"]["solve"]["state"] == "ok"
                    stats = await client.stats()
                    assert stats["slo"] == {"solve": "ok"}
                    assert stats["flight_recorder"]["recorded"] >= 1
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_error_flood_pages_and_auto_writes_a_dump(self, tmp_path):
        """ok -> page on a unit clock, with the page transition
        dropping a postmortem bundle into dump_dir."""
        import os

        from repro.obs.flightrec import load_bundle

        async def failing_solver(request):
            raise WorkloadError("synthetic failure")

        clock = [0.0]

        async def scenario():
            server = self._server(tmp_path=tmp_path,
                                  solver_fn=failing_solver,
                                  clock=lambda: clock[0])
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    baseline = await client.slo()
                    assert baseline["ops"]["solve"]["state"] == "ok"
                    for seed in range(5):
                        with pytest.raises(WorkloadError) as err:
                            await client.plan(small_spec(), seed=seed,
                                              iterations=10)
                        # Error responses carry the request's trace id.
                        assert err.value.trace_id
                        assert len(err.value.trace_id) == 32
                    clock[0] = 61.0
                    report = await client.slo()
                    assert report["ops"]["solve"]["state"] == "page"
                    assert (await client.stats())["slo"]["solve"] == "page"

                    dumps = os.listdir(tmp_path)
                    assert len(dumps) == 1
                    assert "page-solve" in dumps[0]
                    bundle = load_bundle(str(tmp_path / dumps[0]))
                    assert bundle["meta"]["reason"] == "page-solve"
                    assert bundle["slo"]["ops"]["solve"]["state"] == "page"
                    # The ring in the bundle shows the failing requests.
                    assert any(r["ok"] is False and r["op"] == "plan"
                               for r in bundle["records"])
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_monitoring_ops_stay_out_of_the_flight_ring(self):
        async def scenario():
            server = self._server()
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    await client.ping()
                    await client.stats()
                    await client.metrics(format="json")
                    await client.slo()
                    await client.plan(small_spec(), n_vms=5, iterations=20)
                    ops = [r.op for r in server.recorder.records()]
                    assert ops == ["plan"]
                    # ...but they are still metered.
                    snap = server.metrics.snapshot()
                    metered = {
                        s["labels"]["op"]
                        for s in snap["cast_op_requests_total"]["values"]
                    }
                    assert {"ping", "stats", "metrics", "slo",
                            "plan"} <= metered
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_metrics_json_carries_exemplars(self):
        async def scenario():
            server = self._server()
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    await client.plan(small_spec(), n_vms=5, iterations=20)
                    payload = await client.metrics(format="json")
                    series = [
                        s for s in payload["metrics"]
                        ["cast_op_latency_seconds"]["values"]
                        if s["labels"]["op"] == "plan"
                    ]
                    assert series and series[0]["exemplars"]
                    assert series[0]["exemplars"][0]["trace_id"]
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_profile_op_round_trip_and_validation(self):
        async def scenario():
            server = self._server()
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    report = await client.profile(duration_s=0.05,
                                                  interval_s=0.005)
                    assert report["interval_s"] == 0.005
                    assert "by_subsystem" in report
                    with pytest.raises(ProtocolError, match="duration"):
                        await client.profile(duration_s=0.0)
                    with pytest.raises(ProtocolError, match="duration"):
                        await client.profile(duration_s=31.0)
                    with pytest.raises(ProtocolError, match="interval"):
                        await client.profile(duration_s=0.1,
                                             interval_s=0.0)
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_debug_dump_op_returns_a_loadable_bundle(self, tmp_path):
        from repro.obs.flightrec import dump_bundle, load_bundle

        async def scenario():
            server = self._server()
            task = await serving(server)
            try:
                async with PlannerClient(*server.address) as client:
                    await client.plan(small_spec(), n_vms=5, iterations=20)
                    bundle = await client.debug_dump(reason="unit")
                    assert bundle["meta"]["reason"] == "unit"
                    assert bundle["config"]["role"] == "server"
                    path = str(tmp_path / "bundle.jsonl")
                    dump_bundle(path, bundle)
                    loaded = load_bundle(path)
                    assert loaded["metrics"] == bundle["metrics"]
                    assert [r["trace_id"] for r in loaded["records"]] == \
                        [r["trace_id"] for r in bundle["records"]]
            finally:
                await shutdown(server, task)

        run(scenario())

    def test_sync_client_operational_facades(self):
        import threading

        async def host():
            server = self._server()
            task = await serving(server)
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["stopped"] = asyncio.Event()
            started.set()
            await box["stopped"].wait()
            await shutdown(server, task)

        box = {}
        started = threading.Event()
        thread = threading.Thread(
            target=lambda: asyncio.run(host()), daemon=True
        )
        thread.start()
        assert started.wait(timeout=10)
        client = SyncPlannerClient(*box["server"].address)
        try:
            assert client.slo()["scope"] == "server"
            assert client.profile(duration_s=0.02)["samples"] >= 0
            assert client.debug_dump()["meta"]["reason"] == "request"
        finally:
            box["loop"].call_soon_threadsafe(box["stopped"].set)
            thread.join(timeout=10)
