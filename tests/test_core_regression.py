"""The REG capacity-scaling regression (PCHIP spline)."""

import numpy as np
import pytest

from repro.core.regression import CapacitySpline, LinearCapacityModel, fit_runtime_model


class TestCapacitySpline:
    def test_passes_through_anchors(self):
        spline = CapacitySpline(points=((100.0, 950.0), (200.0, 460.0), (500.0, 200.0)))
        assert spline(100.0) == pytest.approx(950.0)
        assert spline(200.0) == pytest.approx(460.0)
        assert spline(500.0) == pytest.approx(200.0)

    def test_monotone_data_gives_monotone_interpolant(self):
        # PCHIP's defining property: no overshoot between anchors.
        spline = CapacitySpline(
            points=((100.0, 1000.0), (200.0, 500.0), (300.0, 400.0), (1000.0, 390.0))
        )
        xs = np.linspace(100.0, 1000.0, 200)
        ys = spline.evaluate(xs)
        assert np.all(np.diff(ys) <= 1e-9)

    def test_constant_extension_outside_range(self):
        spline = CapacitySpline(points=((100.0, 10.0), (200.0, 20.0)))
        assert spline(50.0) == 10.0
        assert spline(500.0) == 20.0

    def test_single_point_is_constant(self):
        spline = CapacitySpline(points=((100.0, 42.0),))
        assert spline(1.0) == 42.0
        assert spline(1e6) == 42.0

    def test_unsorted_points_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            CapacitySpline(points=((200.0, 1.0), (100.0, 2.0)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CapacitySpline(points=())


class TestLinearModel:
    def test_linear_between_anchors(self):
        model = LinearCapacityModel(points=((0.0, 0.0), (10.0, 100.0)))
        assert model(5.0) == pytest.approx(50.0)

    def test_vectorized_evaluation(self):
        model = LinearCapacityModel(points=((0.0, 0.0), (10.0, 100.0)))
        out = model.evaluate([2.0, 4.0])
        assert out == pytest.approx([20.0, 40.0])


class TestFitRuntimeModel:
    def test_fit_sorts_observations(self):
        model = fit_runtime_model([300.0, 100.0, 200.0], [30.0, 10.0, 20.0])
        assert model(100.0) == pytest.approx(10.0)
        assert model(300.0) == pytest.approx(30.0)

    def test_kind_selection(self):
        pchip = fit_runtime_model([1.0, 2.0], [1.0, 2.0], kind="pchip")
        linear = fit_runtime_model([1.0, 2.0], [1.0, 2.0], kind="linear")
        assert isinstance(pchip, CapacitySpline)
        assert isinstance(linear, LinearCapacityModel)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            fit_runtime_model([1.0], [1.0], kind="quartic")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            fit_runtime_model([1.0, 2.0], [1.0])

    def test_pchip_tracks_fig2_style_curve(self):
        """Fit on alternate points of a 1/x-like runtime curve and
        check held-out interpolation error stays small (the Fig. 2
        regression-quality claim)."""
        caps = np.arange(100.0, 1001.0, 100.0)
        runtimes = 80_000.0 / caps + 60.0
        model = fit_runtime_model(caps[::2], runtimes[::2], kind="pchip")
        held = caps[1::2]
        truth = 80_000.0 / held + 60.0
        pred = model.evaluate(held)
        err = np.abs(pred - truth) / truth
        assert err.max() < 0.15
        # ...and it should not be worse than plain linear interpolation.
        linear = fit_runtime_model(caps[::2], runtimes[::2], kind="linear")
        lin_err = np.abs(linear.evaluate(held) - truth) / truth
        assert err.mean() <= lin_err.mean() + 1e-9


class TestVectorizedEvaluation:
    """The array paths must bit-match their scalar twins — the
    incremental evaluator precomputes bandwidth tables through them and
    promises exact parity with scalar lookups."""

    POINTS = ((100.0, 950.0), (200.0, 460.0), (500.0, 200.0), (1000.0, 120.0))

    def test_evaluate_bit_matches_scalar_everywhere(self):
        spline = CapacitySpline(points=self.POINTS)
        # Interior grid points, the anchors themselves, and both
        # constant-extension sides.
        xs = np.concatenate([
            np.arange(50.0, 1200.0, 7.0),
            np.asarray([p[0] for p in self.POINTS]),
        ])
        vectorized = spline.evaluate(xs)
        for x, y in zip(xs, vectorized):
            assert spline(float(x)) == y

    def test_evaluate_single_point_spline(self):
        spline = CapacitySpline(points=((100.0, 42.0),))
        xs = np.asarray([1.0, 100.0, 1e6])
        assert np.all(spline.evaluate(xs) == 42.0)

    def test_capacity_profile_at_array_bit_matches_at(self):
        from repro.profiler.models import CapacityProfile, PhaseBandwidths

        profile = CapacityProfile(anchors=(
            (100.0, PhaseBandwidths(10.0, 5.0, 8.0)),
            (500.0, PhaseBandwidths(40.0, 22.0, 30.0)),
            (1000.0, PhaseBandwidths(55.0, 31.0, 44.0)),
        ))
        caps = np.arange(50.0, 1100.0, 13.0)
        m_arr, s_arr, r_arr = profile.at_array(caps)
        for i, c in enumerate(caps):
            bw = profile.at(float(c))
            assert bw.map_mb_s == max(1e-9, m_arr[i])
            assert bw.shuffle_mb_s == max(1e-9, s_arr[i])
            assert bw.reduce_mb_s == max(1e-9, r_arr[i])

    def test_capacity_profile_at_array_single_anchor(self):
        from repro.profiler.models import CapacityProfile, PhaseBandwidths

        profile = CapacityProfile(anchors=((375.0, PhaseBandwidths(9.0, 4.0, 6.0)),))
        m_arr, s_arr, r_arr = profile.at_array(np.asarray([1.0, 375.0, 9999.0]))
        assert np.all(m_arr == 9.0) and np.all(s_arr == 4.0) and np.all(r_arr == 6.0)
