"""Streaming planning sessions: warm-start delta-solves under churn.

Unit coverage for :mod:`repro.session` (config validation, drift
detection, the event log and trace format, warm/full/empty re-plan
modes, parity) plus the service-layer session ops end to end.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.errors import SessionError
from repro.session import (
    DriftDetector,
    PlanningSession,
    SessionConfig,
    SessionLog,
    load_trace,
    mix_distance,
    save_trace,
    workload_mix,
)
from repro.workloads.apps import GREP, KMEANS, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec
from repro.workloads.swim import synthesize_small_workload

ITERATIONS = 300


def _job(jid, app=GREP, gb=20.0):
    return JobSpec(job_id=jid, app=app, input_gb=gb, n_maps=20)


def _workload(n=8):
    return synthesize_small_workload(
        n_jobs=n, rng=np.random.default_rng(5), name="sess"
    )


@pytest.fixture()
def session(provider):
    return PlanningSession(
        _workload(), provider=provider, iterations=ITERATIONS, seed=7,
        config=SessionConfig(parity_check_every=1),
    )


class TestSessionConfig:
    def test_defaults_valid(self):
        SessionConfig()

    @pytest.mark.parametrize("bad", [
        {"warm_iterations_min": 0},
        {"warm_iterations_min": 8, "warm_iterations_max": 4},
        {"warm_iterations_per_change": 0},
        {"full_solve_every": 0},
        {"parity_check_every": -1},
    ])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(SessionError):
            SessionConfig(**bad)


class TestDriftDetector:
    def test_mix_is_input_share_per_app(self):
        jobs = [_job("a", GREP, 30.0), _job("b", SORT, 10.0)]
        assert workload_mix(jobs) == {"grep": 0.75, "sort": 0.25}
        assert workload_mix([]) == {}

    def test_distance_bounds(self):
        a = {"grep": 1.0}
        assert mix_distance(a, a) == 0.0
        assert mix_distance(a, {"sort": 1.0}) == 1.0

    def test_escalates_past_threshold_and_rearms(self):
        det = DriftDetector(threshold=0.5, window=4)
        det.rearm([_job("a", GREP)])
        dist, esc = det.observe([_job("a", GREP), _job("b", GREP)])
        assert (dist, esc) == (0.0, False)
        dist, esc = det.observe([_job("b", SORT)])
        assert dist == 1.0 and esc
        assert det.escalations == 1
        assert det.recent_max == 1.0
        det.rearm([_job("b", SORT)])
        assert det.recent_max == 0.0
        assert det.observe([_job("b", SORT)]) == (0.0, False)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(window=0)


class TestSessionLog:
    def test_append_assigns_sequence(self):
        log = SessionLog()
        log.append("open", {"jobs": ["a"]})
        log.append("add", {"job_ids": ["b"]})
        assert len(log) == 2
        assert [e.seq for e in log.events()] == [0, 1]
        assert log.to_dicts()[1] == {
            "seq": 1, "kind": "add", "payload": {"job_ids": ["b"]}
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(SessionError, match="kind"):
            SessionLog().append("explode", {})


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        events = [
            {"kind": "add", "jobs": [{"job_id": "a"}]},
            {"kind": "remove", "job_ids": ["a"]},
        ]
        save_trace(path, {"n_vms": 10}, events)
        trace = load_trace(path)
        assert trace["open"] == {"n_vms": 10}
        assert trace["events"] == events

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        path2 = str(tmp_path / "bad2.json")
        with open(path, "w") as fh:
            fh.write('{"version": 2, "kind": "session-trace", "events": []}')
        with pytest.raises(SessionError, match="v1"):
            load_trace(path)
        with open(path2, "w") as fh:
            fh.write(
                '{"version": 1, "kind": "session-trace",'
                ' "events": [{"kind": "add"}]}'
            )
        with pytest.raises(SessionError, match="jobs"):
            load_trace(path2)

    def test_save_validates_events(self, tmp_path):
        with pytest.raises(SessionError, match="remove"):
            save_trace(
                str(tmp_path / "t.json"), {}, [{"kind": "remove"}]
            )


class TestPlanningSession:
    def test_open_runs_a_full_solve(self, session):
        opened = session.last_result
        assert opened.kind == "open" and opened.mode == "full"
        assert session.plan is not None
        assert opened.parity_ok is True
        assert session.counters["full_replans"] == 1

    def test_deltas_stay_on_the_warm_path(self, session):
        added = session.add_jobs([_job("new-a"), _job("new-b")])
        assert added.mode == "warm" and not added.escalated
        assert added.resident_jobs == session.n_resident_jobs == 10
        assert added.parity_ok is True
        removed = session.remove_jobs(["new-a"])
        assert removed.mode == "warm"
        assert removed.parity_ok is True
        assert "new-a" not in session.resident_job_ids
        # The adaptive warm budget, not the full 300-iteration schedule.
        assert added.iterations <= session.config.warm_iterations_max

    def test_warm_plans_satisfy_reuse_coplacement(self, session):
        rs = ReuseSet(job_ids=frozenset({"rs-a", "rs-b"}),
                      lifetime=ReuseLifetime.SHORT)
        result = session.add_jobs([_job("rs-a"), _job("rs-b")], [rs])
        placements = result.plan.placements
        assert placements["rs-a"].tier is placements["rs-b"].tier

    def test_duplicate_and_unknown_jobs_rejected(self, session):
        resident = session.resident_job_ids[0]
        with pytest.raises(SessionError, match="resident"):
            session.add_jobs([session._jobs[resident]])
        with pytest.raises(SessionError, match="duplicate"):
            session.add_jobs([_job("x"), _job("x")])
        with pytest.raises(SessionError, match="not resident"):
            session.remove_jobs(["nope"])

    def test_drain_to_empty_and_refill(self, session):
        drained = session.remove_jobs(session.resident_job_ids)
        assert drained.mode == "empty"
        assert session.plan is None and session.n_resident_jobs == 0
        refilled = session.add_jobs([_job("fresh", KMEANS)])
        assert refilled.mode == "full"  # no incumbent to warm-start from
        assert session.plan is not None

    def test_full_solve_every_bounds_warm_streaks(self, provider):
        session = PlanningSession(
            _workload(), provider=provider, iterations=ITERATIONS, seed=7,
            config=SessionConfig(full_solve_every=2),
        )
        modes = [
            session.add_jobs([_job(f"j{i}")]).mode for i in range(3)
        ]
        assert modes == ["warm", "warm", "full"]

    def test_manual_replan_and_parity(self, session):
        warm = session.replan()
        assert warm.mode == "warm"
        full = session.replan(force_full=True)
        assert full.mode == "full"
        assert session.verify_parity()

    def test_catalog_swap_forces_full_solve(self, session):
        from repro.cloud.aws import aws_2015

        result = session.update_catalog(aws_2015())
        assert result.kind == "catalog" and result.mode == "full"
        assert session.verify_parity()

    def test_closed_session_rejects_deltas(self, session):
        summary = session.close()
        assert summary["counters"]["deltas"] == 1
        assert summary["plan"] is not None
        with pytest.raises(SessionError, match="closed"):
            session.add_jobs([_job("late")])
        with pytest.raises(SessionError, match="closed"):
            session.close()

    def test_stats_shape(self, session):
        session.add_jobs([_job("s1")])
        stats = session.stats()
        assert stats["resident_jobs"] == 9
        assert stats["deltas"] == 2
        assert stats["warm_replans"] == 1
        assert "evaluator" in stats

    def test_log_records_every_delta(self, session):
        session.add_jobs([_job("l1")])
        session.remove_jobs(["l1"])
        kinds = [e.kind for e in session.log.events()]
        assert kinds == ["open", "add", "remove"]


class TestServiceSessions:
    """session_open / session_delta / session_close through the daemon."""

    def test_session_lifecycle_over_the_wire(self):
        from repro.service import PlannerClient, PlannerServer
        from repro.workloads.io import job_to_dict, workload_to_dict

        async def scenario():
            server = PlannerServer(pool_processes=0)
            await server.start()
            serve_task = asyncio.create_task(server.serve_forever())
            try:
                host, port = server.address
                wl = _workload()
                async with PlannerClient(host, port) as client:
                    async with client.session(
                        workload_to_dict(wl), iterations=ITERATIONS,
                        config={"parity_check_every": 1},
                    ) as sess:
                        opened = sess.last
                        jobs = [
                            job_to_dict(
                                dataclasses.replace(j, job_id="n-" + j.job_id)
                            )
                            for j in _workload(2).jobs
                        ]
                        added = await sess.add_jobs(jobs)
                        removed = await sess.remove_jobs(
                            [wl.jobs[0].job_id]
                        )
                        stats = await client.stats()
                        metrics = await client.metrics(format="prometheus")
                    summary = sess.summary
                    after = await client.stats()
            finally:
                serve_task.cancel()
                try:
                    await serve_task
                except asyncio.CancelledError:
                    pass
                await server.stop()
            return opened, added, removed, stats, metrics, summary, after

        opened, added, removed, stats, metrics, summary, after = asyncio.run(
            scenario()
        )
        assert opened["mode"] == "full" and opened["resident_jobs"] == 8
        assert added["mode"] == "warm" and added["resident_jobs"] == 10
        assert added["parity_ok"] is True
        assert removed["resident_jobs"] == 9
        assert stats["sessions"]["open"] == 1
        assert after["sessions"]["open"] == 0
        assert summary["counters"]["deltas"] == 3
        assert summary["utility"] == removed["utility"]
        assert "cast_session_replan_seconds" in metrics["body"]
        assert 'cast_session_replans_total{mode="warm"}' in metrics["body"]
