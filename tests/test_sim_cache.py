"""Simulation memo cache: key sensitivity, LRU behaviour, bit-exact hits."""

from dataclasses import replace

import pytest

from repro.cloud.provider import CloudProvider, google_cloud_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.simulator.cache import (
    SimulationCache,
    cache_enabled,
    catalog_digest,
    job_sim_fingerprint,
    simulation_cache,
)
from repro.simulator.engine import resolve_sim_inputs, simulate_job
from repro.workloads.apps import PAGERANK, SORT
from repro.workloads.spec import JobSpec


@pytest.fixture()
def prov():
    return google_cloud_2015()


@pytest.fixture()
def cluster():
    return ClusterSpec(n_vms=5)


def make_job(job_id="j0", **overrides):
    kwargs = dict(job_id=job_id, app=SORT, input_gb=20.0, n_maps=10, n_reduces=4)
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def fp(job, prov, cluster, input_tier=Tier.PERS_SSD, caps=None,
       output_tier=Tier.PERS_SSD, stage_in=True, stage_out=True,
       placement_tiers=None):
    return job_sim_fingerprint(
        job, input_tier, cluster, prov,
        caps if caps is not None else {Tier.PERS_SSD: 100.0},
        output_tier, stage_in, stage_out, placement_tiers,
    )


class TestKeySensitivity:
    def test_identical_shape_different_id_share_a_key(self, prov, cluster):
        assert fp(make_job("a"), prov, cluster) == fp(make_job("b"), prov, cluster)

    @pytest.mark.parametrize("override", [
        {"n_maps": 11},
        {"n_reduces": 5},
        {"input_gb": 21.0},
        {"app": PAGERANK},
    ])
    def test_job_shape_changes_the_key(self, prov, cluster, override):
        assert fp(make_job(), prov, cluster) != fp(make_job(**override), prov, cluster)

    def test_simulator_inputs_change_the_key(self, prov, cluster):
        base = fp(make_job(), prov, cluster)
        assert fp(make_job(), prov, cluster, input_tier=Tier.PERS_HDD) != base
        assert fp(make_job(), prov, cluster, output_tier=Tier.OBJ_STORE) != base
        assert fp(make_job(), prov, cluster, stage_in=False) != base
        assert fp(make_job(), prov, cluster, stage_out=False) != base
        assert fp(make_job(), prov, cluster, caps={Tier.PERS_SSD: 200.0}) != base
        assert fp(make_job(), prov, cluster,
                  placement_tiers=[Tier.PERS_SSD, Tier.PERS_HDD]) != base
        assert fp(make_job(), prov, ClusterSpec(n_vms=6)) != base

    def test_channel_impl_is_part_of_the_key(self, prov, cluster, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
        virt = fp(make_job(), prov, cluster)
        monkeypatch.setenv("REPRO_SIM_REFERENCE", "1")
        assert fp(make_job(), prov, cluster) != virt


class TestCatalogDigest:
    def test_stable_across_equal_catalogs(self, prov):
        assert catalog_digest(prov) == catalog_digest(google_cloud_2015())

    def test_ignores_prices_and_name(self, prov):
        repriced = CloudProvider(
            name="someone-else",
            services=prov.services,
            prices=replace(prov.prices, vm_price_per_min=99.0),
            default_vm=prov.default_vm,
        )
        assert catalog_digest(repriced) == catalog_digest(prov)

    def test_sees_throughput_changes(self, prov):
        ssd = prov.services[Tier.PERS_SSD]
        faster = replace(
            ssd, throughput=replace(ssd.throughput, cap=ssd.throughput.cap * 2)
        )
        tweaked = CloudProvider(
            name=prov.name,
            services={**dict(prov.services), Tier.PERS_SSD: faster},
            prices=prov.prices,
            default_vm=prov.default_vm,
        )
        assert catalog_digest(tweaked) != catalog_digest(prov)


class TestLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationCache(capacity=0)

    def test_eviction_order_and_counters(self):
        c = SimulationCache(capacity=2)
        c.put("a", "ra")
        c.put("b", "rb")
        assert c.get("a") == "ra"   # refreshes a; b is now LRU
        c.put("c", "rc")            # evicts b
        assert c.get("b") is None
        assert c.get("a") == "ra"
        assert c.get("c") == "rc"
        assert c.stats() == {"hits": 3, "misses": 1, "evictions": 1, "size": 2}

    def test_clear_keeps_counters(self):
        c = SimulationCache(capacity=4)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0
        assert c.stats()["hits"] == 1


class TestSimulateJobIntegration:
    def test_hit_is_bit_exact_and_restamped(self, prov, cluster, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_REFERENCE", raising=False)
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        cache = simulation_cache()
        cache.clear()
        h0, m0 = cache.hits, cache.misses
        first = simulate_job(make_job("left"), Tier.PERS_SSD, cluster, prov)
        second = simulate_job(make_job("right"), Tier.PERS_SSD, cluster, prov)
        assert cache.misses == m0 + 1 and cache.hits == h0 + 1
        assert second.job_id == "right"
        assert second.total_s == first.total_s
        assert replace(second, job_id=first.job_id) == first

    def test_env_disables_cache(self, prov, cluster, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        assert not cache_enabled()
        cache = simulation_cache()
        before = cache.stats()
        uncached = simulate_job(make_job("u"), Tier.PERS_SSD, cluster, prov)
        assert cache.stats() == before
        # Same answer either way.
        monkeypatch.delenv("REPRO_SIM_CACHE", raising=False)
        cached = simulate_job(make_job("u"), Tier.PERS_SSD, cluster, prov)
        assert cached == uncached

    def test_resolve_normalizes_uniform_placement(self, prov, cluster):
        job = make_job()
        caps, placement, out = resolve_sim_inputs(job, Tier.PERS_SSD, cluster, prov)
        assert placement is None
        assert out is Tier.PERS_SSD
        assert caps[Tier.PERS_SSD] > 0
