"""Reactive dynamic-tiering prototype (§6 comparison point)."""

import pytest

from repro.cloud.storage import Tier
from repro.core.dynamic import ReactivePolicy, run_dynamic
from repro.errors import SolverError
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec


@pytest.fixture()
def reuse_workload():
    jobs = (
        JobSpec(job_id="a", app=GREP, input_gb=100.0, n_maps=100),
        JobSpec(job_id="b", app=GREP, input_gb=100.0, n_maps=100),
        JobSpec(job_id="c", app=SORT, input_gb=80.0, n_maps=80),
    )
    return WorkloadSpec(
        jobs=jobs,
        reuse_sets=(ReuseSet(job_ids=frozenset({"a", "b"}),
                             lifetime=ReuseLifetime.SHORT),),
    )


class TestPolicy:
    def test_defaults_valid(self):
        ReactivePolicy()

    def test_same_tiers_rejected(self):
        with pytest.raises(SolverError, match="differ"):
            ReactivePolicy(base_tier=Tier.OBJ_STORE, fast_tier=Tier.OBJ_STORE)

    def test_non_positive_window_rejected(self):
        with pytest.raises(SolverError, match="window"):
            ReactivePolicy(hot_window_s=0.0)


class TestRunDynamic:
    def test_reaccessed_dataset_gets_promoted(self, reuse_workload, provider,
                                              char_cluster):
        result = run_dynamic(reuse_workload, char_cluster, provider)
        assert result.promotions == 1
        # First access of the shared dataset runs cold, second runs hot.
        assert result.tier_of_run["a"] is Tier.OBJ_STORE
        assert result.tier_of_run["b"] is Tier.EPH_SSD

    def test_unshared_jobs_stay_on_base_tier(self, reuse_workload, provider,
                                             char_cluster):
        result = run_dynamic(reuse_workload, char_cluster, provider)
        assert result.tier_of_run["c"] is Tier.OBJ_STORE

    def test_no_reuse_means_no_promotions(self, provider, char_cluster):
        wl = WorkloadSpec(jobs=(
            JobSpec(job_id="x", app=GREP, input_gb=50.0),
            JobSpec(job_id="y", app=SORT, input_gb=50.0),
        ))
        result = run_dynamic(wl, char_cluster, provider)
        assert result.promotions == 0
        assert all(t is Tier.OBJ_STORE for t in result.tier_of_run.values())

    def test_promotion_pays_migration_time(self, reuse_workload, provider,
                                           char_cluster):
        dynamic = run_dynamic(reuse_workload, char_cluster, provider)
        # The hot re-access must be faster than the cold first access
        # (that's the whole point of promoting).
        assert dynamic.makespan_s > 0
        assert dynamic.utility > 0

    def test_cold_window_prevents_promotion(self, provider, char_cluster):
        # A tiny hot window: by the time job b starts, a's access is stale.
        wl = WorkloadSpec(
            jobs=(
                JobSpec(job_id="a", app=GREP, input_gb=100.0, n_maps=100),
                JobSpec(job_id="b", app=GREP, input_gb=100.0, n_maps=100),
            ),
            reuse_sets=(ReuseSet(job_ids=frozenset({"a", "b"})),),
        )
        policy = ReactivePolicy(hot_window_s=1.0)
        result = run_dynamic(wl, char_cluster, provider, policy)
        assert result.promotions == 0

    def test_fast_tier_bills_peak_footprint(self, reuse_workload, provider,
                                            char_cluster):
        with_promo = run_dynamic(reuse_workload, char_cluster, provider)
        no_promo = run_dynamic(
            reuse_workload, char_cluster, provider,
            ReactivePolicy(hot_window_s=1e-3),
        )
        # Promotion buys runtime but pays ephSSD dollars; the bills differ.
        assert with_promo.cost.total_usd != pytest.approx(
            no_promo.cost.total_usd, rel=1e-3
        )

    def test_deterministic(self, reuse_workload, provider, char_cluster):
        a = run_dynamic(reuse_workload, char_cluster, provider)
        b = run_dynamic(reuse_workload, char_cluster, provider)
        assert a.makespan_s == b.makespan_s
        assert a.cost.total_usd == b.cost.total_usd


class TestPhasedSessionReplanning:
    """Phase boundaries (§6's phased workloads) drive the session API.

    Within a phase the application mix is stable, so deltas stay on the
    warm path; crossing a boundary — one app class drains while another
    floods in, the :mod:`repro.core.dynamic` scenario — trips the drift
    detector and escalates to a full-budget re-solve whose plan is
    bit-identical to the batch CAST++ solve of that phase's workload.
    """

    ITERATIONS = 800
    SEED = 9

    @pytest.fixture(scope="class")
    def phased(self, provider):
        from repro.session import PlanningSession, SessionConfig

        phase_a = tuple(
            JobSpec(job_id=f"grep-{i}", app=GREP, input_gb=50.0, n_maps=50)
            for i in range(6)
        )
        phase_b = tuple(
            JobSpec(job_id=f"sort-{i}", app=SORT, input_gb=200.0, n_maps=200)
            for i in range(6)
        )
        session = PlanningSession(
            WorkloadSpec(jobs=phase_a),
            provider=provider,
            iterations=self.ITERATIONS,
            seed=self.SEED,
            config=SessionConfig(parity_check_every=1),
        )
        within = session.remove_jobs(["grep-5"])
        boundary = session.add_jobs(phase_b)
        return session, within, boundary

    def test_within_phase_delta_stays_warm(self, phased):
        _, within, _ = phased
        assert within.mode == "warm"
        assert not within.escalated
        assert within.drift_distance == 0.0  # mix is still 100% grep

    def test_phase_boundary_escalates_to_full_solve(self, phased):
        from repro.session.drift import mix_distance, workload_mix

        session, _, boundary = phased
        assert boundary.escalated
        assert boundary.mode == "full"
        assert session.counters["drift_escalations"] == 1
        # The reported distance is the total-variation gap between the
        # anchor mix (all grep, captured at the open full solve) and the
        # post-boundary resident mix.
        expected = mix_distance(
            {"grep": 1.0}, workload_mix(session.workload.jobs)
        )
        assert boundary.drift_distance == pytest.approx(expected)
        assert expected > session.config.drift_threshold

    def test_escalated_plan_is_bit_identical_to_batch_castpp(
        self, phased, provider
    ):
        from repro.core.annealing import AnnealingSchedule
        from repro.core.castpp import CastPlusPlus

        session, _, boundary = phased
        batch = CastPlusPlus(
            cluster_spec=session.cluster_spec,
            matrix=session.matrix,
            provider=provider,
            schedule=AnnealingSchedule(iter_max=self.ITERATIONS),
            seed=self.SEED,
        ).solve(session.workload)
        assert boundary.plan.to_dict() == batch.best_state.to_dict()
        assert boundary.utility == batch.best_utility

    def test_escalated_plan_passes_canonical_parity(self, phased):
        _, _, boundary = phased
        # parity_check_every=1: every re-plan in the fixture re-scored
        # its plan through the canonical evaluate_plan path and asserted
        # bit-equality (a violation raises inside the fixture).
        assert boundary.parity_ok is True


class TestStaticBeatsDynamic:
    def test_castpp_beats_reactive_on_fig7_workload(
        self, provider, eval_cluster, eval_matrix, facebook_workload
    ):
        """§6 quantified: the recency-only tierer loses to the static
        application-aware plan."""
        from repro.core.annealing import AnnealingSchedule
        from repro.core.castpp import CastPlusPlus
        from repro.experiments.measure import measure_plan

        dynamic = run_dynamic(facebook_workload, eval_cluster, provider)
        solver = CastPlusPlus(
            cluster_spec=eval_cluster, matrix=eval_matrix, provider=provider,
            schedule=AnnealingSchedule(iter_max=3000), seed=42,
        )
        plan = solver.solve(facebook_workload).best_state
        static = measure_plan(facebook_workload, plan, eval_cluster, provider,
                              reuse_engineered=True)
        assert static.utility > dynamic.utility
