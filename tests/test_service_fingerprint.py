"""Canonical request fingerprinting."""

import pytest

from repro.errors import WorkloadError
from repro.service.fingerprint import (
    canonical_json,
    canonical_spec,
    request_fingerprint,
    sweep_fingerprint,
)
from repro.workloads.io import workflow_to_dict, workload_to_dict
from repro.workloads.spec import JobSpec, ReuseLifetime, ReuseSet, WorkloadSpec
from repro.workloads.workflow import search_engine_workflow


@pytest.fixture()
def workload_dict():
    return workload_to_dict(
        WorkloadSpec(
            jobs=(
                JobSpec.make("a", "sort", 100.0, n_maps=64),
                JobSpec.make("b", "grep", 50.0),
            ),
            reuse_sets=(
                ReuseSet(job_ids=frozenset({"a", "b"}),
                         lifetime=ReuseLifetime.SHORT),
            ),
            name="fp-test",
        )
    )


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_and_sorted(self):
        assert canonical_json({"b": [1, 2], "a": "x"}) == '{"a":"x","b":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"u": float("nan")})


class TestCanonicalSpec:
    def test_normalizes_omitted_defaults(self, workload_dict):
        # n_accesses omitted -> the schema default materializes, so the
        # sparse and explicit forms fingerprint identically.
        sparse = workload_dict
        del sparse["reuse_sets"][0]["n_accesses"]
        explicit = canonical_spec(sparse)
        assert explicit["reuse_sets"][0]["n_accesses"] == 7
        assert canonical_spec(explicit) == explicit

    def test_workflow_specs_supported(self):
        wf = workflow_to_dict(search_engine_workflow())
        assert canonical_spec(wf)["kind"] == "workflow"

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError, match="kind"):
            canonical_spec({"version": 1, "kind": "cluster"})

    def test_invalid_spec_rejected(self, workload_dict):
        workload_dict["jobs"][0]["app"] = "nosuch"
        with pytest.raises(WorkloadError, match="unknown application"):
            canonical_spec(workload_dict)


class TestRequestFingerprint:
    def test_deterministic(self, workload_dict):
        a = request_fingerprint("plan", workload_dict, seed=7)
        b = request_fingerprint("plan", dict(workload_dict), seed=7)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_reuse_member_order_is_canonical(self, workload_dict):
        shuffled = workload_to_dict(
            WorkloadSpec(
                jobs=(
                    JobSpec.make("a", "sort", 100.0, n_maps=64),
                    JobSpec.make("b", "grep", 50.0),
                ),
                reuse_sets=(
                    ReuseSet(job_ids=frozenset({"b", "a"}),
                             lifetime=ReuseLifetime.SHORT),
                ),
                name="fp-test",
            )
        )
        assert request_fingerprint("plan", shuffled) == request_fingerprint(
            "plan", workload_dict
        )

    @pytest.mark.parametrize(
        "knob,value",
        [
            ("provider", "aws"),
            ("n_vms", 10),
            ("iterations", 100),
            ("seed", 43),
            ("use_castpp", False),
            ("restarts", 8),
        ],
    )
    def test_every_knob_changes_the_key(self, workload_dict, knob, value):
        base = request_fingerprint("plan", workload_dict)
        assert request_fingerprint("plan", workload_dict, **{knob: value}) != base

    def test_op_changes_the_key(self, workload_dict):
        assert request_fingerprint("plan", workload_dict) != request_fingerprint(
            "plan_workflow", workload_dict
        )

    def test_workload_content_changes_the_key(self, workload_dict):
        other = dict(workload_dict)
        other["jobs"] = [dict(j) for j in workload_dict["jobs"]]
        other["jobs"][0]["input_gb"] = 101.0
        assert request_fingerprint("plan", other) != request_fingerprint(
            "plan", workload_dict
        )


class TestSweepFingerprint:
    def test_stable_for_identical_sweeps(self, workload_dict):
        a = sweep_fingerprint([workload_dict], ["google", "aws"], reps=2)
        b = sweep_fingerprint([workload_dict], ["google", "aws"], reps=2)
        assert a == b

    def test_axis_order_is_part_of_the_key(self, workload_dict):
        # Catalog 0 is the warm-start reference: permuting the axis
        # changes the donor topology, so it must change the key.
        assert sweep_fingerprint(
            [workload_dict], ["google", "aws"]
        ) != sweep_fingerprint([workload_dict], ["aws", "google"])

    @pytest.mark.parametrize(
        "knob,value",
        [
            ("reps", 3),
            ("n_vms", 10),
            ("iterations", 100),
            ("seed", 43),
            ("use_castpp", False),
            ("warm", False),
        ],
    )
    def test_every_knob_changes_the_key(self, workload_dict, knob, value):
        base = sweep_fingerprint([workload_dict], ["google"])
        assert sweep_fingerprint(
            [workload_dict], ["google"], **{knob: value}
        ) != base
