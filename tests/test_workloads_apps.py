"""Application profiles (Table 2)."""

import pytest

from repro.workloads.apps import (
    APP_CATALOG,
    GREP,
    JOIN,
    KMEANS,
    PAGERANK,
    SORT,
    SPLIT_GB,
    AppProfile,
    characterization_table,
)


class TestTable2Flags:
    def test_sort_is_shuffle_intensive_only(self):
        assert SORT.io_intensive_shuffle
        assert not SORT.io_intensive_map
        assert not SORT.io_intensive_reduce
        assert not SORT.cpu_intensive

    def test_join_is_shuffle_and_reduce_intensive(self):
        assert JOIN.io_intensive_shuffle
        assert JOIN.io_intensive_reduce
        assert not JOIN.cpu_intensive

    def test_grep_is_map_intensive_only(self):
        assert GREP.io_intensive_map
        assert not GREP.io_intensive_shuffle
        assert not GREP.cpu_intensive

    def test_kmeans_is_cpu_intensive_only(self):
        assert KMEANS.cpu_intensive
        assert not any(
            (KMEANS.io_intensive_map, KMEANS.io_intensive_shuffle, KMEANS.io_intensive_reduce)
        )

    def test_pagerank_mirrors_kmeans(self):
        # §3.1.3: Pagerank "exhibits the same behavior as KMeans".
        assert PAGERANK.cpu_intensive
        assert PAGERANK.cpu_map_mb_s < 20.0

    def test_characterization_table_matches_paper_rows(self):
        rows = characterization_table()
        assert [r[0] for r in rows] == ["sort", "join", "grep", "kmeans"]
        by_name = {r[0]: r[1:] for r in rows}
        assert by_name["sort"] == (False, True, False, False)
        assert by_name["join"] == (False, True, True, False)
        assert by_name["grep"] == (True, False, False, False)
        assert by_name["kmeans"] == (False, False, False, True)


class TestDataDerivation:
    def test_sort_selectivity_one(self):
        # §4.2.1: Sort has a selectivity factor of one.
        assert SORT.intermediate_gb(100.0) == pytest.approx(100.0)
        assert SORT.output_gb(100.0) == pytest.approx(100.0)

    def test_footprint_is_eq3_sum(self):
        for app in APP_CATALOG.values():
            fp = app.footprint_gb(50.0)
            assert fp == pytest.approx(
                50.0 + app.intermediate_gb(50.0) + app.output_gb(50.0)
            )

    def test_grep_reduces_data_massively(self):
        assert GREP.intermediate_gb(100.0) < 1.0

    def test_join_output_smaller_than_intermediate(self):
        assert JOIN.output_gb(100.0) < JOIN.intermediate_gb(100.0)


class TestTaskCounts:
    def test_one_map_per_split(self):
        assert SORT.map_tasks(10 * SPLIT_GB) == 10

    def test_partial_split_rounds_up(self):
        assert SORT.map_tasks(10 * SPLIT_GB + 0.01) == 11

    def test_minimum_one_map(self):
        assert SORT.map_tasks(0.001) == 1

    def test_reduce_tasks_follow_fraction(self):
        assert SORT.reduce_tasks(100) == round(SORT.reduce_fraction * 100)
        assert GREP.reduce_tasks(100) >= 1

    def test_minimum_one_reduce(self):
        assert KMEANS.reduce_tasks(1) == 1


class TestValidation:
    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError):
            AppProfile(
                name="bad", map_selectivity=-1.0, reduce_selectivity=1.0,
                cpu_map_mb_s=1.0, cpu_shuffle_mb_s=1.0, cpu_reduce_mb_s=1.0,
                files_per_reduce_task=1, reduce_fraction=0.1,
                io_intensive_map=False, io_intensive_shuffle=False,
                io_intensive_reduce=False, cpu_intensive=False,
            )

    def test_zero_cpu_rate_rejected(self):
        with pytest.raises(ValueError):
            AppProfile(
                name="bad", map_selectivity=1.0, reduce_selectivity=1.0,
                cpu_map_mb_s=0.0, cpu_shuffle_mb_s=1.0, cpu_reduce_mb_s=1.0,
                files_per_reduce_task=1, reduce_fraction=0.1,
                io_intensive_map=False, io_intensive_shuffle=False,
                io_intensive_reduce=False, cpu_intensive=False,
            )

    def test_catalog_keys_match_names(self):
        for name, app in APP_CATALOG.items():
            assert app.name == name
