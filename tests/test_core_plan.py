"""Tiering plans: construction, aggregates, Eq. 3 validation."""

import pytest

from repro.cloud.storage import Tier
from repro.core.plan import Placement, TieringPlan
from repro.errors import PlanError
from repro.workloads.apps import GREP, SORT
from repro.workloads.spec import JobSpec, WorkloadSpec


@pytest.fixture()
def workload():
    return WorkloadSpec(
        jobs=(
            JobSpec(job_id="a", app=SORT, input_gb=100.0),
            JobSpec(job_id="b", app=GREP, input_gb=50.0),
        )
    )


class TestConstruction:
    def test_exact_fit_capacities_match_footprints(self, workload):
        plan = TieringPlan.exact_fit(
            workload, {"a": Tier.PERS_SSD, "b": Tier.OBJ_STORE}
        )
        assert plan.placement("a").capacity_gb == pytest.approx(
            workload.job("a").footprint_gb
        )
        assert plan.tier_of("b") is Tier.OBJ_STORE

    def test_uniform_places_everything_on_one_tier(self, workload):
        plan = TieringPlan.uniform(workload, Tier.PERS_HDD)
        assert all(p.tier is Tier.PERS_HDD for p in plan.placements.values())

    def test_with_placement_is_persistent_copy(self, workload):
        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        new = plan.with_placement("a", Placement(tier=Tier.EPH_SSD, capacity_gb=400.0))
        assert plan.tier_of("a") is Tier.PERS_SSD   # original untouched
        assert new.tier_of("a") is Tier.EPH_SSD
        assert new.tier_of("b") is Tier.PERS_SSD

    def test_with_placement_unknown_job(self, workload):
        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        with pytest.raises(PlanError):
            plan.with_placement("zz", Placement(tier=Tier.EPH_SSD, capacity_gb=1.0))

    def test_negative_capacity_rejected(self):
        with pytest.raises(PlanError):
            Placement(tier=Tier.PERS_SSD, capacity_gb=-1.0)


class TestAggregates:
    def test_aggregate_capacity_sums_by_tier(self, workload):
        plan = TieringPlan(
            placements={
                "a": Placement(tier=Tier.PERS_SSD, capacity_gb=300.0),
                "b": Placement(tier=Tier.PERS_SSD, capacity_gb=51.0),
            }
        )
        assert plan.aggregate_capacity_gb() == {Tier.PERS_SSD: 351.0}

    def test_billed_capacity_adds_eph_backing(self, workload, provider):
        plan = TieringPlan.exact_fit(
            workload, {"a": Tier.EPH_SSD, "b": Tier.EPH_SSD}
        )
        billed = plan.billed_capacity_gb(workload, provider)
        expected_backing = sum(
            j.input_gb + j.output_gb for j in workload.jobs
        )
        assert billed[Tier.OBJ_STORE] == pytest.approx(expected_backing)

    def test_billed_capacity_moves_objstore_shuffle_to_helper(self, workload, provider):
        plan = TieringPlan.exact_fit(
            workload, {"a": Tier.OBJ_STORE, "b": Tier.OBJ_STORE}
        )
        billed = plan.billed_capacity_gb(workload, provider)
        # Sort's shuffle data (100 GB) lands on the persSSD helper.
        assert billed[Tier.PERS_SSD] >= workload.job("a").intermediate_gb

    def test_billed_capacity_plain_for_block_tiers(self, workload, provider):
        plan = TieringPlan.exact_fit(
            workload, {"a": Tier.PERS_HDD, "b": Tier.PERS_HDD}
        )
        billed = plan.billed_capacity_gb(workload, provider)
        assert set(billed) == {Tier.PERS_HDD}


class TestValidation:
    def test_valid_plan_passes(self, workload, provider):
        TieringPlan.uniform(workload, Tier.PERS_SSD).validate(workload, provider)

    def test_missing_job_detected(self, workload, provider):
        plan = TieringPlan(
            placements={"a": Placement(tier=Tier.PERS_SSD, capacity_gb=301.0)}
        )
        with pytest.raises(PlanError, match="missing"):
            plan.validate(workload, provider)

    def test_extra_job_detected(self, workload, provider):
        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        plan = TieringPlan(
            placements={**plan.placements, "ghost": Placement(tier=Tier.PERS_SSD, capacity_gb=1.0)}
        )
        with pytest.raises(PlanError, match="extra"):
            plan.validate(workload, provider)

    def test_eq3_capacity_violation_detected(self, workload, provider):
        plan = TieringPlan(
            placements={
                "a": Placement(tier=Tier.PERS_SSD, capacity_gb=10.0),  # << footprint
                "b": Placement(tier=Tier.PERS_SSD, capacity_gb=51.0),
            }
        )
        with pytest.raises(PlanError, match="Eq. 3"):
            plan.validate(workload, provider)

    def test_placement_lookup_missing(self, workload):
        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        with pytest.raises(PlanError):
            plan.placement("nope")

    def test_job_ids(self, workload):
        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        assert set(plan.job_ids) == {"a", "b"}


class TestSerialization:
    def test_round_trip(self, workload):
        plan = TieringPlan.exact_fit(
            workload, {"a": Tier.EPH_SSD, "b": Tier.OBJ_STORE}
        )
        back = TieringPlan.from_dict(plan.to_dict())
        assert back.placements == plan.placements

    def test_dict_is_json_compatible(self, workload):
        import json

        plan = TieringPlan.uniform(workload, Tier.PERS_SSD)
        text = json.dumps(plan.to_dict())
        back = TieringPlan.from_dict(json.loads(text))
        assert back.tier_of("a") is Tier.PERS_SSD

    def test_bad_header_rejected(self):
        with pytest.raises(PlanError, match="tiering-plan"):
            TieringPlan.from_dict({"version": 2, "kind": "tiering-plan"})

    def test_bad_tier_rejected(self):
        with pytest.raises(PlanError, match="bad tier"):
            TieringPlan.from_dict({
                "version": 1, "kind": "tiering-plan",
                "placements": {"a": {"tier": "tape", "capacity_gb": 1.0}},
            })

    def test_bad_capacity_rejected(self):
        with pytest.raises(PlanError, match="capacity"):
            TieringPlan.from_dict({
                "version": 1, "kind": "tiering-plan",
                "placements": {"a": {"tier": "persSSD", "capacity_gb": "much"}},
            })

    def test_cli_plan_out_writes_loadable_file(self, tmp_path):
        import json

        from repro.cli import main

        out = tmp_path / "plan.json"
        assert main(["plan", "--workload", "small", "--vms", "5",
                     "--iterations", "50", "--out", str(out)]) == 0
        back = TieringPlan.from_dict(json.loads(out.read_text()))
        assert len(back.job_ids) == 16
