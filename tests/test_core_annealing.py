"""The generic simulated-annealing engine (Algorithm 2 skeleton)."""

import numpy as np
import pytest

from repro.core.annealing import AnnealingResult, AnnealingSchedule, simulated_annealing
from repro.errors import CastError, SolverError


def quadratic_utility(x: float) -> float:
    """Maximum at x = 3."""
    return -((x - 3.0) ** 2)


def step_neighbor(x: float, rng: np.random.Generator) -> float:
    return x + rng.normal(0.0, 0.5)


class TestSchedule:
    def test_defaults_valid(self):
        AnnealingSchedule()

    def test_bad_cooling_rejected(self):
        with pytest.raises(SolverError):
            AnnealingSchedule(cooling_rate=0.0)
        with pytest.raises(SolverError):
            AnnealingSchedule(cooling_rate=1.5)

    def test_bad_temperature_rejected(self):
        with pytest.raises(SolverError):
            AnnealingSchedule(temp_init=-1.0)

    def test_zero_iterations_rejected(self):
        with pytest.raises(SolverError):
            AnnealingSchedule(iter_max=0)


class TestSearch:
    def test_finds_quadratic_maximum(self):
        result = simulated_annealing(
            initial_state=-10.0,
            utility_fn=quadratic_utility,
            neighbor_fn=step_neighbor,
            schedule=AnnealingSchedule(iter_max=3000),
            rng=np.random.default_rng(7),
        )
        assert result.best_state == pytest.approx(3.0, abs=0.2)

    def test_best_never_worse_than_initial(self):
        for seed in range(5):
            result = simulated_annealing(
                initial_state=2.9,  # already near-optimal
                utility_fn=quadratic_utility,
                neighbor_fn=step_neighbor,
                schedule=AnnealingSchedule(iter_max=50),
                rng=np.random.default_rng(seed),
            )
            assert result.best_utility >= quadratic_utility(2.9)

    def test_deterministic_for_fixed_seed(self):
        def run():
            return simulated_annealing(
                -5.0, quadratic_utility, step_neighbor,
                AnnealingSchedule(iter_max=200), np.random.default_rng(3),
            )

        assert run().best_state == run().best_state

    def test_infeasible_neighbors_never_accepted(self):
        def utility(x):
            if x < 0:
                raise CastError("infeasible region")
            return -x

        result = simulated_annealing(
            5.0, utility, step_neighbor,
            AnnealingSchedule(iter_max=500), np.random.default_rng(0),
        )
        assert result.best_state >= 0.0

    def test_infeasible_initial_state_rejected(self):
        def utility(x):
            raise CastError("nothing is feasible")

        with pytest.raises(SolverError, match="initial"):
            simulated_annealing(
                0.0, utility, step_neighbor,
                AnnealingSchedule(iter_max=10), np.random.default_rng(0),
            )

    def test_trajectory_recorded_and_monotone(self):
        result = simulated_annealing(
            -10.0, quadratic_utility, step_neighbor,
            AnnealingSchedule(iter_max=300), np.random.default_rng(1),
            record_trajectory=True,
        )
        traj = np.asarray(result.trajectory)
        assert traj.size == 300
        assert np.all(np.diff(traj) >= 0)  # best-so-far never regresses

    def test_iteration_and_acceptance_counters(self):
        result = simulated_annealing(
            -10.0, quadratic_utility, step_neighbor,
            AnnealingSchedule(iter_max=100), np.random.default_rng(2),
        )
        assert result.iterations == 100
        assert 0 < result.accepted <= 100

    def test_high_temperature_accepts_more(self):
        def count_accepts(temp):
            return simulated_annealing(
                3.0, quadratic_utility, step_neighbor,
                AnnealingSchedule(iter_max=500, temp_init=temp, cooling_rate=1.0),
                np.random.default_rng(11),
            ).accepted

        assert count_accepts(10.0) > count_accepts(0.001)
