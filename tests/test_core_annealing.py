"""The generic simulated-annealing engine (Algorithm 2 skeleton)."""

import numpy as np
import pytest

from repro.core.annealing import AnnealingSchedule, simulated_annealing
from repro.errors import CastError, SolverError


def quadratic_utility(x: float) -> float:
    """Maximum at x = 3."""
    return -((x - 3.0) ** 2)


def step_neighbor(x: float, rng: np.random.Generator) -> float:
    return x + rng.normal(0.0, 0.5)


class TestSchedule:
    def test_defaults_valid(self):
        AnnealingSchedule()

    def test_bad_cooling_rejected(self):
        with pytest.raises(SolverError):
            AnnealingSchedule(cooling_rate=0.0)
        with pytest.raises(SolverError):
            AnnealingSchedule(cooling_rate=1.5)

    def test_bad_temperature_rejected(self):
        with pytest.raises(SolverError):
            AnnealingSchedule(temp_init=-1.0)

    def test_zero_iterations_rejected(self):
        with pytest.raises(SolverError):
            AnnealingSchedule(iter_max=0)


class TestSearch:
    def test_finds_quadratic_maximum(self):
        result = simulated_annealing(
            initial_state=-10.0,
            utility_fn=quadratic_utility,
            neighbor_fn=step_neighbor,
            schedule=AnnealingSchedule(iter_max=3000),
            rng=np.random.default_rng(7),
        )
        assert result.best_state == pytest.approx(3.0, abs=0.2)

    def test_best_never_worse_than_initial(self):
        for seed in range(5):
            result = simulated_annealing(
                initial_state=2.9,  # already near-optimal
                utility_fn=quadratic_utility,
                neighbor_fn=step_neighbor,
                schedule=AnnealingSchedule(iter_max=50),
                rng=np.random.default_rng(seed),
            )
            assert result.best_utility >= quadratic_utility(2.9)

    def test_deterministic_for_fixed_seed(self):
        def run():
            return simulated_annealing(
                -5.0, quadratic_utility, step_neighbor,
                AnnealingSchedule(iter_max=200), np.random.default_rng(3),
            )

        assert run().best_state == run().best_state

    def test_infeasible_neighbors_never_accepted(self):
        def utility(x):
            if x < 0:
                raise CastError("infeasible region")
            return -x

        result = simulated_annealing(
            5.0, utility, step_neighbor,
            AnnealingSchedule(iter_max=500), np.random.default_rng(0),
        )
        assert result.best_state >= 0.0

    def test_infeasible_initial_state_rejected(self):
        def utility(x):
            raise CastError("nothing is feasible")

        with pytest.raises(SolverError, match="initial"):
            simulated_annealing(
                0.0, utility, step_neighbor,
                AnnealingSchedule(iter_max=10), np.random.default_rng(0),
            )

    def test_trajectory_recorded_and_monotone(self):
        result = simulated_annealing(
            -10.0, quadratic_utility, step_neighbor,
            AnnealingSchedule(iter_max=300), np.random.default_rng(1),
            record_trajectory=True,
        )
        traj = np.asarray(result.trajectory)
        assert traj.size == 300
        assert np.all(np.diff(traj) >= 0)  # best-so-far never regresses

    def test_iteration_and_acceptance_counters(self):
        result = simulated_annealing(
            -10.0, quadratic_utility, step_neighbor,
            AnnealingSchedule(iter_max=100), np.random.default_rng(2),
        )
        assert result.iterations == 100
        assert 0 < result.accepted <= 100

    def test_high_temperature_accepts_more(self):
        def count_accepts(temp):
            return simulated_annealing(
                3.0, quadratic_utility, step_neighbor,
                AnnealingSchedule(iter_max=500, temp_init=temp, cooling_rate=1.0),
                np.random.default_rng(11),
            ).accepted

        assert count_accepts(10.0) > count_accepts(0.001)


class _CountingDelta:
    """Toy delta objective over an integer vector: maximize -sum(x^2).

    ``propose`` applies single-index moves against the cached base sum,
    so the test can verify the annealer routes move-carrying neighbors
    through the delta protocol and plain neighbors through full calls.
    """

    def __init__(self):
        self.full_calls = 0
        self.delta_calls = 0
        self.accepts = 0
        self._base = None
        self._base_u = None
        self._pending = None

    def __call__(self, state):
        self.full_calls += 1
        return -sum(v * v for v in state)

    def reset(self, state):
        self._base = tuple(state)
        self._base_u = self(state)
        return self._base_u

    def propose(self, state, move):
        idx, value = move
        old = self._base[idx]
        u = self._base_u - (value * value - old * old)
        self.delta_calls += 1
        self._pending = (tuple(state), u)
        return u

    def accept(self):
        self._base, self._base_u = self._pending
        self.accepts += 1


class TestDeltaProtocol:
    def _neighbor(self, state, rng):
        from repro.core.annealing import Neighbor

        idx = int(rng.integers(len(state)))
        value = int(rng.integers(-5, 6))
        nxt = list(state)
        nxt[idx] = value
        return Neighbor(tuple(nxt), (idx, value))

    def test_delta_path_used_and_matches_full(self):
        objective = _CountingDelta()
        result = simulated_annealing(
            (4, -3, 5, 2), objective, self._neighbor,
            AnnealingSchedule(iter_max=400), np.random.default_rng(3),
        )
        # One full evaluation (the reset); everything else was a delta.
        assert objective.full_calls == 1
        assert objective.delta_calls == 400
        assert objective.accepts == result.accepted
        # The optimum of -sum(x^2) is the zero vector.
        assert result.best_utility == 0
        assert result.best_state == (0, 0, 0, 0)

    def test_bare_states_fall_back_to_full_calls(self):
        objective = _CountingDelta()

        def bare_neighbor(state, rng):
            return self._neighbor(state, rng).state

        simulated_annealing(
            (4, -3, 5, 2), objective, bare_neighbor,
            AnnealingSchedule(iter_max=50), np.random.default_rng(3),
        )
        assert objective.delta_calls == 0
        assert objective.full_calls >= 50

    def test_delta_and_plain_runs_agree(self):
        objective = _CountingDelta()
        with_moves = simulated_annealing(
            (4, -3, 5, 2), objective, self._neighbor,
            AnnealingSchedule(iter_max=200), np.random.default_rng(9),
        )
        plain = simulated_annealing(
            (4, -3, 5, 2), lambda s: -sum(v * v for v in s),
            lambda s, rng: self._neighbor(s, rng).state,
            AnnealingSchedule(iter_max=200), np.random.default_rng(9),
        )
        assert with_moves.best_state == plain.best_state
        assert with_moves.best_utility == plain.best_utility
        assert with_moves.accepted == plain.accepted


class TestMetropolisOverflowGuard:
    def test_huge_utility_gap_does_not_warn_or_crash(self):
        # A worse neighbor by an astronomic margin: exp(delta/temp)
        # would underflow (and warn) without the exponent clamp.
        states = {0: 0.0, 1: -1e308}

        def utility(s):
            return states[s]

        def neighbor(s, rng):
            return 1 - s

        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = simulated_annealing(
                0, utility, neighbor,
                AnnealingSchedule(iter_max=50, temp_init=1e-6),
                np.random.default_rng(0),
            )
        assert result.best_state == 0
        assert result.best_utility == 0.0
