#!/usr/bin/env python
"""The paper's headline evaluation, end to end (Fig. 7 scenario).

Synthesizes the Table 4 Facebook workload (100 jobs, 15 % shared
inputs), plans it under all eight §5.1 configurations — four
single-service deployments, two greedy baselines, CAST and CAST++ —
then *deploys* each plan on the simulated 400-core cluster and compares
measured utility, cost, and capacity mix, exactly as the paper's Fig. 7
panels do.

Run (takes ~20 s, dominated by the two annealing searches):
    python examples/facebook_evaluation.py
"""

from __future__ import annotations

from repro.experiments.fig7 import format_fig7, run_fig7


def main() -> None:
    print("Planning + deploying 8 configurations of the 100-job "
          "Facebook workload on the 400-core simulated cluster...\n")
    result = run_fig7()
    print(format_fig7(result))

    print("\nheadline comparisons (measured tenant utility):")
    for base in ("ephSSD 100%", "persSSD 100%", "persHDD 100%",
                 "objStore 100%", "greedy exact-fit", "greedy over-prov"):
        delta = result.utility_improvement_pct("CAST++", base)
        print(f"  CAST++ vs {base:18s} {delta:+7.1f}%")
    print(f"  CAST++ vs {'CAST':18s} "
          f"{result.utility_improvement_pct('CAST++', 'CAST'):+7.1f}%")
    print("\n(paper: CAST beats non-tiered configs by 33.7-178%, "
          "CAST++ adds 14.4%, and beats greedy by 52.9-211.8%)")


if __name__ == "__main__":
    main()
