#!/usr/bin/env python
"""Cross-provider planning: the same workload on Google Cloud vs AWS.

CAST's method is provider-agnostic — the planner consumes a storage
catalog, a price book and a profiled model matrix, nothing else.  This
example profiles and plans the same 16-job workload against both the
paper's Google Cloud catalog and an era-plausible AWS-style catalog
(striped EBS volumes, S3's higher request latencies) and compares the
resulting placements and economics.

Run:
    python examples/multicloud.py
"""

from __future__ import annotations

from collections import Counter

from repro.cloud.aws import aws_2015
from repro.cloud.provider import google_cloud_2015
from repro.cloud.vm import ClusterSpec
from repro.core.annealing import AnnealingSchedule
from repro.core.castpp import CastPlusPlus
from repro.profiler.profiler import build_model_matrix
from repro.workloads.swim import synthesize_small_workload


def main() -> None:
    workload = synthesize_small_workload()
    print(f"workload: {workload.n_jobs} jobs, "
          f"{workload.total_footprint_gb:.0f} GB footprint\n")

    for provider in (google_cloud_2015(), aws_2015()):
        cluster = ClusterSpec(n_vms=10, vm=provider.default_vm)
        matrix = build_model_matrix(provider=provider, cluster_spec=cluster)
        solver = CastPlusPlus(
            cluster_spec=cluster, matrix=matrix, provider=provider,
            schedule=AnnealingSchedule(iter_max=1500), seed=42,
        )
        plan = solver.solve(workload).best_state
        ev = solver.evaluate(workload, plan, reuse_aware=True)

        mix = Counter(p.tier.value for p in plan.placements.values())
        print(f"=== {provider.name} ({provider.default_vm.name}) ===")
        print(f"  placements : "
              + ", ".join(f"{t}: {n}" for t, n in sorted(mix.items())))
        print(f"  predicted  : {ev.makespan_min:.1f} min, "
              f"${ev.cost.total_usd:.2f} "
              f"(vm ${ev.cost.vm_usd:.2f} + storage ${ev.cost.storage_usd:.2f})")
        print(f"  utility    : {ev.utility:.3e}\n")

    print("The catalogs differ (slower S3, cheaper gp2, pricier local "
          "SSD),\nso the solver lands different mixes — no code changed "
          "between runs.")


if __name__ == "__main__":
    main()
