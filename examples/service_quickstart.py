#!/usr/bin/env python
"""Quickstart for the planner service: serve, submit, hit the cache.

Spins the planner daemon up *in-process* (a background thread running
its asyncio loop — no sockets to pre-arrange, the OS picks a port),
then drives it like a tenant would:

1. submit the small synthetic workload → a multi-start solve on the pool;
2. submit it again → answered from the plan cache, no solver work;
3. submit two identical requests concurrently → single-flight dedup
   collapses them into one solve;
4. read the ``stats`` op and show the cache/dedup counters.

Run:
    python examples/service_quickstart.py
"""

from __future__ import annotations

import asyncio
import threading

from repro.service import PlannerClient, PlannerServer, SolverPool, SyncPlannerClient
from repro.workloads import synthesize_small_workload
from repro.workloads.io import workload_to_dict


def start_server_in_thread():
    """Run a PlannerServer on a daemon thread; return (server, stopper)."""
    started = threading.Event()
    box = {}

    def body() -> None:
        async def serve() -> None:
            # Thread-mode pool: no fork needed for a demo this small.
            server = PlannerServer(pool=SolverPool(processes=0, restarts=2))
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            started.set()
            await box["stop"].wait()
            await server.stop()

        asyncio.run(serve())

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    started.wait(timeout=30)

    def stopper() -> None:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=30)

    return box["server"], stopper


def main() -> None:
    server, stop_server = start_server_in_thread()
    host, port = server.address
    print(f"planner daemon up on {host}:{port} "
          f"(equivalent CLI: cast-plan serve)\n")

    workload = synthesize_small_workload()
    spec = workload_to_dict(workload)
    client = SyncPlannerClient(host, port)
    knobs = dict(n_vms=10, iterations=600, seed=42)

    result = client.plan(spec, **knobs)
    print(f"submit #1: solved in {result['solve_seconds']:.2f}s — "
          f"{result['restarts']} restarts, best was #{result['best_restart']}, "
          f"utility {result['utility']:.3e}")

    result2 = client.plan(spec, **knobs)
    print(f"submit #2: cached={result2['cached']} — identical plan, "
          f"zero solver work")
    assert result2["plan"] == result["plan"]

    async def concurrent_pair() -> None:
        async with PlannerClient(host, port) as c1, PlannerClient(host, port) as c2:
            await asyncio.gather(
                c1.plan(spec, seed=7, **{k: v for k, v in knobs.items() if k != "seed"}),
                c2.plan(spec, seed=7, **{k: v for k, v in knobs.items() if k != "seed"}),
            )

    asyncio.run(concurrent_pair())
    print("submit #3+#4: concurrent identical requests "
          "(single-flight: one solve, both answered)")

    stats = client.stats()
    cache, counters = stats["cache"], stats["counters"]
    print(f"\nserver stats after 4 submissions:")
    print(f"  solves run        : {counters['solves_ok']}")
    print(f"  cache hits/misses : {cache['hits']}/{cache['misses']}")
    print(f"  single-flight join: {counters['dedup_joined']}")
    print(f"  pool              : {stats['pool']['processes']} workers, "
          f"{stats['pool']['tasks_completed']} restart tasks")

    tiers = sorted(
        {p["tier"] for p in result["plan"]["placements"].values()}
    )
    print(f"\nplan places {len(result['plan']['placements'])} jobs "
          f"across tiers: {', '.join(tiers)}")

    stop_server()
    print("daemon drained and stopped")


if __name__ == "__main__":
    main()
