#!/usr/bin/env python
"""Quickstart: plan storage tiering for a small analytics workload.

Builds a 16-job mixed workload (~2 TB), runs the full CAST++ pipeline —
offline profiling on the simulated cluster, simulated-annealing tiering
search, reuse-aware evaluation — and prints the per-job placement plan
with the predicted runtime, dollar cost, and tenant utility.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import plan_workload
from repro.workloads import synthesize_small_workload


def main() -> None:
    workload = synthesize_small_workload()
    print(f"workload: {workload.name} — {workload.n_jobs} jobs, "
          f"{workload.total_input_gb:.0f} GB input, "
          f"{workload.total_footprint_gb:.0f} GB footprint\n")

    outcome = plan_workload(workload, n_vms=10, iterations=1500, seed=42)

    print(f"{'job':10s} {'app':8s} {'input(GB)':>10s} {'tier':>9s} {'capacity(GB)':>13s}")
    for job in workload.jobs:
        p = outcome.plan.placement(job.job_id)
        print(f"{job.job_id:10s} {job.app.name:8s} {job.input_gb:10.1f} "
              f"{p.tier.value:>9s} {p.capacity_gb:13.1f}")

    ev = outcome.evaluation
    print(f"\npredicted makespan : {ev.makespan_min:8.1f} min")
    print(f"predicted cost     : ${ev.cost.total_usd:7.2f} "
          f"(VM ${ev.cost.vm_usd:.2f} + storage ${ev.cost.storage_usd:.2f})")
    print(f"tenant utility     : {ev.utility:.3e}  (Eq. 2: (1/T) / $)")

    print("\naggregate capacity per service:")
    for tier, gb in sorted(ev.capacity_gb.items(), key=lambda kv: kv[0].value):
        if gb > 0.5:
            print(f"  {tier.value:10s} {gb:10.1f} GB")


if __name__ == "__main__":
    main()
