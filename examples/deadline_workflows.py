#!/usr/bin/env python
"""Deadline-bound workflow planning with CAST++ (Fig. 4 / Fig. 9 scenario).

Defines a custom ETL workflow as a job DAG with a tenant deadline, asks
CAST++ for the cheapest tiering plan that meets it (Eq. 8–10), then
deploys the plan on the simulated cluster to verify the deadline and
contrasts it with naive single-service deployments.

Run:
    python examples/deadline_workflows.py
"""

from __future__ import annotations

from repro.cloud.provider import google_cloud_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.core.annealing import AnnealingSchedule
from repro.core.castpp import CastPlusPlus, evaluate_workflow_plan
from repro.core.plan import TieringPlan
from repro.profiler.profiler import build_model_matrix
from repro.simulator.engine import simulate_workflow
from repro.workloads.spec import JobSpec
from repro.workloads.workflow import Workflow


def build_etl_workflow() -> Workflow:
    """A nightly ETL pipeline: ingest-scan → {clean-sort, score} → join."""
    jobs = (
        JobSpec.make("ingest-scan", "grep", 180.0),
        JobSpec.make("clean-sort", "sort", 90.0),
        JobSpec.make("score", "pagerank", 25.0),
        JobSpec.make("publish-join", "join", 80.0),
    )
    return Workflow(
        name="nightly-etl",
        jobs=jobs,
        edges=(
            ("ingest-scan", "clean-sort"),
            ("ingest-scan", "score"),
            ("clean-sort", "publish-join"),
            ("score", "publish-join"),
        ),
        deadline_s=12 * 60.0,  # publish within 12 minutes
    )


def main() -> None:
    provider = google_cloud_2015()
    cluster = ClusterSpec(n_vms=10)
    matrix = build_model_matrix(provider=provider, cluster_spec=cluster)
    workflow = build_etl_workflow()
    caps = {Tier.EPH_SSD: 375.0, Tier.PERS_SSD: 500.0, Tier.PERS_HDD: 500.0}

    print(f"workflow {workflow.name!r}: {workflow.n_jobs} jobs, "
          f"deadline {workflow.deadline_s / 60:.0f} min\n")

    solver = CastPlusPlus(
        cluster_spec=cluster, matrix=matrix, provider=provider,
        schedule=AnnealingSchedule(iter_max=1500), seed=7,
    )
    plan = solver.solve_workflow(workflow).best_state

    print("CAST++ placement (cheapest plan meeting the deadline):")
    for job_id in workflow.topological_order():
        print(f"  {job_id:14s} -> {plan.tier_of(job_id).value}")

    predicted = evaluate_workflow_plan(workflow, plan, cluster, matrix, provider)
    print(f"\npredicted: {predicted.makespan_s / 60:.1f} min "
          f"(transfers {predicted.transfer_s:.0f} s), "
          f"${predicted.cost.total_usd:.2f}, "
          f"deadline {'MET' if predicted.meets_deadline else 'MISSED'}")

    tier_of = {j.job_id: plan.tier_of(j.job_id) for j in workflow.jobs}
    sim = simulate_workflow(workflow, tier_of, cluster, provider,
                            per_vm_capacity_gb=caps)
    print(f"deployed : {sim.makespan_s / 60:.1f} min "
          f"(deadline {'MET' if sim.makespan_s <= workflow.deadline_s else 'MISSED'})")

    print("\nnaive single-service deployments for comparison:")
    for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE):
        uniform = {j.job_id: tier for j in workflow.jobs}
        res = simulate_workflow(workflow, uniform, cluster, provider,
                                per_vm_capacity_gb=caps)
        verdict = "MET" if res.makespan_s <= workflow.deadline_s else "MISSED"
        print(f"  {tier.value:10s} {res.makespan_s / 60:6.1f} min  deadline {verdict}")


if __name__ == "__main__":
    main()
