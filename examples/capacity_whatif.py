#!/usr/bin/env python
"""Capacity what-if analysis with the profiled performance models.

Cloud block volumes get faster as they get bigger (Table 1), so "how
much persSSD should I buy?" is a real planning question.  This example
sweeps provisioned per-VM persSSD capacity for two I/O-bound jobs,
compares the simulator's ground truth against the Eq. 1 + REG spline
prediction (the Fig. 2 / Fig. 8 methodology), and reports the
sweet-spot capacity where marginal dollars stop buying runtime.

Run:
    python examples/capacity_whatif.py
"""

from __future__ import annotations

from repro.cloud.provider import google_cloud_2015
from repro.cloud.storage import Tier
from repro.cloud.vm import ClusterSpec
from repro.core.cost import deployment_cost
from repro.core.perf_model import estimate_job
from repro.profiler.profiler import build_model_matrix
from repro.simulator.engine import simulate_job
from repro.workloads.spec import JobSpec


def main() -> None:
    provider = google_cloud_2015()
    cluster = ClusterSpec(n_vms=10)
    matrix = build_model_matrix(provider=provider, cluster_spec=cluster)

    for app_name, gb in (("sort", 100.0), ("grep", 300.0)):
        job = JobSpec.make(f"whatif-{app_name}", app_name, gb)
        print(f"\n=== {app_name} over {gb:.0f} GB on 10 VMs "
              f"(network-attached persSSD) ===")
        print(f"{'cap/VM(GB)':>11s} {'obs(s)':>8s} {'pred(s)':>8s} "
              f"{'cost($)':>8s} {'$ x min':>8s}")
        best_cap, best_score = None, float("inf")
        for cap in (100.0, 200.0, 300.0, 400.0, 500.0, 700.0, 1000.0):
            obs = simulate_job(job, Tier.PERS_SSD, cluster, provider,
                               per_vm_capacity_gb={Tier.PERS_SSD: cap}).total_s
            pred = estimate_job(job, Tier.PERS_SSD, cap, cluster,
                                matrix, provider).total_s
            cost = deployment_cost(
                provider, cluster, obs, {Tier.PERS_SSD: cap * cluster.n_vms}
            ).total_usd
            # A simple cost-delay product as the sweet-spot criterion.
            score = cost * (obs / 60.0)
            marker = ""
            if score < best_score:
                best_cap, best_score = cap, score
                marker = "  <-"
            print(f"{cap:11.0f} {obs:8.1f} {pred:8.1f} {cost:8.2f} "
                  f"{score:8.2f}{marker}")
        print(f"sweet spot: {best_cap:.0f} GB/VM "
              f"(minimizes cost x runtime; more capacity buys "
              f"little once the volume saturates)")


if __name__ == "__main__":
    main()
