"""Workload-mix drift detection for streaming planning sessions.

A warm-started re-plan refines the incumbent plan with a tiny annealing
budget, which is exactly right while the resident workload looks like
the one the incumbent was solved for.  When the *mix* shifts — a phase
boundary in the sense of :mod:`repro.core.dynamic`, where one
application class drains and another floods in — the incumbent is a
poor starting point and a short refinement can be trapped in its basin.

The detector keeps a **fingerprint** of the resident workload: each
application's share of total input bytes.  After every delta it
compares the current fingerprint against the *anchor* fingerprint
captured at the last full solve, using total-variation distance
(half the L1 distance between the two distributions, in ``[0, 1]``).
Crossing :attr:`DriftDetector.threshold` escalates the next re-plan
from warm to full; a sliding window of recent distances is kept for
reporting (``recent_max`` shows fast drift even when the latest delta
happens to swing back).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Tuple

__all__ = ["workload_mix", "mix_distance", "DriftDetector"]


def workload_mix(jobs: Iterable) -> Dict[str, float]:
    """Fingerprint: normalized input-GB share per application class."""
    totals: Dict[str, float] = {}
    total = 0.0
    for job in jobs:
        gb = job.input_gb
        totals[job.app.name] = totals.get(job.app.name, 0.0) + gb
        total += gb
    if total <= 0.0:
        return {}
    return {app: gb / total for app, gb in totals.items()}


def mix_distance(a: Dict[str, float], b: Dict[str, float]) -> float:
    """Total-variation distance between two mixes, in ``[0, 1]``.

    0 means identical application mixes; 1 means disjoint ones (a full
    phase swap à la the fig. 8 phased workloads).
    """
    dist = 0.0
    for app in set(a) | set(b):
        dist += abs(a.get(app, 0.0) - b.get(app, 0.0))
    return 0.5 * dist


class DriftDetector:
    """Escalates warm re-plans to full re-solves when the mix drifts.

    ``observe`` is called with the resident jobs after each delta and
    returns ``(distance, escalate)``; ``rearm`` re-anchors after a full
    solve so gradual drift is measured against the plan actually in
    force, not against session open.
    """

    def __init__(self, threshold: float = 0.25, window: int = 8) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"drift threshold must be in (0, 1]: {threshold}")
        if window < 1:
            raise ValueError(f"drift window must be >= 1: {window}")
        self.threshold = threshold
        self.window = window
        self._anchor: Dict[str, float] = {}
        self._recent: Deque[float] = deque(maxlen=window)
        self.escalations = 0

    def rearm(self, jobs: Iterable) -> None:
        """Re-anchor on the mix the incumbent plan was solved for."""
        self._anchor = workload_mix(jobs)
        self._recent.clear()

    def observe(self, jobs: Iterable) -> Tuple[float, bool]:
        """Distance of the current mix from the anchor, and the verdict."""
        dist = mix_distance(self._anchor, workload_mix(jobs))
        self._recent.append(dist)
        escalate = dist > self.threshold
        if escalate:
            self.escalations += 1
        return dist, escalate

    @property
    def recent_max(self) -> float:
        """Largest distance seen in the sliding window (0 when empty)."""
        return max(self._recent) if self._recent else 0.0
