"""Streaming planning sessions (warm-start delta-solves).

See :mod:`repro.session.session` for the model: a
:class:`PlanningSession` holds a churning resident workload and keeps
its tiering plan fresh with millisecond warm re-plans, escalating to
full re-solves on workload drift.
"""

from .drift import DriftDetector, mix_distance, workload_mix
from .log import SessionEvent, SessionLog, load_trace, save_trace
from .session import (
    SESSION_REPLAN_BUCKETS,
    PlanningSession,
    ReplanResult,
    SessionConfig,
)

__all__ = [
    "PlanningSession",
    "ReplanResult",
    "SessionConfig",
    "SESSION_REPLAN_BUCKETS",
    "DriftDetector",
    "workload_mix",
    "mix_distance",
    "SessionEvent",
    "SessionLog",
    "load_trace",
    "save_trace",
]
