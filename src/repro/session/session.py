"""Streaming planning sessions: warm-start delta-solves under churn.

A :class:`PlanningSession` holds a *resident* workload and its current
best tiering plan.  Jobs arrive (:meth:`PlanningSession.add_jobs`) and
depart (:meth:`PlanningSession.remove_jobs`) continuously; each delta
triggers an incremental re-plan instead of a batch solve:

* **Warm start.**  The annealer is seeded with the incumbent plan —
  departed jobs dropped, arrivals placed by the Table 2 heuristic (or
  co-placed with surviving reuse-set members, honoring Constraint 7) —
  and runs a short, adaptive budget (a few iterations per changed job)
  at low temperature.  Successive optimal plans are near-neighbors, so
  this recovers batch-solve quality at a tiny fraction of the work.
* **Delta-scoped evaluation.**  One persistent
  :class:`~repro.core.evaluator.PlanEvaluator` survives across deltas
  via :meth:`~repro.core.evaluator.PlanEvaluator.update_workload`: its
  bandwidth-identity memo and per-job runtime caches stay hot, so the
  warm re-plan's baseline evaluation re-scores mostly cache hits and
  each annealing step re-scores only the tiers the move touched.
  Parity is inherited, not approximated — every reported utility is
  bit-identical to a cold :func:`~repro.core.utility.evaluate_plan`
  re-score of the same plan (:meth:`PlanningSession.verify_parity`).
* **Drift escalation.**  A :class:`~repro.session.drift.DriftDetector`
  fingerprints the resident application mix; when it drifts past a
  threshold from the mix the incumbent was solved for (a phase boundary
  in the :mod:`repro.core.dynamic` sense), or every
  ``full_solve_every`` warm re-plans as a background quality bound, the
  session escalates to a full-budget cold re-solve — identical, by
  construction, to the batch solve of the resident workload.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..cloud import ClusterSpec, CloudProvider, Tier, google_cloud_2015
from ..core import AnnealingSchedule, CastPlusPlus, CastSolver
from ..core.evaluator import PlanEvaluator, PlanMove
from ..core.plan import Placement, TieringPlan
from ..core.utility import evaluate_plan
from ..errors import SessionError
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.tracing import span
from ..profiler import build_model_matrix
from ..workloads.spec import JobSpec, ReuseSet, WorkloadSpec
from .drift import DriftDetector
from .log import SessionLog

__all__ = ["SessionConfig", "ReplanResult", "PlanningSession",
           "SESSION_REPLAN_BUCKETS"]

#: Finer-than-default histogram buckets: warm re-plans land in
#: single-digit milliseconds, below the default 1 ms floor.
SESSION_REPLAN_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


@dataclass(frozen=True)
class SessionConfig:
    """Warm-start and escalation policy knobs.

    Attributes
    ----------
    warm_iterations_per_change / warm_iterations_min / warm_iterations_max:
        Adaptive warm budget: iterations scale with the number of jobs
        the delta touched, clamped to ``[min, max]``.
    warm_temp_init / warm_cooling_rate:
        Warm re-plans refine a near-optimal incumbent, so they run cool
        (mostly-greedy) and cool fast.
    drift_threshold / drift_window:
        Mix-fingerprint escalation policy (see
        :class:`~repro.session.drift.DriftDetector`).
    full_solve_every:
        Background quality bound: force a full-budget re-solve after
        this many consecutive warm re-plans even without drift.
    parity_check_every:
        Every Nth re-plan, re-score the returned plan through the
        canonical :func:`~repro.core.utility.evaluate_plan` path and
        require bit-equality (0 disables; the check runs outside the
        re-plan latency measurement).
    """

    warm_iterations_per_change: int = 6
    warm_iterations_min: int = 4
    warm_iterations_max: int = 96
    warm_temp_init: float = 0.02
    warm_cooling_rate: float = 0.9
    drift_threshold: float = 0.25
    drift_window: int = 8
    full_solve_every: int = 64
    parity_check_every: int = 0

    def __post_init__(self) -> None:
        if self.warm_iterations_min < 1:
            raise SessionError("warm_iterations_min must be >= 1")
        if self.warm_iterations_max < self.warm_iterations_min:
            raise SessionError("warm_iterations_max < warm_iterations_min")
        if self.warm_iterations_per_change < 1:
            raise SessionError("warm_iterations_per_change must be >= 1")
        if self.full_solve_every < 1:
            raise SessionError("full_solve_every must be >= 1")
        if self.parity_check_every < 0:
            raise SessionError("parity_check_every must be >= 0")


@dataclass(frozen=True)
class ReplanResult:
    """One delta's outcome: the new incumbent plan and how it was won."""

    seq: int
    kind: str                      # "open" | "add" | "remove" | ...
    mode: str                      # "warm" | "full" | "empty"
    plan: Optional[TieringPlan]
    utility: float
    makespan_s: float
    cost_total_usd: float
    replan_s: float
    iterations: int
    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    resident_jobs: int
    drift_distance: float
    escalated: bool
    parity_ok: Optional[bool]      # None when the check did not run

    def to_dict(self, include_plan: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "mode": self.mode,
            "utility": self.utility,
            "makespan_s": self.makespan_s,
            "cost_total_usd": self.cost_total_usd,
            "replan_s": self.replan_s,
            "iterations": self.iterations,
            "added": list(self.added),
            "removed": list(self.removed),
            "resident_jobs": self.resident_jobs,
            "drift_distance": self.drift_distance,
            "escalated": self.escalated,
            "parity_ok": self.parity_ok,
        }
        if include_plan:
            out["plan"] = self.plan.to_dict() if self.plan is not None else None
        return out


class PlanningSession:
    """A long-lived planning context over a churning workload.

    Not thread-safe: the planner service serializes deltas per session.
    """

    def __init__(
        self,
        workload: Optional[WorkloadSpec] = None,
        *,
        provider: Optional[CloudProvider] = None,
        n_vms: int = 25,
        use_castpp: bool = True,
        iterations: int = 3000,
        seed: int = 42,
        backend: str = "anneal",
        replicas: int = 8,
        config: Optional[SessionConfig] = None,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name or f"session-{uuid.uuid4().hex[:8]}"
        self.provider = provider or google_cloud_2015()
        self.n_vms = int(n_vms)
        self.use_castpp = bool(use_castpp)
        self.iterations = int(iterations)
        self.seed = int(seed)
        self.backend = str(backend)
        self.replicas = int(replicas)
        self.config = config or SessionConfig()
        self._registry = registry
        self._drift = DriftDetector(
            threshold=self.config.drift_threshold,
            window=self.config.drift_window,
        )
        self.log = SessionLog()
        self._jobs: Dict[str, JobSpec] = {}
        self._reuse_sets: List[ReuseSet] = []
        # Incrementally maintained neighbor-closure inputs (footprints
        # and reuse groups) — rebuilding them per re-plan costs O(N) in
        # property chains, a visible slice of a millisecond budget.
        self._fp: Dict[str, float] = {}
        self._groups: Dict[str, List[str]] = {}
        self._evaluator: Optional[PlanEvaluator] = None
        self.plan: Optional[TieringPlan] = None
        self.last_result: Optional[ReplanResult] = None
        self.closed = False
        self._seq = 0
        self._warm_since_full = 0
        self.counters: Dict[str, int] = {
            "deltas": 0, "warm_replans": 0, "full_replans": 0,
            "drift_escalations": 0, "parity_checks": 0,
        }
        self._rebuild_solver()
        if workload is not None and workload.jobs:
            for job in workload.jobs:
                self._jobs[job.job_id] = job
                self._fp[job.job_id] = job.footprint_gb
                self._groups[job.job_id] = [job.job_id]
            self._reuse_sets = list(workload.reuse_sets)
            for rs in self._reuse_sets:
                members = sorted(rs.job_ids)
                for jid in members:
                    self._groups[jid] = members
            self.log.append("open", {
                "jobs": [j.job_id for j in workload.jobs],
                "n_vms": self.n_vms, "iterations": self.iterations,
                "seed": self.seed, "backend": self.backend,
            })
            self._replan("open", added=tuple(self._jobs), removed=(),
                         workload=self._workload(), force_full=True)

    # -- deployment context ------------------------------------------------

    def _rebuild_solver(self) -> None:
        self.cluster_spec = ClusterSpec(
            n_vms=self.n_vms, vm=self.provider.default_vm
        )
        self.matrix = build_model_matrix(
            provider=self.provider, cluster_spec=self.cluster_spec
        )
        solver_cls = CastPlusPlus if self.use_castpp else CastSolver
        self._solver = solver_cls(
            cluster_spec=self.cluster_spec,
            matrix=self.matrix,
            provider=self.provider,
            schedule=AnnealingSchedule(iter_max=self.iterations),
            seed=self.seed,
            backend=self.backend,
            replicas=self.replicas,
        )
        self._evaluator = None

    # -- resident workload -------------------------------------------------

    def _workload(self) -> WorkloadSpec:
        return WorkloadSpec(
            jobs=tuple(self._jobs.values()),
            reuse_sets=tuple(self._reuse_sets),
            name=self.name,
        )

    @property
    def resident_job_ids(self) -> Tuple[str, ...]:
        return tuple(self._jobs)

    @property
    def n_resident_jobs(self) -> int:
        return len(self._jobs)

    @property
    def workload(self) -> Optional[WorkloadSpec]:
        """The resident workload (None while the session is empty)."""
        return self._workload() if self._jobs else None

    def _check_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.name!r} is closed")

    # -- deltas ------------------------------------------------------------

    def add_jobs(
        self, jobs: Iterable[JobSpec], reuse_sets: Iterable[ReuseSet] = ()
    ) -> ReplanResult:
        """Admit arriving jobs (optionally sharing new reuse sets)."""
        self._check_open()
        arriving = list(jobs)
        reuse_sets = list(reuse_sets)
        ids = [j.job_id for j in arriving]
        if len(set(ids)) != len(ids):
            raise SessionError(f"duplicate job ids in delta: {sorted(ids)}")
        clashes = [i for i in ids if i in self._jobs]
        if clashes:
            raise SessionError(f"jobs already resident: {sorted(clashes)}")
        new_jobs = dict(self._jobs)
        for job in arriving:
            new_jobs[job.job_id] = job
        new_sets = self._reuse_sets + list(reuse_sets)
        # Validate the post-delta workload *before* committing anything
        # (WorkloadSpec enforces reuse-set integrity at construction).
        workload = WorkloadSpec(
            jobs=tuple(new_jobs.values()), reuse_sets=tuple(new_sets),
            name=self.name,
        )
        self._jobs = new_jobs
        self._reuse_sets = new_sets
        for job in arriving:
            self._fp[job.job_id] = job.footprint_gb
            self._groups[job.job_id] = [job.job_id]
        for rs in reuse_sets:
            members = sorted(rs.job_ids)
            for jid in members:
                self._groups[jid] = members
        self.log.append("add", {"job_ids": ids})
        return self._replan("add", added=tuple(ids), removed=(),
                            workload=workload)

    def remove_jobs(self, job_ids: Iterable[str]) -> ReplanResult:
        """Retire departing jobs (pruning them from reuse sets)."""
        self._check_open()
        departing = list(job_ids)
        unknown = [i for i in departing if i not in self._jobs]
        if unknown:
            raise SessionError(f"jobs not resident: {sorted(unknown)}")
        gone = set(departing)
        new_jobs = {i: j for i, j in self._jobs.items() if i not in gone}
        new_sets: List[ReuseSet] = []
        regroup: List[List[str]] = []
        for rs in self._reuse_sets:
            remaining = rs.job_ids - gone
            if remaining:
                if remaining == rs.job_ids:
                    new_sets.append(rs)
                else:
                    new_sets.append(replace(rs, job_ids=frozenset(remaining)))
                    regroup.append(sorted(remaining))
        workload = (
            WorkloadSpec(jobs=tuple(new_jobs.values()),
                         reuse_sets=tuple(new_sets), name=self.name)
            if new_jobs else None
        )
        self._jobs = new_jobs
        self._reuse_sets = new_sets
        for jid in departing:
            del self._fp[jid]
            del self._groups[jid]
        for members in regroup:
            for jid in members:
                self._groups[jid] = members
        self.log.append("remove", {"job_ids": departing})
        return self._replan("remove", added=(), removed=tuple(departing),
                            workload=workload)

    def update_catalog(self, provider: CloudProvider) -> ReplanResult:
        """Swap the storage catalog; forces a full re-solve."""
        self._check_open()
        self.provider = provider
        self._rebuild_solver()
        self.log.append("catalog", {
            "provider": getattr(provider, "name", provider.__class__.__name__)
        })
        return self._replan("catalog", added=(), removed=(),
                            workload=self.workload, force_full=True)

    def replan(self, force_full: bool = False) -> ReplanResult:
        """Re-plan without a delta (manual refresh)."""
        self._check_open()
        self.log.append("replan", {"force_full": force_full})
        return self._replan("replan", added=(), removed=(),
                            workload=self.workload, force_full=force_full)

    def close(self) -> Dict[str, Any]:
        """Close the session; returns a summary with the final plan."""
        self._check_open()
        self.closed = True
        self._gauge().set(0, session=self.name)
        last = self.last_result
        return {
            "session": self.name,
            "events": len(self.log),
            "resident_jobs": len(self._jobs),
            "counters": dict(self.counters),
            "drift_escalations": self._drift.escalations,
            "utility": last.utility if last is not None else None,
            "plan": self.plan.to_dict() if self.plan is not None else None,
        }

    # -- re-planning -------------------------------------------------------

    def _seed_tier(self, job: JobSpec) -> Tier:
        """Table 2 placement heuristic for one arriving job."""
        available = set(self.provider.tiers)
        app = job.app
        if app.cpu_intensive and Tier.PERS_HDD in available:
            return Tier.PERS_HDD
        if app.io_intensive_shuffle and Tier.PERS_SSD in available:
            return Tier.PERS_SSD
        if app.io_intensive_map and Tier.OBJ_STORE in available:
            return Tier.OBJ_STORE
        return next(iter(sorted(available, key=lambda t: t.value)))

    def _warm_plan(
        self, workload: WorkloadSpec, removed: Tuple[str, ...]
    ) -> TieringPlan:
        """Incumbent plan rebased onto the post-delta workload.

        Surviving jobs keep their optimized placements; arrivals get
        the Table 2 seed tier at exact-fit capacity — except reuse-set
        members, which are co-placed with a surviving member of their
        set so the warm plan satisfies Constraint 7 from the start.
        """
        assert self.plan is not None
        placements = dict(self.plan.placements)
        for jid in removed:
            placements.pop(jid, None)
        for job in workload.jobs:
            jid = job.job_id
            if jid in placements:
                continue
            tier: Optional[Tier] = None
            rs = workload.reuse_set_of(jid)
            if rs is not None:
                for mate in rs.job_ids:
                    mate_p = placements.get(mate)
                    if mate_p is not None:
                        tier = mate_p.tier
                        break
            if tier is None:
                tier = self._seed_tier(job)
            placements[jid] = Placement(tier=tier, capacity_gb=job.footprint_gb)
        return TieringPlan(placements=placements)

    def _warm_schedule(self, n_changed: int) -> AnnealingSchedule:
        cfg = self.config
        iters = min(
            cfg.warm_iterations_max,
            max(cfg.warm_iterations_min,
                cfg.warm_iterations_per_change * max(1, n_changed)),
        )
        return AnnealingSchedule(
            temp_init=cfg.warm_temp_init,
            cooling_rate=cfg.warm_cooling_rate,
            iter_max=iters,
        )

    def _replan(
        self,
        kind: str,
        added: Tuple[str, ...],
        removed: Tuple[str, ...],
        workload: Optional[WorkloadSpec],
        force_full: bool = False,
    ) -> ReplanResult:
        cfg = self.config
        seq = self._seq
        self._seq += 1
        self.counters["deltas"] += 1

        if workload is None:
            # Session drained empty: no plan to maintain.
            self.plan = None
            self._evaluator = None
            result = ReplanResult(
                seq=seq, kind=kind, mode="empty", plan=None,
                utility=float("nan"), makespan_s=float("nan"),
                cost_total_usd=float("nan"), replan_s=0.0, iterations=0,
                added=added, removed=removed, resident_jobs=0,
                drift_distance=0.0, escalated=False, parity_ok=None,
            )
            self._record(result)
            return result

        drift_distance, drifted = 0.0, False
        if self.plan is not None:
            drift_distance, drifted = self._drift.observe(workload.jobs)
            if drifted:
                self.counters["drift_escalations"] += 1

        full = (
            force_full
            or self.plan is None
            or self._evaluator is None
            or drifted
            or self._warm_since_full >= cfg.full_solve_every
        )
        mode = "full" if full else "warm"

        with span(
            "session.replan",
            attrs={"session": self.name, "kind": kind, "mode": mode,
                   "jobs": workload.n_jobs},
        ):
            started = time.perf_counter()
            if full:
                # Cold path: identical to the batch solve of the
                # resident workload (fresh evaluator, Algorithm 2 seed,
                # full budget) — the quality anchor warm re-plans are
                # measured against.
                result_sa = self._solver.solve(workload)
                evaluator = self._solver.last_evaluator
                if evaluator is None:  # non-incremental/tempering path
                    evaluator = self._solver.make_evaluator(workload)
                # Warm re-plans are feasible by construction; skip the
                # O(N) plan re-validation on their baseline resets.
                evaluator.validate_resets = False
                self._evaluator = evaluator
                self._drift.rearm(workload.jobs)
                self._warm_since_full = 0
                self.counters["full_replans"] += 1
            else:
                evaluator = self._evaluator
                warm_plan = self._warm_plan(workload, removed)
                # Delta-scoped rebase: patch the evaluator's base in
                # place (arrivals, departures, contended tiers only);
                # the annealer sees its base already *is* the warm plan
                # and skips the O(N) baseline reset entirely.
                evaluator.apply_workload_delta(
                    workload, warm_plan,
                    tuple(self._jobs[jid] for jid in added), removed,
                )
                sched = self._warm_schedule(len(added) + len(removed))
                result_sa = self._solver.solve(
                    workload, initial=warm_plan,
                    schedule=sched, evaluator=evaluator,
                    neighbor_fn=self._solver.neighbor_moves(
                        workload, fp=self._fp, groups=self._groups
                    ),
                )
                self._warm_since_full += 1
                self.counters["warm_replans"] += 1
            best = result_sa.best_state
            self._rebase(evaluator, best)
            replan_s = time.perf_counter() - started

        self.plan = best
        utility = evaluator.base_utility
        cost = evaluator.base_cost

        parity_ok: Optional[bool] = None
        if cfg.parity_check_every and seq % cfg.parity_check_every == 0:
            parity_ok = self.verify_parity()
            if not parity_ok:
                raise SessionError(
                    f"session {self.name!r} parity violation at seq {seq}: "
                    "incremental utility diverged from evaluate_plan"
                )

        result = ReplanResult(
            seq=seq, kind=kind, mode=mode, plan=best,
            utility=utility,
            makespan_s=evaluator.base_makespan_s,
            cost_total_usd=cost.total_usd if cost is not None else float("nan"),
            replan_s=replan_s,
            iterations=result_sa.iterations,
            added=added, removed=removed,
            resident_jobs=workload.n_jobs,
            drift_distance=drift_distance,
            escalated=drifted,
            parity_ok=parity_ok,
        )
        self.last_result = result
        self._record(result)
        return result

    @staticmethod
    def _rebase(evaluator: PlanEvaluator, best: TieringPlan) -> None:
        """Move the evaluator's base onto the annealer's best plan.

        The annealer leaves the base at its *last accepted* plan, which
        may trail the best one.  Rather than a full O(N) re-evaluation,
        diff the two plans — ``with_placements`` shares untouched
        ``Placement`` objects, so an identity scan finds the changed
        jobs — and promote the best plan through the delta ``propose``
        path, which is bit-identical to a full re-score by the
        evaluator's parity guarantee.
        """
        base_plan = evaluator.base_plan
        if base_plan is best:
            return
        if base_plan is None or base_plan.placements.keys() != best.placements.keys():
            evaluator.reset(best)
            return
        base_pl = base_plan.placements
        changes = tuple(
            (jid, p) for jid, p in best.placements.items()
            if base_pl[jid] is not p
        )
        evaluator.propose(best, PlanMove(changes))
        evaluator.accept()

    def verify_parity(self) -> bool:
        """Bit-exact check of the incumbent against the reference path.

        Re-scores the current plan through the canonical, from-scratch
        :func:`~repro.core.utility.evaluate_plan` and compares the
        utility for *equality* — the incremental machinery guarantees
        bit-identity, not mere closeness.  Runs outside the re-plan
        latency window (it is a verification pass, not planning work).
        """
        if self.plan is None or self._evaluator is None:
            return True
        self.counters["parity_checks"] += 1
        reference = evaluate_plan(
            self._workload(), self.plan, self.cluster_spec, self.matrix,
            self.provider, reuse_aware=self._solver._reuse_aware,
        )
        incumbent = self._evaluator.base_utility
        return (
            reference.utility == incumbent
            and reference.makespan_s == self._evaluator.base_makespan_s
        )

    # -- observability -----------------------------------------------------

    def _reg(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def _gauge(self):
        return self._reg().gauge(
            "cast_session_resident_jobs",
            "Jobs resident in a planning session",
            labelnames=("session",),
        )

    def _record(self, result: ReplanResult) -> None:
        reg = self._reg()
        reg.counter(
            "cast_session_events_total", "Session deltas admitted",
            labelnames=("kind",),
        ).inc(kind=result.kind)
        reg.counter(
            "cast_session_replans_total", "Session re-plans by mode",
            labelnames=("mode",),
        ).inc(mode=result.mode)
        if result.escalated:
            reg.counter(
                "cast_session_drift_escalations_total",
                "Warm re-plans escalated to full solves by workload drift",
            ).inc()
        if result.mode != "empty":
            reg.histogram(
                "cast_session_replan_seconds",
                "Wall time of one session re-plan",
                labelnames=("mode",),
                buckets=SESSION_REPLAN_BUCKETS,
            ).observe(result.replan_s, mode=result.mode)
        self._gauge().set(result.resident_jobs, session=self.name)

    def stats(self) -> Dict[str, Any]:
        """Session counters for the service ``stats`` op and tests."""
        out: Dict[str, Any] = {
            "session": self.name,
            "resident_jobs": len(self._jobs),
            "reuse_sets": len(self._reuse_sets),
            "events": len(self.log),
            "warm_since_full": self._warm_since_full,
            "drift_recent_max": self._drift.recent_max,
            **self.counters,
        }
        if self._evaluator is not None:
            out["evaluator"] = dict(self._evaluator.stats())
        return out
