"""Append-only session event log, and the on-disk trace format.

Two consumers:

* :class:`~repro.session.session.PlanningSession` records every applied
  delta, so a session is replayable from its log alone — the fleet
  router leans on this to survive shard failover (replay the log on the
  ring successor, then continue);
* ``cast-plan session --replay <trace>`` drives a session from a trace
  file, the offline path for benchmarking re-plan latency on recorded
  churn.

The trace file is schema-v1 JSON::

    {"version": 1, "kind": "session-trace",
     "open": {...session_open params: workload?, n_vms, iterations, ...},
     "events": [{"kind": "add", "jobs": [...], "reuse_sets": [...]},
                {"kind": "remove", "job_ids": [...]}]}

``jobs`` entries use the :mod:`repro.workloads.io` job schema
(``job_id``/``app``/``input_gb``/...); ``reuse_sets`` the reuse-set
schema from the same module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from ..errors import SessionError

__all__ = ["SessionEvent", "SessionLog", "load_trace", "save_trace"]

_EVENT_KINDS = ("open", "add", "remove", "catalog", "replan")


@dataclass(frozen=True)
class SessionEvent:
    """One applied session delta (already validated and admitted)."""

    seq: int
    kind: str
    payload: Mapping[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind,
                "payload": dict(self.payload)}


class SessionLog:
    """Append-only list of the deltas a session has admitted."""

    def __init__(self) -> None:
        self._events: List[SessionEvent] = []

    def append(self, kind: str, payload: Mapping[str, Any]) -> SessionEvent:
        if kind not in _EVENT_KINDS:
            raise SessionError(f"unknown session event kind: {kind!r}")
        event = SessionEvent(seq=len(self._events), kind=kind,
                             payload=dict(payload))
        self._events.append(event)
        return event

    def events(self) -> Tuple[SessionEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self._events]


def _check_events(events: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for i, event in enumerate(events):
        kind = event.get("kind")
        if kind not in ("add", "remove"):
            raise SessionError(
                f"trace event {i}: kind must be 'add' or 'remove', "
                f"got {kind!r}"
            )
        if kind == "add" and not isinstance(event.get("jobs"), list):
            raise SessionError(f"trace event {i}: 'add' needs a jobs list")
        if kind == "remove" and not isinstance(event.get("job_ids"), list):
            raise SessionError(
                f"trace event {i}: 'remove' needs a job_ids list"
            )
        out.append(dict(event))
    return out


def load_trace(path: str) -> Dict[str, Any]:
    """Load and validate a schema-v1 session trace file."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != 1 or data.get("kind") != "session-trace":
        raise SessionError(
            f"not a v1 session-trace file: version={data.get('version')!r} "
            f"kind={data.get('kind')!r}"
        )
    data["events"] = _check_events(data.get("events", []))
    data.setdefault("open", {})
    return data


def save_trace(path: str, open_params: Mapping[str, Any],
               events: Iterable[Mapping[str, Any]]) -> None:
    """Write a schema-v1 session trace file."""
    payload = {
        "version": 1,
        "kind": "session-trace",
        "open": dict(open_params),
        "events": _check_events(events),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
