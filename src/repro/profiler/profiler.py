"""Offline workload profiling (paper §4.1).

CAST "performs offline workload profiling to construct job performance
prediction models on different cloud storage services".  In the paper
that means running each application once per storage service (and per
capacity point, for the scaling services) on the real cluster; here the
calibration jobs run on the simulator substrate — the same substitution
as everywhere else, and importantly the *planner never sees the
simulator's internals*: it only sees what profiling a real deployment
would yield, phase durations inverted into per-task bandwidths.

Inversion follows Eq. 1's structure.  A phase observed to take ``P``
seconds over ``w`` waves with per-task data ``d`` MB has effective
per-task bandwidth ``d / (P / w)``.  The simulator's merged
shuffle+reduce phase is apportioned between Eq. 1's shuffle and reduce
terms pro rata by data volume so the three-term estimator reproduces
the observed total exactly at the calibration point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..cloud.provider import CloudProvider, google_cloud_2015
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..simulator.engine import intermediate_tier_for, simulate_job
from ..units import gb_to_mb
from ..workloads.apps import APP_CATALOG, AppProfile
from ..workloads.spec import JobSpec
from .models import CapacityProfile, ModelMatrix, PhaseBandwidths

__all__ = ["Profiler", "DEFAULT_CAPACITY_GRID_GB", "build_model_matrix"]

#: Per-VM capacity grid for the scaling services (GB).  The paper
#: profiles 100–1000 GB per VM (Fig. 2).
DEFAULT_CAPACITY_GRID_GB: Tuple[float, ...] = (100.0, 200.0, 350.0, 500.0, 750.0, 1000.0)

_BW_FLOOR = 1e-6


@dataclass
class Profiler:
    """Runs calibration jobs and assembles a :class:`ModelMatrix`.

    Parameters
    ----------
    provider:
        Cloud catalog to profile against.
    cluster_spec:
        The calibration cluster (the paper uses the 10-VM §3 cluster).
    waves:
        Calibration-job size in scheduling waves — ≥2 so wave overlap
        effects are represented in the measurement.
    """

    provider: CloudProvider
    cluster_spec: ClusterSpec
    waves: int = 2
    #: Input GB per map task in calibration runs.  Matches the
    #: production workloads being planned for (the Facebook trace's
    #: ~1 GB splits); per-task fixed overheads then amortize in the
    #: measured bandwidths the same way they do in real jobs.
    split_gb: float = 1.0

    def calibration_job(self, app: AppProfile) -> JobSpec:
        """A job filling exactly ``waves`` map AND reduce waves.

        Wave-aligned task counts make the Eq. 1 inversion unambiguous:
        observed phase time divides into whole waves on both sides, so
        the derived per-task bandwidths carry no partial-wave bias.
        """
        n_maps = self.cluster_spec.total_map_slots * self.waves
        n_reduces = self.cluster_spec.total_reduce_slots * self.waves
        return JobSpec(
            job_id=f"calib-{app.name}",
            app=app,
            input_gb=n_maps * self.split_gb,
            n_maps=n_maps,
            n_reduces=n_reduces,
        )

    # -- single-point profiling -------------------------------------------------

    def profile_point(
        self, app: AppProfile, tier: Tier, capacity_gb_per_vm: float
    ) -> PhaseBandwidths:
        """Measure phase bandwidths for one (app, tier, capacity)."""
        job = self.calibration_job(app)
        caps = self._capacity_map(job, tier, capacity_gb_per_vm)
        result = simulate_job(job, tier, self.cluster_spec, self.provider, caps)

        m, r = job.map_tasks, job.reduce_tasks
        waves_m = self.cluster_spec.map_waves(m)
        waves_r = self.cluster_spec.reduce_waves(r)

        map_per_wave_s = result.map_s / waves_m
        bw_map = gb_to_mb(job.input_gb / m) / max(map_per_wave_s, 1e-12)

        inter_mb = gb_to_mb(job.intermediate_gb / r)
        out_mb = gb_to_mb(job.output_gb / r)
        red_per_wave_s = result.reduce_s / max(waves_r, 1e-12)
        total_mb = inter_mb + out_mb
        if total_mb <= 0 or red_per_wave_s <= 0:
            bw_shuffle = bw_reduce = max(bw_map, 1.0)
        else:
            shuffle_share = inter_mb / total_mb
            shuffle_s = red_per_wave_s * shuffle_share
            reduce_s = red_per_wave_s * (1.0 - shuffle_share)
            bw_shuffle = inter_mb / shuffle_s if shuffle_s > 0 else max(bw_map, 1.0)
            bw_reduce = out_mb / reduce_s if reduce_s > 0 else max(bw_map, 1.0)
        return PhaseBandwidths(
            map_mb_s=max(bw_map, _BW_FLOOR),
            shuffle_mb_s=max(bw_shuffle, _BW_FLOOR),
            reduce_mb_s=max(bw_reduce, _BW_FLOOR),
        )

    def _capacity_map(
        self, job: JobSpec, tier: Tier, capacity_gb_per_vm: float
    ) -> Dict[Tier, float]:
        caps: Dict[Tier, float] = {}
        inter = intermediate_tier_for(self.provider, tier)
        if tier is Tier.OBJ_STORE:
            # Calibrate with the same helper-volume sizing production
            # deployments use, or the profile would under-report the
            # shuffle bandwidth objStore jobs actually see.
            from ..simulator.engine import HELPER_INTERMEDIATE_GB_PER_VM

            caps[inter] = HELPER_INTERMEDIATE_GB_PER_VM
        elif tier is Tier.EPH_SSD:
            caps[Tier.EPH_SSD] = capacity_gb_per_vm
        else:
            caps[tier] = capacity_gb_per_vm
        return caps

    # -- full-matrix profiling -----------------------------------------------------

    def capacity_grid(self, tier: Tier) -> Tuple[float, ...]:
        """Capacity anchors for ``tier``.

        persSSD/persHDD follow their volume-size curves; ephSSD scales
        in whole 375 GB volumes (1–4 per VM); objStore is flat.
        """
        svc = self.provider.service(tier)
        if tier is Tier.OBJ_STORE:
            return (100.0,)
        if tier is Tier.EPH_SSD:
            # Volumes add capacity, not bandwidth (see SimCluster) —
            # one anchor suffices.
            return (float(svc.fixed_volume_gb or 375.0),)
        return DEFAULT_CAPACITY_GRID_GB

    def profile_app_tier(self, app: AppProfile, tier: Tier) -> CapacityProfile:
        """Profile one (app, tier) across the capacity grid."""
        anchors = []
        for cap in self.capacity_grid(tier):
            anchors.append((cap, self.profile_point(app, tier, cap)))
        return CapacityProfile(anchors=tuple(anchors))

    def profile_all(
        self,
        apps: Optional[Iterable[AppProfile]] = None,
        tiers: Optional[Iterable[Tier]] = None,
    ) -> ModelMatrix:
        """Profile every (app, tier) pair into a fresh matrix."""
        matrix = ModelMatrix()
        app_list = list(apps) if apps is not None else list(APP_CATALOG.values())
        tier_list = list(tiers) if tiers is not None else list(self.provider.tiers)
        for app in app_list:
            for tier in tier_list:
                matrix.put(app.name, tier, self.profile_app_tier(app, tier))
        return matrix


_MATRIX_CACHE: Dict[Tuple[str, int, int], ModelMatrix] = {}


def build_model_matrix(
    provider: Optional[CloudProvider] = None,
    cluster_spec: Optional[ClusterSpec] = None,
    waves: int = 2,
) -> ModelMatrix:
    """Profile (with caching) the full model matrix for a deployment.

    Profiling is deterministic, so results are memoized per
    (provider, cluster size, waves) — experiments and benches share one
    matrix instead of re-simulating ~100 calibration runs each.
    """
    provider = provider or google_cloud_2015()
    cluster_spec = cluster_spec or ClusterSpec(n_vms=10)
    key = (provider.name, cluster_spec.n_vms, waves)
    if key not in _MATRIX_CACHE:
        profiler = Profiler(provider=provider, cluster_spec=cluster_spec, waves=waves)
        _MATRIX_CACHE[key] = profiler.profile_all()
    return _MATRIX_CACHE[key]
