"""Profiled performance model data (``M-hat`` in Table 3).

The paper's estimator consumes, for every (application, storage
service) pair, the effective per-task bandwidth in each execution phase
(map / shuffle / reduce).  Because network-attached volumes scale with
capacity, the profile for those services is a *curve*: bandwidths
measured at several per-VM capacities, interpolated by the same cubic
Hermite spline the REG model uses (§4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..cloud.storage import Tier
from ..core.regression import CapacitySpline
from ..errors import CatalogError

__all__ = [
    "PhaseBandwidths",
    "CapacityProfile",
    "ModelMatrix",
    "quantize_capacity",
]


def quantize_capacity(capacity_gb_per_vm: float) -> float:
    """Snap a per-VM capacity to the 1 GB profile-lookup grid.

    The single quantization used by both :meth:`ModelMatrix.bandwidths`
    and the incremental evaluator's estimate-memoization key.  Sharing
    one function is what makes the memoization *exact*: a job estimate
    depends on capacity only through the bandwidth lookup, and that
    lookup sees only the quantized value — so two capacities that
    quantize alike yield bit-identical estimates.
    """
    return round(capacity_gb_per_vm, 0)


@dataclass(frozen=True)
class PhaseBandwidths:
    """Effective per-task MB/s in each phase (``bw^f_map`` etc.).

    These are *effective* rates: storage share and compute serialized,
    as observed — exactly what profiling a real job yields.
    """

    map_mb_s: float
    shuffle_mb_s: float
    reduce_mb_s: float

    def __post_init__(self) -> None:
        for v in (self.map_mb_s, self.shuffle_mb_s, self.reduce_mb_s):
            if v <= 0:
                raise ValueError(f"non-positive phase bandwidth in {self}")


@dataclass(frozen=True)
class CapacityProfile:
    """Phase bandwidths as a function of per-VM provisioned capacity.

    For capacity-insensitive services (ephSSD, objStore) this holds a
    single anchor and evaluates constantly.  The three per-phase PCHIP
    splines are built once at construction — profile lookups sit in the
    solver's innermost loop.
    """

    anchors: Tuple[Tuple[float, PhaseBandwidths], ...]

    def __post_init__(self) -> None:
        if not self.anchors:
            raise ValueError("CapacityProfile needs at least one anchor")
        caps = [c for c, _ in self.anchors]
        if sorted(caps) != caps or len(set(caps)) != len(caps):
            raise ValueError("anchors must be sorted by strictly increasing capacity")
        if len(self.anchors) > 1:
            splines = tuple(
                CapacitySpline(
                    points=tuple((c, getattr(bw, attr)) for c, bw in self.anchors)
                )
                for attr in ("map_mb_s", "shuffle_mb_s", "reduce_mb_s")
            )
        else:
            splines = None
        object.__setattr__(self, "_splines", splines)

    def at(self, capacity_gb_per_vm: float) -> PhaseBandwidths:
        """Interpolated phase bandwidths at a per-VM capacity."""
        if len(self.anchors) == 1:
            return self.anchors[0][1]
        s_map, s_shuf, s_red = self._splines  # type: ignore[attr-defined]
        return PhaseBandwidths(
            map_mb_s=max(1e-9, s_map(capacity_gb_per_vm)),
            shuffle_mb_s=max(1e-9, s_shuf(capacity_gb_per_vm)),
            reduce_mb_s=max(1e-9, s_red(capacity_gb_per_vm)),
        )

    def at_array(self, caps) -> Tuple:
        """Raw per-phase bandwidths at many capacities (one spline pass).

        Returns ``(map, shuffle, reduce)`` float arrays, element-wise
        bit-identical to the scalar spline lookups inside :meth:`at`
        (before its ``max(1e-9, ...)`` clamp) — the incremental
        evaluator precomputes whole quantized-capacity tables from
        this instead of paying a scalar spline call per lookup.
        """
        import numpy as np

        caps = np.asarray(caps, dtype=float)
        if len(self.anchors) == 1:
            bw = self.anchors[0][1]
            return (
                np.full(caps.shape, bw.map_mb_s),
                np.full(caps.shape, bw.shuffle_mb_s),
                np.full(caps.shape, bw.reduce_mb_s),
            )
        s_map, s_shuf, s_red = self._splines  # type: ignore[attr-defined]
        return (s_map.evaluate(caps), s_shuf.evaluate(caps), s_red.evaluate(caps))

    @property
    def capacities(self) -> Tuple[float, ...]:
        """Anchor capacities (GB per VM)."""
        return tuple(c for c, _ in self.anchors)


class ModelMatrix:
    """All profiled (app, tier) capacity profiles.

    The offline profiler fills one of these; the estimator, solvers and
    experiments read it.  Lookups are by application *name* so the
    matrix can outlive app-profile object identity.
    """

    def __init__(self) -> None:
        self._profiles: Dict[Tuple[str, Tier], CapacityProfile] = {}
        self._bw_cache: Dict[Tuple[str, Tier, float], PhaseBandwidths] = {}

    def put(self, app_name: str, tier: Tier, profile: CapacityProfile) -> None:
        """Record the profile for one (app, tier)."""
        self._profiles[(app_name, tier)] = profile
        self._bw_cache.clear()

    def get(self, app_name: str, tier: Tier) -> CapacityProfile:
        """Fetch a profile; raise :class:`CatalogError` when unprofiled."""
        try:
            return self._profiles[(app_name, tier)]
        except KeyError:
            known = sorted({a for a, _ in self._profiles})
            raise CatalogError(
                f"no profile for app={app_name!r} on tier={tier}; "
                f"profiled apps: {known}"
            ) from None

    def has(self, app_name: str, tier: Tier) -> bool:
        """Whether a profile exists for the pair."""
        return (app_name, tier) in self._profiles

    def bandwidths(
        self, app_name: str, tier: Tier, capacity_gb_per_vm: float
    ) -> PhaseBandwidths:
        """Phase bandwidths for the pair at a per-VM capacity.

        Memoized on capacity rounded to 1 GB — solver neighbor moves
        re-query the same handful of capacities thousands of times.
        """
        key = (app_name, tier, quantize_capacity(capacity_gb_per_vm))
        hit = self._bw_cache.get(key)
        if hit is None:
            hit = self.get(app_name, tier).at(key[2])
            self._bw_cache[key] = hit
        return hit

    @property
    def pairs(self) -> Sequence[Tuple[str, Tier]]:
        """All profiled (app, tier) pairs."""
        return sorted(self._profiles.keys(), key=lambda p: (p[0], p[1].value))
