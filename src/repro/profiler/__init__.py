"""Offline job profiling: calibration runs → performance model matrix."""

from .models import CapacityProfile, ModelMatrix, PhaseBandwidths
from .profiler import DEFAULT_CAPACITY_GRID_GB, Profiler, build_model_matrix

__all__ = [
    "PhaseBandwidths",
    "CapacityProfile",
    "ModelMatrix",
    "Profiler",
    "build_model_matrix",
    "DEFAULT_CAPACITY_GRID_GB",
]
