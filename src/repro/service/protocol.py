"""The planner service wire protocol (version 1).

JSON lines over a byte stream: every message is one JSON object on one
``\\n``-terminated line, so the framing survives any transport that
preserves bytes and both ends can be debugged with ``nc``.

Request::

    {"v": 1, "id": "req-1", "op": "plan", "params": {...}}

``op`` is one of :data:`OPS`.  ``params`` for the solve ops carries the
workload/workflow dict (the :mod:`repro.workloads.io` schema) plus the
solver knobs; ``catalog`` takes ``{"provider": name}``; ``stats`` and
``ping`` take nothing.

Response::

    {"v": 1, "id": "req-1", "ok": true,  "cached": false, "result": {...}}
    {"v": 1, "id": "req-1", "ok": false, "error": {"type": "WorkloadError",
                                                   "message": "..."}}

Error payloads are *typed*: ``type`` names the
:class:`~repro.errors.CastError` subclass the server raised, and
:func:`exception_from_payload` reconstructs it client-side so callers
can ``except WorkloadError`` across the wire exactly as they would
in-process.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional

from .. import errors as _errors
from ..errors import CastError, ProtocolError, ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "MAX_LINE_BYTES",
    "make_request",
    "parse_request",
    "ok_response",
    "error_response",
    "parse_response",
    "exception_from_payload",
    "encode_message",
    "send_message",
    "read_message",
]

PROTOCOL_VERSION = 1

#: Operations the protocol knows.  ``metrics`` exposes the server's
#: observability registry (Prometheus text or JSON) — see
#: :mod:`repro.obs.metrics`.  ``register``/``deregister`` are the shard
#: membership ops served by the fleet router
#: (:mod:`repro.fleet.router`); a plain :class:`PlannerServer` answers
#: them with a typed error.  ``whatif`` measures a fixed tiering (a
#: plan dict or a uniform tier) on the simulated cluster — no solver —
#: over the vectorized fast path by default.  Solve params may carry a
#: ``tenant`` string (default ``"default"``) — it never enters the
#: request fingerprint (plans are tenant-independent) but drives the
#: router's per-tenant fair queueing and the per-tenant metric labels.
#: ``session_open``/``session_delta``/``session_close`` drive streaming
#: planning sessions (:mod:`repro.session`): stateful warm-start
#: re-plans keyed by ``session_id``, so they bypass the plan cache,
#: single-flight dedup and admission control entirely — a delta is
#: milliseconds of work and never equivalent to another request.
#: The operational ops: ``slo`` evaluates the server's SLO engine
#: (:mod:`repro.obs.slo`; against a fleet router it rolls every
#: shard's report up, worst state wins), ``profile`` runs the sampling
#: profiler for ``duration_s`` seconds (:mod:`repro.obs.sampler`), and
#: ``debug_dump`` returns a flight-recorder postmortem bundle
#: (:mod:`repro.obs.flightrec`).
OPS = (
    "plan",
    "plan_workflow",
    "whatif",
    "sweep",
    "catalog",
    "stats",
    "metrics",
    "slo",
    "profile",
    "debug_dump",
    "ping",
    "register",
    "deregister",
    "session_open",
    "session_delta",
    "session_close",
)

#: Stream limit for one message — generous headroom over the largest
#: synthetic workload (~100 jobs ≈ 10 KB) without letting one client
#: buffer unbounded garbage.
MAX_LINE_BYTES = 8 * 1024 * 1024


def make_request(
    op: str, params: Optional[Mapping[str, Any]] = None, req_id: Any = None
) -> Dict[str, Any]:
    """Build a v1 request envelope (validating the op client-side)."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {list(OPS)}")
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "op": op,
        "params": dict(params or {}),
    }


def _parse_object(line: Any, what: str) -> Dict[str, Any]:
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"{what} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(f"{what} must be a JSON object, got {type(data).__name__}")
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (supported: {PROTOCOL_VERSION})"
        )
    return data


def parse_request(line: Any) -> Dict[str, Any]:
    """Validate one request line into its envelope dict."""
    data = _parse_object(line, "request")
    op = data.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {list(OPS)}")
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    data["params"] = params
    return data


def ok_response(
    req_id: Any, result: Mapping[str, Any], cached: bool = False
) -> Dict[str, Any]:
    """Success envelope."""
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "ok": True,
        "cached": bool(cached),
        "result": dict(result),
    }


def error_response(req_id: Any, exc: BaseException) -> Dict[str, Any]:
    """Failure envelope with a typed error payload."""
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def parse_response(line: Any) -> Dict[str, Any]:
    """Validate one response line into its envelope dict."""
    data = _parse_object(line, "response")
    if "ok" not in data:
        raise ProtocolError("response missing 'ok' field")
    if data["ok"] and not isinstance(data.get("result"), dict):
        raise ProtocolError("ok response missing 'result' object")
    if not data["ok"] and not isinstance(data.get("error"), dict):
        raise ProtocolError("error response missing 'error' object")
    return data


def exception_from_payload(payload: Mapping[str, Any]) -> CastError:
    """Rebuild the server-side exception from its wire payload.

    Unknown or non-:class:`CastError` type names degrade to
    :class:`ServiceError` — the client never executes arbitrary names.
    """
    name = str(payload.get("type", "ServiceError"))
    message = str(payload.get("message", "unknown service error"))
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, CastError):
        return cls(message)
    return ServiceError(f"{name}: {message}")


def encode_message(obj: Mapping[str, Any]) -> bytes:
    """One message → one compact JSON line."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode()


async def send_message(writer: asyncio.StreamWriter, obj: Mapping[str, Any]) -> None:
    """Write one message and flush it."""
    writer.write(encode_message(obj))
    await writer.drain()


async def read_message(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one raw message line; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except asyncio.LimitOverrunError:  # pragma: no cover - requires huge lines
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes") from None
    if not line:
        return None
    return line
