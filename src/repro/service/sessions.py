"""Server-side streaming planning sessions.

:class:`SessionManager` owns the :class:`~repro.session.PlanningSession`
objects living inside one planner daemon (or one fleet-router failover
replay).  The wire ops:

``session_open``
    ``{"spec": <workload dict>?, "session_id": ...?, knobs...}`` —
    create a session (solving the initial workload at full budget when
    one is given).  The server generates the id when omitted; opening
    an existing id replaces that session.
``session_delta``
    ``{"session_id": ..., "remove": [ids], "add": {"jobs": [...],
    "reuse_sets": [...]}, "include_plan": bool}`` — admit departures
    and/or arrivals; each group triggers one warm re-plan (removals
    first, matching how churn unfolds on a real cluster).
``session_close``
    ``{"session_id": ...}`` — retire the session, returning its final
    plan and counters.

Concurrency: deltas against one session are serialized by a per-session
``asyncio.Lock`` (a session is a single optimization trajectory); the
re-plans themselves run on worker threads via ``asyncio.to_thread`` so
a big full solve never blocks ``ping``.  Sessions report into the
server's metrics registry (``cast_session_*``).
"""

from __future__ import annotations

import asyncio
import uuid
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ProtocolError, SessionError
from ..obs.metrics import MetricsRegistry
from ..session import PlanningSession, ReplanResult, SessionConfig
from ..workloads.io import (
    job_from_dict,
    reuse_set_from_dict,
    workload_from_dict,
)
from ..workloads.spec import WorkloadSpec

__all__ = ["SessionManager", "normalize_open_params", "normalize_delta_params"]

#: SessionConfig fields settable over the wire (all ints/floats).
_CONFIG_KEYS = (
    "warm_iterations_per_change",
    "warm_iterations_min",
    "warm_iterations_max",
    "warm_temp_init",
    "warm_cooling_rate",
    "drift_threshold",
    "drift_window",
    "full_solve_every",
    "parity_check_every",
)


def normalize_open_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate/default a ``session_open`` envelope."""
    spec = params.get("spec")
    if spec is not None and not isinstance(spec, Mapping):
        raise ProtocolError("session_open 'spec' must be a workload object")
    config = params.get("config")
    if config is not None:
        if not isinstance(config, Mapping):
            raise ProtocolError("session_open 'config' must be an object")
        unknown = sorted(set(config) - set(_CONFIG_KEYS))
        if unknown:
            raise ProtocolError(
                f"unknown session config keys {unknown}; known: {list(_CONFIG_KEYS)}"
            )
    try:
        return {
            "spec": None if spec is None else dict(spec),
            "session_id": (
                None if params.get("session_id") is None
                else str(params["session_id"])
            ),
            "provider": str(params.get("provider", "google")),
            "n_vms": int(params.get("n_vms", 25)),
            "iterations": int(params.get("iterations", 3000)),
            "seed": int(params.get("seed", 42)),
            "use_castpp": bool(params.get("use_castpp", True)),
            "backend": str(params.get("backend", "anneal")),
            "replicas": int(params.get("replicas", 8)),
            "config": None if config is None else dict(config),
            "include_plan": bool(params.get("include_plan", False)),
        }
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad knob in session_open params: {exc}") from None


def normalize_delta_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a ``session_delta`` envelope."""
    session_id = params.get("session_id")
    if not session_id:
        raise ProtocolError("session_delta params need a 'session_id'")
    remove = params.get("remove", [])
    if not isinstance(remove, (list, tuple)):
        raise ProtocolError("session_delta 'remove' must be a list of job ids")
    add = params.get("add")
    if add is not None:
        if not isinstance(add, Mapping):
            raise ProtocolError(
                "session_delta 'add' must be an object with 'jobs'"
            )
        jobs = add.get("jobs", [])
        sets = add.get("reuse_sets", [])
        if not isinstance(jobs, (list, tuple)) or not isinstance(sets, (list, tuple)):
            raise ProtocolError(
                "session_delta 'add.jobs'/'add.reuse_sets' must be lists"
            )
    if add is None and not remove:
        raise ProtocolError(
            "session_delta needs at least one of 'remove' or 'add'"
        )
    return {
        "session_id": str(session_id),
        "remove": [str(jid) for jid in remove],
        "add": None if add is None else dict(add),
        "include_plan": bool(params.get("include_plan", False)),
    }


def _result_payload(
    session: PlanningSession, result: ReplanResult, include_plan: bool
) -> Dict[str, Any]:
    out = result.to_dict(include_plan=include_plan)
    out["session_id"] = session.name
    return out


class SessionManager:
    """The planner daemon's registry of live streaming sessions."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry
        self._sessions: Dict[str, PlanningSession] = {}
        self._locks: Dict[str, asyncio.Lock] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def session_ids(self) -> Tuple[str, ...]:
        return tuple(self._sessions)

    def _lock(self, session_id: str) -> asyncio.Lock:
        lock = self._locks.get(session_id)
        if lock is None:
            lock = self._locks[session_id] = asyncio.Lock()
        return lock

    def _get(self, session_id: str) -> PlanningSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"no such session: {session_id!r}")
        return session

    # -- ops ---------------------------------------------------------------

    async def open(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        p = normalize_open_params(params)
        session_id = p["session_id"] or f"session-{uuid.uuid4().hex[:12]}"
        workload: Optional[WorkloadSpec] = None
        if p["spec"] is not None:
            workload = workload_from_dict(p["spec"])
        config = (
            SessionConfig(**p["config"]) if p["config"] is not None else None
        )
        async with self._lock(session_id):
            from ..cloud import resolve_provider

            def build() -> PlanningSession:
                return PlanningSession(
                    workload,
                    provider=resolve_provider(p["provider"]),
                    n_vms=p["n_vms"],
                    iterations=p["iterations"],
                    seed=p["seed"],
                    use_castpp=p["use_castpp"],
                    backend=p["backend"],
                    replicas=p["replicas"],
                    config=config,
                    name=session_id,
                    registry=self._registry,
                )

            # The open solve is the full-budget batch solve — seconds of
            # work; keep it off the event loop.
            session = await asyncio.to_thread(build)
            self._sessions[session_id] = session
        out: Dict[str, Any] = {
            "session_id": session_id,
            "resident_jobs": session.n_resident_jobs,
        }
        if session.last_result is not None:
            out.update(
                _result_payload(session, session.last_result, p["include_plan"])
            )
        return out

    async def delta(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        p = normalize_delta_params(params)
        session_id = p["session_id"]
        add = p["add"]
        jobs = (
            [job_from_dict(dict(j)) for j in add.get("jobs", [])]
            if add is not None else []
        )
        reuse_sets = (
            [reuse_set_from_dict(dict(rs)) for rs in add.get("reuse_sets", [])]
            if add is not None else []
        )
        async with self._lock(session_id):
            session = self._get(session_id)
            replans: List[ReplanResult] = []

            def apply() -> None:
                if p["remove"]:
                    replans.append(session.remove_jobs(p["remove"]))
                if jobs or reuse_sets:
                    replans.append(session.add_jobs(jobs, reuse_sets))

            await asyncio.to_thread(apply)
        last = replans[-1]
        out = _result_payload(session, last, p["include_plan"])
        out["replans"] = [r.to_dict() for r in replans]
        out["replan_s"] = sum(r.replan_s for r in replans)
        return out

    async def close(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        session_id = params.get("session_id")
        if not session_id:
            raise ProtocolError("session_close params need a 'session_id'")
        session_id = str(session_id)
        async with self._lock(session_id):
            session = self._sessions.pop(session_id, None)
            self._locks.pop(session_id, None)
            if session is None:
                raise SessionError(f"no such session: {session_id!r}")
            summary = session.close()
        summary["session_id"] = session_id
        return summary

    def stats(self) -> Dict[str, Any]:
        """Per-session counters for the ``stats`` payload."""
        return {
            "open": len(self._sessions),
            "sessions": {
                sid: {
                    "resident_jobs": s.n_resident_jobs,
                    "events": len(s.log),
                    "warm_replans": s.counters["warm_replans"],
                    "full_replans": s.counters["full_replans"],
                }
                for sid, s in self._sessions.items()
            },
        }
