"""Multi-start solver pool on a ``ProcessPoolExecutor``.

Simulated annealing is a stochastic local search: one restart can stall
in a utility basin.  The pool runs N restarts *in parallel* — same
request, different RNG seeds — and keeps the best-utility plan, which
both raises plan quality and cuts wall-clock versus running a bigger
single-start budget serially.

Determinism: restart seeds derive from the request seed via
``np.random.SeedSequence(seed).spawn()``, with restart 0 pinned to the
request seed itself.  Consequences the tests assert:

* the same (request, restarts) pair always yields the identical plan,
  regardless of pool size or completion order;
* the multi-start winner's utility is ≥ the single-start result for
  the same seed (restart 0 *is* that run, and selection only improves).

Workers call the pure module-level entry points
(:func:`repro.core.solver.solve_workload_request`,
:func:`repro.core.castpp.solve_workflow_request`), so every task
pickles as plain dicts and the child processes share no state with the
server.  ``processes=0`` swaps in threads — no fork, handy for
in-process servers in tests and examples.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ServiceError
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing

__all__ = ["DEFAULT_RESTARTS", "SolverPool", "restart_seeds", "solve_restart"]

logger = logging.getLogger(__name__)

#: Restart count used when a request does not ask for one.
DEFAULT_RESTARTS = 4


def restart_seeds(seed: int, restarts: int) -> List[int]:
    """Per-restart RNG seeds, deterministic for a given request seed.

    Restart 0 reuses the request seed unchanged (so the multi-start
    winner can never fall below the single-start plan for that seed);
    restarts 1..N-1 come from ``SeedSequence(seed).spawn``, giving
    well-separated independent streams rather than ad-hoc offsets.
    """
    if restarts < 1:
        raise ServiceError(f"restarts must be >= 1, got {restarts}")
    seeds = [int(seed)]
    if restarts > 1:
        children = np.random.SeedSequence(int(seed)).spawn(restarts - 1)
        seeds.extend(int(child.generate_state(1)[0]) for child in children)
    return seeds


def _dispatch_restart(task: Mapping[str, Any]) -> Dict[str, Any]:
    op = task.get("op")
    if op == "plan":
        from ..core.solver import solve_workload_request

        return solve_workload_request(
            task["spec"],
            provider=task.get("provider", "google"),
            n_vms=task.get("n_vms", 25),
            iterations=task.get("iterations", 3000),
            seed=task.get("seed", 42),
            use_castpp=task.get("use_castpp", True),
            backend=task.get("backend", "anneal"),
            replicas=task.get("replicas", 8),
        )
    if op == "plan_workflow":
        from ..core.castpp import solve_workflow_request

        return solve_workflow_request(
            task["spec"],
            provider=task.get("provider", "google"),
            n_vms=task.get("n_vms", 25),
            iterations=task.get("iterations", 3000),
            seed=task.get("seed", 42),
        )
    raise ServiceError(f"pool cannot solve op {op!r}")


def solve_restart(task: Mapping[str, Any]) -> Dict[str, Any]:
    """Solve one restart of one request (the picklable worker body).

    ``task`` is ``{"op", "spec", "provider", "n_vms", "iterations",
    "seed", "use_castpp", "backend", "replicas"}`` — all JSON
    primitives — plus two optional observability keys injected by
    :class:`SolverPool`:

    * ``_trace``: the parent's span context
      (:func:`repro.obs.tracing.current_context`), so the restart span
      nests under the pool's ``pool.solve`` even across a process
      boundary;
    * ``_metrics``: a live :class:`~repro.obs.metrics.MetricsRegistry`
      — thread mode only (registries don't pickle, and don't need to:
      threads share the parent's memory), bound as the ambient
      registry for the restart.

    In a *process* worker, metrics recorded by the solver land in that
    worker's process-global registry; this body snapshots around the
    solve and ships the delta (plus any spans finished inside) home in
    ``result["obs"]`` for the pool to merge — the cross-process
    roll-up half of the snapshot/merge protocol.
    """
    task = dict(task)
    ctx = task.pop("_trace", None)
    registry = task.pop("_metrics", None)
    op = task.get("op")

    def _run() -> Dict[str, Any]:
        with obs_tracing.span(
            "pool.restart",
            attrs={"op": op, "seed": task.get("seed")},
            context=ctx,
        ):
            return _dispatch_restart(task)

    if registry is not None:
        # Thread mode: record straight into the server's registry.
        with obs_metrics.use_registry(registry):
            return _run()
    if multiprocessing.parent_process() is None:
        # Direct call (tests, benchmarks): nothing to ship anywhere.
        return _run()

    # Process worker: capture what this restart did and send it home.
    from ..simulator.cache import register_metrics as _register_sim_cache

    reg = obs_metrics.get_registry()
    _register_sim_cache(reg)
    before = reg.snapshot()
    with obs_tracing.capture_spans() as spans:
        result = _run()
    delta = obs_metrics.snapshot_delta(before, reg.snapshot())
    obs: Dict[str, Any] = {}
    if delta:
        obs["metrics"] = delta
    if spans:
        obs["spans"] = [s.to_dict() for s in spans]
    if obs:
        result = dict(result, obs=obs)
    return result


def _select_best(results: List[Dict[str, Any]], seeds: List[int]) -> Dict[str, Any]:
    """Best-utility restart, first index winning ties (deterministic)."""
    best_i = 0
    for i in range(1, len(results)):
        if results[i]["utility"] > results[best_i]["utility"]:
            best_i = i
    best = dict(results[best_i])
    best["restarts"] = len(results)
    best["best_restart"] = best_i
    best["restart_seeds"] = list(seeds)
    best["restart_utilities"] = [r["utility"] for r in results]
    best["seed"] = int(seeds[0])
    # Evaluator cache counters, summed across restarts (each restart
    # runs its own incremental PlanEvaluator in its own worker).
    totals: Dict[str, int] = {}
    for r in results:
        ev = r.get("evaluator")
        if isinstance(ev, dict):
            for key, value in ev.items():
                totals[key] = totals.get(key, 0) + int(value)
    if totals:
        best["evaluator"] = totals
    return best


class SolverPool:
    """Parallel multi-start solves over a process (or thread) executor.

    Parameters
    ----------
    processes:
        Worker processes.  ``None`` → ``min(DEFAULT, cpu_count)``;
        ``0`` → a thread executor (no fork; workers share the GIL but
        tests and small demos don't care).
    restarts:
        Default restart count for requests that don't specify one.
    """

    def __init__(
        self, processes: Optional[int] = None, restarts: int = DEFAULT_RESTARTS
    ) -> None:
        if restarts < 1:
            raise ServiceError(f"restarts must be >= 1, got {restarts}")
        self.restarts = int(restarts)
        if processes is None:
            processes = max(1, min(self.restarts, os.cpu_count() or 1))
        self.processes = int(processes)
        self._executor: Optional[Executor] = None
        self._metrics: Optional[obs_metrics.MetricsRegistry] = None
        self.tasks_started = 0
        self.tasks_completed = 0
        self.solves_completed = 0

    def bind_metrics(
        self, registry: obs_metrics.MetricsRegistry, key: str = "solver_pool"
    ) -> None:
        """Roll this pool's activity up into ``registry``.

        Two effects: a keyed collector mirrors the pool's own plain-int
        counters (``cast_pool_tasks_total{stage=...}``,
        ``cast_pool_solves_total``), and future solves merge worker-side
        metric deltas and spans into ``registry`` instead of the global
        one (thread workers record into it directly).
        """
        self._metrics = registry

        def _mirror(reg: obs_metrics.MetricsRegistry) -> None:
            tasks = reg.counter(
                "cast_pool_tasks_total",
                "Restart tasks by lifecycle stage",
                labelnames=("stage",),
            )
            tasks.set_total(self.tasks_started, stage="started")
            tasks.set_total(self.tasks_completed, stage="completed")
            reg.counter(
                "cast_pool_solves_total", "Multi-start solves completed"
            ).set_total(self.solves_completed)

        registry.register_collector(key, _mirror)

    # -- executor lifecycle --------------------------------------------------

    @property
    def executor(self) -> Executor:
        """The lazily-created backing executor."""
        if self._executor is None:
            if self.processes == 0:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, min(self.restarts, os.cpu_count() or 1)),
                    thread_name_prefix="cast-solver",
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def shutdown(self, wait: bool = True) -> None:
        """Drain and release the executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    # -- solving -------------------------------------------------------------

    def _tasks(
        self, request: Mapping[str, Any], restarts: Optional[int]
    ) -> Tuple[List[Dict[str, Any]], List[int]]:
        n = self.restarts if restarts is None else int(restarts)
        seeds = restart_seeds(int(request.get("seed", 42)), n)
        tasks = [dict(request, seed=s) for s in seeds]
        ctx = obs_tracing.current_context()
        thread_metrics = self._metrics if self.processes == 0 else None
        for task in tasks:
            task["_trace"] = ctx
            if thread_metrics is not None:
                task["_metrics"] = thread_metrics
        return tasks, seeds

    def _absorb(self, results: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Merge worker-shipped ``result["obs"]`` payloads, stripping them.

        Process workers attach a metrics snapshot-delta and their
        finished spans (see :func:`solve_restart`); both are folded into
        the bound registry (or the global one) here, in the parent.
        Thread workers recorded directly, so they ship nothing.
        """
        absorbed: List[Dict[str, Any]] = []
        for result in results:
            obs = result.get("obs")
            if obs is not None:
                result = dict(result)
                obs = result.pop("obs")
                metrics = obs.get("metrics")
                if metrics:
                    (self._metrics or obs_metrics.get_registry()).merge(metrics)
                spans = obs.get("spans")
                if spans:
                    obs_tracing.ingest(spans)
            absorbed.append(result)
        return absorbed

    def solve_sync(
        self, request: Mapping[str, Any], restarts: Optional[int] = None
    ) -> Dict[str, Any]:
        """Blocking multi-start solve (CLI fallback, benchmarks)."""
        with obs_tracing.span(
            "pool.solve", attrs={"op": request.get("op")}
        ) as sp:
            tasks, seeds = self._tasks(request, restarts)
            sp.attrs["restarts"] = len(tasks)
            self.tasks_started += len(tasks)
            futures = [self.executor.submit(solve_restart, t) for t in tasks]
            results = self._absorb([f.result() for f in futures])
            self.tasks_completed += len(results)
            self.solves_completed += 1
            return _select_best(results, seeds)

    async def solve(
        self, request: Mapping[str, Any], restarts: Optional[int] = None
    ) -> Dict[str, Any]:
        """Async multi-start solve: restarts fan out across workers."""
        loop = asyncio.get_running_loop()
        with obs_tracing.span(
            "pool.solve", attrs={"op": request.get("op")}
        ) as sp:
            tasks, seeds = self._tasks(request, restarts)
            sp.attrs["restarts"] = len(tasks)
            self.tasks_started += len(tasks)
            results = await asyncio.gather(
                *(loop.run_in_executor(self.executor, solve_restart, t) for t in tasks)
            )
            results = self._absorb(list(results))
            self.tasks_completed += len(results)
            self.solves_completed += 1
            return _select_best(results, seeds)

    def stats(self) -> Dict[str, int]:
        """Counters for the ``stats`` op."""
        return {
            "processes": self.processes,
            "default_restarts": self.restarts,
            "tasks_started": self.tasks_started,
            "tasks_completed": self.tasks_completed,
            "solves_completed": self.solves_completed,
        }
