"""Multi-start solver pool on a ``ProcessPoolExecutor``.

Simulated annealing is a stochastic local search: one restart can stall
in a utility basin.  The pool runs N restarts *in parallel* — same
request, different RNG seeds — and keeps the best-utility plan, which
both raises plan quality and cuts wall-clock versus running a bigger
single-start budget serially.

Determinism: restart seeds derive from the request seed via
``np.random.SeedSequence(seed).spawn()``, with restart 0 pinned to the
request seed itself.  Consequences the tests assert:

* the same (request, restarts) pair always yields the identical plan,
  regardless of pool size or completion order;
* the multi-start winner's utility is ≥ the single-start result for
  the same seed (restart 0 *is* that run, and selection only improves).

Workers call the pure module-level entry points
(:func:`repro.core.solver.solve_workload_request`,
:func:`repro.core.castpp.solve_workflow_request`), so every task
pickles as plain dicts and the child processes share no state with the
server.  ``processes=0`` swaps in threads — no fork, handy for
in-process servers in tests and examples.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ServiceError

__all__ = ["DEFAULT_RESTARTS", "SolverPool", "restart_seeds", "solve_restart"]

#: Restart count used when a request does not ask for one.
DEFAULT_RESTARTS = 4


def restart_seeds(seed: int, restarts: int) -> List[int]:
    """Per-restart RNG seeds, deterministic for a given request seed.

    Restart 0 reuses the request seed unchanged (so the multi-start
    winner can never fall below the single-start plan for that seed);
    restarts 1..N-1 come from ``SeedSequence(seed).spawn``, giving
    well-separated independent streams rather than ad-hoc offsets.
    """
    if restarts < 1:
        raise ServiceError(f"restarts must be >= 1, got {restarts}")
    seeds = [int(seed)]
    if restarts > 1:
        children = np.random.SeedSequence(int(seed)).spawn(restarts - 1)
        seeds.extend(int(child.generate_state(1)[0]) for child in children)
    return seeds


def solve_restart(task: Mapping[str, Any]) -> Dict[str, Any]:
    """Solve one restart of one request (the picklable worker body).

    ``task`` is ``{"op", "spec", "provider", "n_vms", "iterations",
    "seed", "use_castpp", "backend", "replicas"}`` — all JSON
    primitives.
    """
    from ..core.castpp import solve_workflow_request
    from ..core.solver import solve_workload_request

    op = task.get("op")
    if op == "plan":
        return solve_workload_request(
            task["spec"],
            provider=task.get("provider", "google"),
            n_vms=task.get("n_vms", 25),
            iterations=task.get("iterations", 3000),
            seed=task.get("seed", 42),
            use_castpp=task.get("use_castpp", True),
            backend=task.get("backend", "anneal"),
            replicas=task.get("replicas", 8),
        )
    if op == "plan_workflow":
        return solve_workflow_request(
            task["spec"],
            provider=task.get("provider", "google"),
            n_vms=task.get("n_vms", 25),
            iterations=task.get("iterations", 3000),
            seed=task.get("seed", 42),
        )
    raise ServiceError(f"pool cannot solve op {op!r}")


def _select_best(results: List[Dict[str, Any]], seeds: List[int]) -> Dict[str, Any]:
    """Best-utility restart, first index winning ties (deterministic)."""
    best_i = 0
    for i in range(1, len(results)):
        if results[i]["utility"] > results[best_i]["utility"]:
            best_i = i
    best = dict(results[best_i])
    best["restarts"] = len(results)
    best["best_restart"] = best_i
    best["restart_seeds"] = list(seeds)
    best["restart_utilities"] = [r["utility"] for r in results]
    best["seed"] = int(seeds[0])
    # Evaluator cache counters, summed across restarts (each restart
    # runs its own incremental PlanEvaluator in its own worker).
    totals: Dict[str, int] = {}
    for r in results:
        ev = r.get("evaluator")
        if isinstance(ev, dict):
            for key, value in ev.items():
                totals[key] = totals.get(key, 0) + int(value)
    if totals:
        best["evaluator"] = totals
    return best


class SolverPool:
    """Parallel multi-start solves over a process (or thread) executor.

    Parameters
    ----------
    processes:
        Worker processes.  ``None`` → ``min(DEFAULT, cpu_count)``;
        ``0`` → a thread executor (no fork; workers share the GIL but
        tests and small demos don't care).
    restarts:
        Default restart count for requests that don't specify one.
    """

    def __init__(
        self, processes: Optional[int] = None, restarts: int = DEFAULT_RESTARTS
    ) -> None:
        if restarts < 1:
            raise ServiceError(f"restarts must be >= 1, got {restarts}")
        self.restarts = int(restarts)
        if processes is None:
            processes = max(1, min(self.restarts, os.cpu_count() or 1))
        self.processes = int(processes)
        self._executor: Optional[Executor] = None
        self.tasks_started = 0
        self.tasks_completed = 0
        self.solves_completed = 0

    # -- executor lifecycle --------------------------------------------------

    @property
    def executor(self) -> Executor:
        """The lazily-created backing executor."""
        if self._executor is None:
            if self.processes == 0:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, min(self.restarts, os.cpu_count() or 1)),
                    thread_name_prefix="cast-solver",
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.processes)
        return self._executor

    def shutdown(self, wait: bool = True) -> None:
        """Drain and release the executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    # -- solving -------------------------------------------------------------

    def _tasks(
        self, request: Mapping[str, Any], restarts: Optional[int]
    ) -> Tuple[List[Dict[str, Any]], List[int]]:
        n = self.restarts if restarts is None else int(restarts)
        seeds = restart_seeds(int(request.get("seed", 42)), n)
        return [dict(request, seed=s) for s in seeds], seeds

    def solve_sync(
        self, request: Mapping[str, Any], restarts: Optional[int] = None
    ) -> Dict[str, Any]:
        """Blocking multi-start solve (CLI fallback, benchmarks)."""
        tasks, seeds = self._tasks(request, restarts)
        self.tasks_started += len(tasks)
        futures = [self.executor.submit(solve_restart, t) for t in tasks]
        results = [f.result() for f in futures]
        self.tasks_completed += len(results)
        self.solves_completed += 1
        return _select_best(results, seeds)

    async def solve(
        self, request: Mapping[str, Any], restarts: Optional[int] = None
    ) -> Dict[str, Any]:
        """Async multi-start solve: restarts fan out across workers."""
        loop = asyncio.get_running_loop()
        tasks, seeds = self._tasks(request, restarts)
        self.tasks_started += len(tasks)
        results = await asyncio.gather(
            *(loop.run_in_executor(self.executor, solve_restart, t) for t in tasks)
        )
        self.tasks_completed += len(results)
        self.solves_completed += 1
        return _select_best(list(results), seeds)

    def stats(self) -> Dict[str, int]:
        """Counters for the ``stats`` op."""
        return {
            "processes": self.processes,
            "default_restarts": self.restarts,
            "tasks_started": self.tasks_started,
            "tasks_completed": self.tasks_completed,
            "solves_completed": self.solves_completed,
        }
