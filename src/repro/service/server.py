"""The planner daemon: an asyncio TCP server over the solver pool.

Request lifecycle for the solve ops (``plan`` / ``plan_workflow``)::

    parse → normalize params → fingerprint
          → cache hit?            → answer from the LRU, no solver work
          → identical solve inflight? → await it (single-flight dedup)
          → admission check       → reject with ServiceBusyError when
                                    inflight + queued > the limits
          → multi-start solve on the pool, under a per-request timeout
          → cache + fan the result out to every waiter

Single-flight dedup means a burst of identical requests — the common
shape for a planning service, since tenants re-submit recurring
workloads — costs exactly one solve; everyone else awaits the leader's
future.  Failures propagate to all waiters but are *not* cached, so a
transient failure doesn't poison the fingerprint.

The server is one asyncio loop; all heavy work happens in the pool's
worker processes, so the loop stays responsive for ``ping``/``stats``
even while solves run.  ``stop()`` drains: no new connections, inflight
solves finish, then the pool shuts down.

Observability: every server owns a :class:`~repro.obs.metrics.MetricsRegistry`
into which all its moving parts report — service request/event counters,
a solve-latency histogram, the plan cache, the solver pool (including
deltas shipped home by process workers), the simulation cache and the
evaluator totals.  The ``metrics`` op exposes it (Prometheus text or
JSON); the legacy ``stats`` payload is now *derived* from the registry,
byte-compatible with the old hand-rolled dicts.  Each request runs
inside a ``service.request`` span and every response carries its
``trace_id``.

On top of the raw registry sits the operational layer: the dispatch
loop times every request into ``cast_op_latency_seconds{op}`` /
``cast_op_requests_total{op,outcome}`` and the flight recorder's ring
(:mod:`repro.obs.flightrec`), an :class:`~repro.obs.slo.SLOEngine`
evaluates burn rates from those series (the ``slo`` op; a background
tick when ``slo_eval_interval_s`` > 0), a ``page`` transition
auto-writes a JSONL postmortem bundle into ``dump_dir``, the
``profile`` op runs the sampling profiler, and ``debug_dump`` returns
a bundle over the wire.
"""

from __future__ import annotations

import asyncio
import logging
import os
import time
from typing import Any, Dict, Mapping, Optional, Sequence, Set, Tuple

from ..cloud import resolve_provider
from ..errors import (
    CastError,
    ProtocolError,
    ServiceBusyError,
    ServiceError,
    ServiceTimeoutError,
)
from ..obs.flightrec import FlightRecorder, build_bundle, dump_bundle
from ..obs.metrics import MetricsRegistry
from ..obs.sampler import SamplingProfiler
from ..obs.slo import BurnPolicy, Objective, SLOEngine, Transition
from ..obs.tracing import current_trace_id, span
from ..simulator.cache import register_metrics as register_sim_cache_metrics
from ..simulator.vectorized import register_fastpath_metrics
from .cache import PlanCache
from .fingerprint import request_fingerprint, sweep_fingerprint, whatif_fingerprint
from .pool import SolverPool
from .sessions import SessionManager
from .protocol import (
    MAX_LINE_BYTES,
    error_response,
    ok_response,
    parse_request,
    read_message,
    send_message,
)

__all__ = ["PlannerServer"]

logger = logging.getLogger(__name__)

#: Event-counter keys, in the order the legacy ``stats`` payload listed
#: them (after ``requests``, which is a separate unlabeled counter).
_EVENT_KEYS = (
    "bad_requests",
    "dedup_joined",
    "solves_ok",
    "solve_errors",
    "timeouts",
    "rejected",
)

#: Ops excluded from the flight-recorder ring: monitoring traffic (a
#: dashboard polling every 2 s) must not evict the solve records a
#: postmortem actually needs.  Their latencies still land in
#: ``cast_op_latency_seconds`` like everyone else's.
_UNRECORDED_OPS = frozenset(
    ("ping", "stats", "metrics", "slo", "profile", "debug_dump")
)

#: ``profile`` op duration ceiling — the op blocks a worker thread for
#: its whole duration, so an unbounded request would be a free DoS.
_MAX_PROFILE_S = 30.0


def _normalize_solve_params(op: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Fill knob defaults and type-check the envelope-level fields.

    Spec-level validation (job records, DAG shape...) happens inside
    fingerprinting/solving and raises ``WorkloadError`` on its own.
    """
    spec = params.get("spec")
    if not isinstance(spec, Mapping):
        raise ProtocolError(f"{op} params need a 'spec' object (a workload/workflow dict)")
    try:
        return {
            "op": op,
            "spec": dict(spec),
            "tenant": str(params.get("tenant", "default")),
            "provider": str(params.get("provider", "google")),
            "n_vms": int(params.get("n_vms", 25)),
            "iterations": int(params.get("iterations", 3000)),
            "seed": int(params.get("seed", 42)),
            "use_castpp": bool(params.get("use_castpp", True)),
            "backend": str(params.get("backend", "anneal")),
            "replicas": int(params.get("replicas", 8)),
            "restarts": (
                None if params.get("restarts") is None else int(params["restarts"])
            ),
        }
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad solver knob in {op} params: {exc}") from None


def _normalize_whatif_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate the ``whatif`` envelope: a spec plus exactly one tiering."""
    spec = params.get("spec")
    if not isinstance(spec, Mapping):
        raise ProtocolError("whatif params need a 'spec' object (a workload dict)")
    plan = params.get("plan")
    tier = params.get("tier")
    if (plan is None) == (tier is None):
        raise ProtocolError(
            "whatif params need exactly one of 'plan' (a tiering-plan dict) "
            "or 'tier' (a uniform tier name)"
        )
    if plan is not None and not isinstance(plan, Mapping):
        raise ProtocolError("whatif 'plan' must be an object")
    try:
        return {
            "spec": dict(spec),
            "plan": None if plan is None else dict(plan),
            "tier": None if tier is None else str(tier),
            "tenant": str(params.get("tenant", "default")),
            "provider": str(params.get("provider", "google")),
            "n_vms": int(params.get("n_vms", 25)),
            "fast": bool(params.get("fast", True)),
        }
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad knob in whatif params: {exc}") from None


def _normalize_sweep_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate the ``sweep`` envelope: workload spec(s) plus axes."""
    specs = params.get("specs")
    if specs is None:
        spec = params.get("spec")
        specs = None if spec is None else [spec]
    if (
        not isinstance(specs, (list, tuple))
        or not specs
        or not all(isinstance(s, Mapping) for s in specs)
    ):
        raise ProtocolError(
            "sweep params need 'specs' (a non-empty list of workload "
            "dicts) or 'spec' (a single workload dict)"
        )
    providers = params.get("providers", ["google"])
    if (
        not isinstance(providers, (list, tuple))
        or not providers
        or not all(isinstance(p, str) for p in providers)
    ):
        raise ProtocolError(
            "sweep 'providers' must be a non-empty list of catalog names"
        )
    try:
        return {
            "specs": [dict(s) for s in specs],
            "providers": [str(p) for p in providers],
            "tenant": str(params.get("tenant", "default")),
            "reps": int(params.get("reps", 1)),
            "n_vms": int(params.get("n_vms", 25)),
            "iterations": int(params.get("iterations", 3000)),
            "seed": int(params.get("seed", 42)),
            "use_castpp": bool(params.get("use_castpp", True)),
            "backend": str(params.get("backend", "anneal")),
            "replicas": int(params.get("replicas", 8)),
            "warm": bool(params.get("warm", True)),
            "workers": (
                None if params.get("workers") is None else int(params["workers"])
            ),
        }
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad knob in sweep params: {exc}") from None


def _run_sweep(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Solve the sweep grid (blocking; runs on a worker thread).

    The engine does its own fan-out: with ``workers`` set, waves go
    through a process-pool :class:`~repro.experiments.runner.ExperimentRunner`
    owned by the engine, so the solves never touch the server's solver
    pool — a sweep is one admission-controlled unit of work.
    """
    from ..errors import WorkloadError
    from ..sweep import SweepConfig, SweepEngine
    from ..workloads.io import workload_from_dict

    workloads = []
    for spec in request["specs"]:
        if spec.get("kind") != "workload":
            raise WorkloadError("sweep wants workload specs (kind='workload')")
        workloads.append(workload_from_dict(dict(spec)))
    if request["reps"] < 1:
        raise WorkloadError(f"sweep reps must be >= 1, got {request['reps']}")
    engine = SweepEngine(
        request["providers"],
        workloads,
        knobs=[{"rep": r} for r in range(request["reps"])],
        config=SweepConfig(
            n_vms=request["n_vms"],
            iterations=request["iterations"],
            seed=request["seed"],
            use_castpp=request["use_castpp"],
            backend=request["backend"],
            replicas=request["replicas"],
            warm=request["warm"],
        ),
        workers=request["workers"],
    )
    return engine.run().to_dict()


def _run_whatif(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Measure the requested tiering on the simulator (blocking).

    Runs on a worker thread via :func:`asyncio.to_thread` — the
    measurement is simulation-bound (milliseconds on the fast path,
    seconds on the exact engine), not solver-bound, so it never goes
    through the solver pool.
    """
    from ..cloud.storage import Tier
    from ..cloud.vm import ClusterSpec
    from ..core.plan import TieringPlan
    from ..errors import WorkloadError
    from ..experiments.measure import measure_plan
    from ..experiments.runner import ExperimentRunner
    from ..workloads.io import workload_from_dict

    spec = request["spec"]
    if spec.get("kind") != "workload":
        raise WorkloadError("whatif wants a workload spec (kind='workload')")
    workload = workload_from_dict(dict(spec))
    prov = resolve_provider(request["provider"])
    cluster = ClusterSpec(n_vms=request["n_vms"])
    if request["plan"] is not None:
        plan = TieringPlan.from_dict(dict(request["plan"]))
    else:
        try:
            tier = Tier(request["tier"])
        except ValueError:
            raise WorkloadError(f"unknown tier {request['tier']!r}") from None
        plan = TieringPlan.uniform(workload, tier)
    fast = bool(request["fast"])
    with ExperimentRunner(0, fast_path=fast) as runner:
        measured = measure_plan(
            workload, plan, cluster, prov, runner=runner if fast else None
        )
    return {
        "makespan_s": measured.makespan_s,
        "makespan_min": measured.makespan_min,
        "cost_total_usd": measured.cost.total_usd,
        "cost_vm_usd": measured.cost.vm_usd,
        "cost_storage_usd": measured.cost.storage_usd,
        "utility": measured.utility,
        "n_jobs": workload.n_jobs,
        "fast": fast,
        "per_job": {
            job_id: {
                "download_s": r.download_s,
                "map_s": r.map_s,
                "reduce_s": r.reduce_s,
                "upload_s": r.upload_s,
                "total_s": r.total_s,
            }
            for job_id, r in measured.per_job.items()
        },
    }


class PlannerServer:
    """Long-lived planning daemon with caching and single-flight dedup.

    Parameters
    ----------
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    pool:
        A :class:`SolverPool`; built from ``pool_processes``/``restarts``
        when omitted.
    cache_size:
        LRU plan-cache capacity (entries).
    max_inflight:
        Solves running on the pool concurrently; further solves queue.
    max_queue:
        Queued solves beyond ``max_inflight`` before new unique requests
        are shed with :class:`ServiceBusyError` (dedup'd and cached
        requests are never shed — they cost no solver work).
    request_timeout_s:
        Per-solve deadline; breaches answer :class:`ServiceTimeoutError`.
    solver_fn:
        Test seam: ``async (request_dict) -> result_dict`` replacing the
        pool solve.
    registry:
        Metrics registry to report into; each server gets its own fresh
        one when omitted, so per-server counters always start at zero.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pool: Optional[SolverPool] = None,
        pool_processes: Optional[int] = None,
        restarts: Optional[int] = None,
        cache_size: int = 128,
        max_inflight: int = 4,
        max_queue: int = 64,
        request_timeout_s: float = 600.0,
        solver_fn: Optional[Any] = None,
        registry: Optional[MetricsRegistry] = None,
        slo_objectives: Optional[Sequence[Objective]] = None,
        slo_policy: Optional[BurnPolicy] = None,
        slo_clock: Optional[Any] = None,
        slo_eval_interval_s: float = 5.0,
        dump_dir: Optional[str] = None,
        flight_capacity: int = 512,
        flight_exemplars: int = 8,
    ) -> None:
        if max_inflight < 1:
            raise ServiceError(f"max_inflight must be >= 1, got {max_inflight}")
        self.host = host
        self.port = port
        if pool is None:
            kwargs: Dict[str, Any] = {"processes": pool_processes}
            if restarts is not None:
                kwargs["restarts"] = restarts
            pool = SolverPool(**kwargs)
        self.pool = pool
        self.cache = PlanCache(capacity=cache_size)
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self.request_timeout_s = float(request_timeout_s)
        self._solver_fn = solver_fn
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._solve_sem = asyncio.Semaphore(self.max_inflight)
        self._admitted = 0  # solves admitted but not yet finished
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "cast_service_requests_total", "Request lines received"
        )
        self._events = self.metrics.counter(
            "cast_service_events_total",
            "Service lifecycle events by kind",
            labelnames=("event",),
        )
        self._ops = self.metrics.counter(
            "cast_service_ops_total", "Requests by op", labelnames=("op",)
        )
        self._tenant_requests = self.metrics.counter(
            "cast_service_tenant_requests_total",
            "Solve requests by tenant",
            labelnames=("tenant",),
        )
        self._evaluator_events = self.metrics.counter(
            "cast_evaluator_events_total",
            "Incremental-evaluator cache counters, summed over solves",
            labelnames=("counter",),
        )
        self._solve_seconds = self.metrics.histogram(
            "cast_service_solve_seconds",
            "End-to-end wall time of non-cached solves",
        )
        self._op_latency = self.metrics.histogram(
            "cast_op_latency_seconds",
            "Wire-level request latency by op",
            labelnames=("op",),
        )
        self._op_requests = self.metrics.counter(
            "cast_op_requests_total",
            "Wire-level requests by op and outcome",
            labelnames=("op", "outcome"),
        )
        self.sessions = SessionManager(registry=self.metrics)
        self.cache.bind_metrics(self.metrics)
        self.pool.bind_metrics(self.metrics)
        register_sim_cache_metrics(self.metrics)
        register_fastpath_metrics(self.metrics)

        self.recorder = FlightRecorder(
            capacity=flight_capacity, exemplars=flight_exemplars
        )
        self.recorder.bind_metrics(self.metrics)
        self.dump_dir = dump_dir
        self.slo_eval_interval_s = float(slo_eval_interval_s)
        self.slo = SLOEngine(
            slo_objectives, policy=slo_policy, clock=slo_clock
        )
        self.slo.bind_metrics(self.metrics)
        self.slo.on_transition(self._on_slo_transition)
        self._slo_task: Optional["asyncio.Task[None]"] = None
        self._reset_stats()

    def _reset_stats(self) -> None:
        """Zero the uptime clock and every service counter.

        One reset path shared by ``__init__`` and :meth:`start` (which
        used to each stamp ``_started_at`` by hand).  Registry reset
        clears the service-owned series; the mirrored caches/pool keep
        their own ints and simply re-publish on the next exposition.
        """
        self._started_at = time.monotonic()
        self.metrics.reset()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reset_stats()
        if self.slo_eval_interval_s > 0:
            self._slo_task = asyncio.create_task(self._slo_loop())
        logger.info("planner daemon listening on %s:%d", self.host, self.port)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — port resolved after :meth:`start`."""
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop`-ped."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain solves, close the pool."""
        if self._slo_task is not None:
            self._slo_task.cancel()
            try:
                await self._slo_task
            except asyncio.CancelledError:
                pass
            self._slo_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._inflight:
            await asyncio.gather(
                *list(self._inflight.values()), return_exceptions=True
            )
        for writer in list(self._connections):
            writer.close()
        self.pool.shutdown(wait=True)
        logger.info("planner daemon stopped")

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                line = await read_message(reader)
                if line is None:
                    break
                if not line.strip():
                    continue
                self._requests_total.inc()
                try:
                    request = parse_request(line)
                except ProtocolError as exc:
                    # Malformed input answers a typed error on the same
                    # connection; the line framing is still intact, so
                    # the session continues.
                    self._events.inc(event="bad_requests")
                    logger.debug("bad request line: %s", exc)
                    await send_message(writer, error_response(None, exc))
                    continue
                response = await self._dispatch(request)
                await send_message(writer, response)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler mid-read; the
            # socket closes below — nothing to propagate to the loop.
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        req_id = request.get("id")
        params = request["params"]
        self._ops.inc(op=op)
        with span("service.request", attrs={"op": op}) as sp:
            started = time.monotonic()
            try:
                response = await self._dispatch_inner(op, req_id, params)
            except asyncio.CancelledError:
                raise
            except CastError as exc:
                response = error_response(req_id, exc)
            except Exception as exc:  # daemon must outlive any one request
                self._events.inc(event="solve_errors")
                logger.exception("internal error handling op %r", op)
                response = error_response(
                    req_id, ServiceError(f"internal error: {exc!r}")
                )
            response["trace_id"] = sp.trace_id
            self._record_request(
                op, params, response, time.monotonic() - started, sp.trace_id
            )
            return response

    def _record_request(
        self,
        op: str,
        params: Mapping[str, Any],
        response: Mapping[str, Any],
        latency_s: float,
        trace_id: Optional[str],
    ) -> None:
        """Per-op latency/outcome metrics + one flight-recorder record."""
        ok = bool(response.get("ok"))
        self._op_latency.observe(latency_s, op=op)
        self._op_requests.inc(op=op, outcome="ok" if ok else "error")
        if op in _UNRECORDED_OPS:
            return
        error = None
        if not ok:
            error = str(response.get("error", {}).get("type", "error"))
        tenant = params.get("tenant")
        self.recorder.record(
            op=op,
            latency_s=latency_s,
            ok=ok,
            cached=bool(response.get("cached", False)),
            tenant=str(tenant) if tenant is not None else None,
            error=error,
            trace_id=trace_id,
        )

    async def _dispatch_inner(
        self, op: str, req_id: Any, params: Mapping[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return ok_response(req_id, {"pong": True, "uptime_s": self.uptime_s})
        if op == "stats":
            return ok_response(req_id, self.stats())
        if op == "metrics":
            return ok_response(req_id, self._metrics_op(params))
        if op == "slo":
            return ok_response(req_id, self._slo_op(params))
        if op == "profile":
            return ok_response(req_id, await self._profile_op(params))
        if op == "debug_dump":
            return ok_response(req_id, self._debug_dump_op(params))
        if op == "catalog":
            return ok_response(req_id, self._catalog(params))
        if op in ("register", "deregister"):
            raise ProtocolError(
                f"op {op!r} is served by the fleet router, not a planner "
                f"shard — point the registration at 'cast-plan fleet'"
            )
        if op == "whatif":
            result, cached = await self._whatif_op(params)
            return ok_response(req_id, result, cached=cached)
        if op == "sweep":
            result, cached = await self._sweep_op(params)
            return ok_response(req_id, result, cached=cached)
        if op == "session_open":
            return ok_response(req_id, await self.sessions.open(params))
        if op == "session_delta":
            return ok_response(req_id, await self.sessions.delta(params))
        if op == "session_close":
            return ok_response(req_id, await self.sessions.close(params))
        result, cached = await self._solve_op(op, params)
        return ok_response(req_id, result, cached=cached)

    # -- ops -------------------------------------------------------------------

    def _catalog(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        provider = resolve_provider(str(params.get("provider", "google")))
        tiers = []
        for tier in provider.tiers:
            svc = provider.service(tier)
            tiers.append(
                {
                    "tier": tier.value,
                    "persistent": bool(svc.persistent),
                    "price_gb_month": svc.price_gb_month,
                    "price_gb_hr": provider.storage_price_gb_hr(tier),
                }
            )
        return {
            "provider": provider.name,
            "tiers": tiers,
            "vm": {
                "name": provider.default_vm.name,
                "price_per_hour_usd": provider.prices.vm_price_per_min * 60,
            },
        }

    def _metrics_op(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The ``metrics`` op: the registry in Prometheus text or JSON.

        The JSON exposition carries the flight recorder's slowest-K
        exemplars on each per-op latency series — a p99 spike arrives
        with trace ids attached.
        """
        fmt = str(params.get("format", "prometheus")).lower()
        if fmt == "prometheus":
            return {"format": "prometheus", "body": self.metrics.to_prometheus()}
        if fmt == "json":
            return {
                "format": "json",
                "metrics": self.recorder.attach_exemplars(
                    self.metrics.to_json()
                ),
            }
        raise ProtocolError(
            f"unknown metrics format {fmt!r} (expected 'prometheus' or 'json')"
        )

    # -- operational ops -------------------------------------------------------

    def _slo_op(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The ``slo`` op: evaluate the engine on a fresh snapshot.

        Transitions fire synchronously here (the same path the
        background tick uses), so a ``page`` entered during this very
        evaluation has already written its dump by the time the
        response leaves.
        """
        return self.slo.evaluate(registry=self.metrics)

    async def _profile_op(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The ``profile`` op: sample this process, return the profile."""
        try:
            duration_s = float(params.get("duration_s", 1.0))
            interval_s = float(params.get("interval_s", 0.005))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad profile params: {exc}") from None
        if not 0.0 < duration_s <= _MAX_PROFILE_S:
            raise ProtocolError(
                f"profile duration_s must be in (0, {_MAX_PROFILE_S:g}], "
                f"got {duration_s}"
            )
        if interval_s <= 0:
            raise ProtocolError(
                f"profile interval_s must be > 0, got {interval_s}"
            )
        profiler = SamplingProfiler(interval_s=interval_s)
        # The sampler sleeps for the whole duration — park it on a
        # worker thread so the event loop keeps serving (and shows up
        # in its own samples).
        return await asyncio.to_thread(profiler.run_for, duration_s)

    def _debug_dump_op(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The ``debug_dump`` op: one postmortem bundle, over the wire."""
        return self._build_bundle(reason=str(params.get("reason", "request")))

    def _build_bundle(self, reason: str) -> Dict[str, Any]:
        return build_bundle(
            registry=self.metrics,
            recorder=self.recorder,
            slo_report=self.slo.last_report,
            config=self._config_payload(),
            reason=reason,
        )

    def _config_payload(self) -> Dict[str, Any]:
        return {
            "role": "server",
            "host": self.host,
            "port": self.port,
            "limits": {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "request_timeout_s": self.request_timeout_s,
            },
            "pool": {
                "processes": self.pool.processes,
                "restarts": self.pool.restarts,
            },
            "cache_capacity": self.cache.capacity,
            "slo": self.slo.config(),
            "dump_dir": self.dump_dir,
        }

    def _on_slo_transition(self, edge: Transition) -> None:
        """Engine callback: auto-dump a bundle on every page entry."""
        logger.warning(
            "SLO %s: %s -> %s", edge.op, edge.old, edge.new
        )
        if edge.new != "page":
            return
        path = self._write_dump(reason=f"page-{edge.op}")
        if path is not None:
            logger.warning("SLO page on %s: wrote debug dump %s", edge.op, path)

    def _write_dump(self, reason: str) -> Optional[str]:
        """Write one bundle into ``dump_dir`` (None = dumping disabled)."""
        if not self.dump_dir:
            return None
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            stamp = int(time.time() * 1000)
            path = os.path.join(
                self.dump_dir, f"castdump-{stamp}-{reason}.jsonl"
            )
            dump_bundle(path, self._build_bundle(reason=reason))
            self._events.inc(event="debug_dumps")
            return path
        except OSError:
            logger.exception("failed to write debug dump; continuing")
            return None

    async def _slo_loop(self) -> None:
        """Background tick: evaluate the SLO engine even when idle —
        states must decay back to ``ok`` without traffic forcing an
        evaluation."""
        while True:
            await asyncio.sleep(self.slo_eval_interval_s)
            try:
                self.slo.evaluate(registry=self.metrics)
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - defensive
                logger.exception("SLO evaluation failed; continuing")

    async def _solve_op(
        self, op: str, params: Mapping[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        normalized = _normalize_solve_params(op, params)
        self._tenant_requests.inc(tenant=normalized.pop("tenant"))
        restarts = normalized.pop("restarts") or self.pool.restarts
        fingerprint = request_fingerprint(
            op,
            normalized["spec"],
            provider=normalized["provider"],
            n_vms=normalized["n_vms"],
            iterations=normalized["iterations"],
            seed=normalized["seed"],
            use_castpp=normalized["use_castpp"],
            restarts=restarts,
            backend=normalized["backend"],
            replicas=normalized["replicas"],
        )

        cached = self.cache.get(fingerprint)
        if cached is not None:
            # Re-stamp with *this* request's trace id — the cached dict
            # remembers the trace that originally solved it.
            return dict(
                cached,
                fingerprint=fingerprint,
                trace_id=current_trace_id(),
            ), True

        leader_future = self._inflight.get(fingerprint)
        if leader_future is not None:
            # Single-flight: identical request already solving — await it.
            self._events.inc(event="dedup_joined")
            result = await asyncio.shield(leader_future)
            return dict(
                result, fingerprint=fingerprint, trace_id=current_trace_id()
            ), False

        if self._admitted >= self.max_inflight + self.max_queue:
            self._events.inc(event="rejected")
            logger.warning(
                "shedding %s request: %d solves admitted "
                "(limit %d inflight + %d queued)",
                op, self._admitted, self.max_inflight, self.max_queue,
            )
            raise ServiceBusyError(
                f"server at capacity ({self._admitted} solves admitted, "
                f"limit {self.max_inflight} inflight + {self.max_queue} queued)"
            )

        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[fingerprint] = future
        self._admitted += 1
        try:
            async with self._solve_sem:
                started = time.monotonic()
                with span(
                    "service.solve",
                    attrs={"op": op, "restarts": restarts},
                ) as solve_span:
                    try:
                        result = await asyncio.wait_for(
                            self._run_solver(normalized, restarts),
                            timeout=self.request_timeout_s,
                        )
                    except asyncio.TimeoutError:
                        self._events.inc(event="timeouts")
                        logger.warning(
                            "%s solve exceeded %.0fs deadline",
                            op, self.request_timeout_s,
                        )
                        raise ServiceTimeoutError(
                            f"solve exceeded {self.request_timeout_s:.0f}s deadline"
                        ) from None
            elapsed = time.monotonic() - started
            result = dict(result)
            result["solve_seconds"] = elapsed
            result["trace_id"] = solve_span.trace_id
            self._solve_seconds.observe(elapsed)
            self._events.inc(event="solves_ok")
            ev = result.get("evaluator")
            if isinstance(ev, dict):
                for key, value in ev.items():
                    self._evaluator_events.inc(int(value), counter=key)
            self.cache.put(fingerprint, result)
            future.set_result(result)
        except BaseException as exc:
            if isinstance(exc, CastError):
                self._events.inc(event="solve_errors")
            future.set_exception(exc)
            # The dedup waiters consume the exception; don't warn when
            # nobody else was waiting.
            future.exception()
            raise
        finally:
            self._admitted -= 1
            self._inflight.pop(fingerprint, None)
        return dict(result, fingerprint=fingerprint), False

    async def _whatif_op(
        self, params: Mapping[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        """The ``whatif`` op: measure a fixed tiering, cached + deduped.

        Same fingerprint-keyed cache and single-flight as the solve
        ops, but no admission control or pool involvement — a whatif
        is one simulation pass, cheap enough to run on a worker thread
        while the loop stays live.
        """
        normalized = _normalize_whatif_params(params)
        self._tenant_requests.inc(tenant=normalized.pop("tenant"))
        fingerprint = whatif_fingerprint(
            normalized["spec"],
            plan=normalized["plan"],
            tier=normalized["tier"],
            provider=normalized["provider"],
            n_vms=normalized["n_vms"],
            fast=normalized["fast"],
        )

        cached = self.cache.get(fingerprint)
        if cached is not None:
            return dict(
                cached, fingerprint=fingerprint, trace_id=current_trace_id()
            ), True

        leader_future = self._inflight.get(fingerprint)
        if leader_future is not None:
            self._events.inc(event="dedup_joined")
            result = await asyncio.shield(leader_future)
            return dict(
                result, fingerprint=fingerprint, trace_id=current_trace_id()
            ), False

        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[fingerprint] = future
        try:
            started = time.monotonic()
            with span(
                "service.whatif", attrs={"fast": normalized["fast"]}
            ) as whatif_span:
                result = await asyncio.to_thread(_run_whatif, normalized)
            result = dict(result)
            result["measure_seconds"] = time.monotonic() - started
            result["trace_id"] = whatif_span.trace_id
            self._events.inc(event="whatifs_ok")
            self.cache.put(fingerprint, result)
            future.set_result(result)
        except BaseException as exc:
            if isinstance(exc, CastError):
                self._events.inc(event="solve_errors")
            future.set_exception(exc)
            future.exception()
            raise
        finally:
            self._inflight.pop(fingerprint, None)
        return dict(result, fingerprint=fingerprint), False

    async def _sweep_op(
        self, params: Mapping[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        """The ``sweep`` op: a cross-catalog grid, cached + deduped.

        Same fingerprint-keyed cache and single-flight as ``whatif``.
        The engine owns its own process-pool fan-out (the ``workers``
        knob), so the whole sweep runs as one worker-thread unit and
        the server's solver pool stays free for interactive solves.
        """
        normalized = _normalize_sweep_params(params)
        self._tenant_requests.inc(tenant=normalized.pop("tenant"))
        fingerprint = sweep_fingerprint(
            normalized["specs"],
            normalized["providers"],
            reps=normalized["reps"],
            n_vms=normalized["n_vms"],
            iterations=normalized["iterations"],
            seed=normalized["seed"],
            use_castpp=normalized["use_castpp"],
            backend=normalized["backend"],
            replicas=normalized["replicas"],
            warm=normalized["warm"],
        )

        cached = self.cache.get(fingerprint)
        if cached is not None:
            return dict(
                cached, fingerprint=fingerprint, trace_id=current_trace_id()
            ), True

        leader_future = self._inflight.get(fingerprint)
        if leader_future is not None:
            self._events.inc(event="dedup_joined")
            result = await asyncio.shield(leader_future)
            return dict(
                result, fingerprint=fingerprint, trace_id=current_trace_id()
            ), False

        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[fingerprint] = future
        try:
            started = time.monotonic()
            with span(
                "service.sweep",
                attrs={
                    "catalogs": len(normalized["providers"]),
                    "workloads": len(normalized["specs"]),
                },
            ) as sweep_span:
                result = await asyncio.to_thread(_run_sweep, normalized)
            result = dict(result)
            result["sweep_seconds"] = time.monotonic() - started
            result["trace_id"] = sweep_span.trace_id
            self._events.inc(event="sweeps_ok")
            self.cache.put(fingerprint, result)
            future.set_result(result)
        except BaseException as exc:
            if isinstance(exc, CastError):
                self._events.inc(event="solve_errors")
            future.set_exception(exc)
            future.exception()
            raise
        finally:
            self._inflight.pop(fingerprint, None)
        return dict(result, fingerprint=fingerprint), False

    async def _run_solver(
        self, request: Dict[str, Any], restarts: int
    ) -> Dict[str, Any]:
        if self._solver_fn is not None:
            return await self._solver_fn(dict(request, restarts=restarts))
        return await self.pool.solve(request, restarts=restarts)

    # -- introspection ---------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        """Seconds since :meth:`start`."""
        return time.monotonic() - self._started_at

    @property
    def counters(self) -> Dict[str, int]:
        """Legacy counters dict, derived from the metrics registry.

        Same keys and ordering as the pre-registry hand-rolled dict;
        kept as a read-only view for the ``stats`` payload and tests.
        """
        out = {"requests": int(self._requests_total.value())}
        for event in _EVENT_KEYS:
            out[event] = int(self._events.value(event=event))
        return out

    @property
    def op_counts(self) -> Dict[str, int]:
        """Requests per op, derived from ``cast_service_ops_total``."""
        return {
            labels["op"]: int(value) for labels, value in self._ops.samples()
        }

    @property
    def evaluator_totals(self) -> Dict[str, int]:
        """Incremental-evaluator cache counters, summed over every solve
        this server completed (cache hits/misses, jobs skipped, ...)."""
        return {
            labels["counter"]: int(value)
            for labels, value in self._evaluator_events.samples()
        }

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` op payload."""
        return {
            "uptime_s": self.uptime_s,
            "requests": self.op_counts,
            "counters": self.counters,
            "evaluator": self.evaluator_totals,
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "sessions": self.sessions.stats(),
            "flight_recorder": self.recorder.stats(),
            "slo": self.slo.states,
            "inflight": len(self._inflight),
            "limits": {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "request_timeout_s": self.request_timeout_s,
            },
        }
