"""Canonical request fingerprinting — the cache and dedup key.

Two requests get one fingerprint exactly when the solver would be run
with identical inputs: same canonical workload/workflow, same provider
catalog, same cluster size, and same solver knobs (iterations, seed,
CAST vs CAST++, restart count).

Canonicalization leans on :mod:`repro.workloads.io`: the spec dict is
round-tripped through the model objects (``workload_from_dict`` →
``workload_to_dict``), which validates it and normalizes every
degree of freedom JSON allows — omitted optional fields, reuse-set
member order, numeric types — onto the schema-v1 canonical form.  The
normalized payload is serialized as sorted, compact JSON and hashed
with SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from ..errors import WorkloadError
from ..workloads.io import (
    workflow_from_dict,
    workflow_to_dict,
    workload_from_dict,
    workload_to_dict,
)

__all__ = [
    "canonical_json",
    "canonical_spec",
    "request_fingerprint",
    "sweep_fingerprint",
    "whatif_fingerprint",
]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def canonical_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize a workload/workflow dict onto its canonical schema form.

    Raises :class:`WorkloadError` for anything that does not validate —
    a fingerprint of an invalid spec would poison the cache.
    """
    kind = spec.get("kind") if isinstance(spec, Mapping) else None
    if kind == "workload":
        return workload_to_dict(workload_from_dict(dict(spec)))
    if kind == "workflow":
        return workflow_to_dict(workflow_from_dict(dict(spec)))
    raise WorkloadError(f"spec kind must be 'workload' or 'workflow', got {kind!r}")


def request_fingerprint(
    op: str,
    spec: Mapping[str, Any],
    provider: str = "google",
    n_vms: int = 25,
    iterations: int = 3000,
    seed: int = 42,
    use_castpp: bool = True,
    restarts: int = 1,
    backend: str = "anneal",
    replicas: int = 8,
) -> str:
    """SHA-256 hex digest identifying one solve request."""
    payload = {
        "op": str(op),
        "spec": canonical_spec(spec),
        "provider": str(provider),
        "n_vms": int(n_vms),
        "iterations": int(iterations),
        "seed": int(seed),
        "use_castpp": bool(use_castpp),
        "restarts": int(restarts),
        "backend": str(backend),
        "replicas": int(replicas),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def sweep_fingerprint(
    specs: "list[Mapping[str, Any]]",
    providers: "list[str]",
    reps: int = 1,
    n_vms: int = 25,
    iterations: int = 3000,
    seed: int = 42,
    use_castpp: bool = True,
    backend: str = "anneal",
    replicas: int = 8,
    warm: bool = True,
) -> str:
    """SHA-256 hex digest identifying one cross-catalog sweep.

    Axis *order* is part of the key: catalog 0 is the warm-start
    reference catalog and the point list is row-major, so permuting
    the axes changes which points transfer from which donors (results
    stay within the quality gate but are not bit-identical).
    ``warm`` is part of the key for the same reason.
    """
    payload = {
        "op": "sweep",
        "specs": [canonical_spec(s) for s in specs],
        "providers": [str(p) for p in providers],
        "reps": int(reps),
        "n_vms": int(n_vms),
        "iterations": int(iterations),
        "seed": int(seed),
        "use_castpp": bool(use_castpp),
        "backend": str(backend),
        "replicas": int(replicas),
        "warm": bool(warm),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def whatif_fingerprint(
    spec: Mapping[str, Any],
    plan: Optional[Mapping[str, Any]] = None,
    tier: Optional[str] = None,
    provider: str = "google",
    n_vms: int = 25,
    fast: bool = True,
) -> str:
    """SHA-256 hex digest identifying one ``whatif`` measurement.

    ``fast`` is part of the key: fast-path and exact-engine results
    agree only within the documented tolerance, so they must not share
    a cache entry.
    """
    payload = {
        "op": "whatif",
        "spec": canonical_spec(spec),
        "plan": None if plan is None else dict(plan),
        "tier": None if tier is None else str(tier),
        "provider": str(provider),
        "n_vms": int(n_vms),
        "fast": bool(fast),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
