"""Bounded LRU plan cache.

Solved plans are pure functions of their request fingerprint (the
solver is deterministic per seed), so caching them is semantically
free: a hit returns byte-identical results to a re-solve.  The cache
is a plain ``OrderedDict`` LRU — the server is single-threaded
asyncio, so no locking — with hit/miss/eviction counters surfaced
through the ``stats`` op.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from ..errors import ServiceError

__all__ = ["PlanCache"]


class PlanCache:
    """Least-recently-used mapping of fingerprint → solved result dict."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result, refreshed to most-recently-used; ``None`` on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Insert (or refresh) an entry, evicting the LRU when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for the ``stats`` op and the benchmarks."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def bind_metrics(self, registry: Any, key: str = "plan_cache") -> None:
        """Mirror this cache into ``registry`` via a keyed collector.

        The ints above stay the source of truth (the get/put paths are
        untouched); the collector republishes them as
        ``cast_plan_cache_events_total{event=...}`` plus size/capacity
        gauges whenever the registry is snapshotted or exposed.
        """

        def _mirror(reg: Any) -> None:
            events = reg.counter(
                "cast_plan_cache_events_total",
                "Plan-cache lookups by outcome",
                labelnames=("event",),
            )
            events.set_total(self.hits, event="hit")
            events.set_total(self.misses, event="miss")
            events.set_total(self.evictions, event="eviction")
            reg.gauge(
                "cast_plan_cache_size", "Entries in the plan cache"
            ).set(len(self._entries))
            reg.gauge(
                "cast_plan_cache_capacity", "Plan cache capacity"
            ).set(self.capacity)

        registry.register_collector(key, _mirror)
