"""Planner service: a long-lived daemon answering tiering-plan requests.

CAST is a planning framework — every tenant interaction is "here is my
workload, give me a plan" (Eq. 2–6, Algorithm 2).  This subpackage
turns the one-shot solver pipeline into a service that amortizes solver
work across requests:

* :mod:`repro.service.protocol` — versioned JSON-lines request/response
  schema over asyncio streams;
* :mod:`repro.service.fingerprint` — canonical SHA-256 fingerprints of
  requests, the cache/dedup key;
* :mod:`repro.service.cache` — bounded LRU plan cache with hit/miss/
  eviction counters;
* :mod:`repro.service.pool` — multi-start simulated-annealing solver
  pool on a ``ProcessPoolExecutor`` (deterministic per seed);
* :mod:`repro.service.server` — asyncio TCP server with single-flight
  dedup, backpressure, per-request timeouts, graceful shutdown;
* :mod:`repro.service.client` — async and sync clients.

Everything is stdlib + the package's existing numpy dependency: no new
third-party requirements.
"""

from __future__ import annotations

from .cache import PlanCache
from .client import PlannerClient, SyncPlannerClient
from .fingerprint import canonical_json, canonical_spec, request_fingerprint
from .pool import SolverPool, restart_seeds, solve_restart
from .protocol import PROTOCOL_VERSION
from .server import PlannerServer

__all__ = [
    "PROTOCOL_VERSION",
    "PlanCache",
    "PlannerClient",
    "PlannerServer",
    "SolverPool",
    "SyncPlannerClient",
    "canonical_json",
    "canonical_spec",
    "request_fingerprint",
    "restart_seeds",
    "solve_restart",
]
