"""Clients for the planner daemon and the fleet router.

:class:`PlannerClient` is the native asyncio client — one connection,
sequential request/response over it.  :class:`SyncPlannerClient` wraps
it for synchronous callers (the CLI's ``submit``, benchmarks, REPL
use): each call opens a connection, runs a private event loop, and
tears both down, trading a little latency for zero lifecycle
bookkeeping.

Error handling mirrors in-process semantics: an ``ok: false`` response
re-raises the server's typed exception (``WorkloadError``,
``ServiceBusyError``...) via
:func:`repro.service.protocol.exception_from_payload`.

Reconnect: by default a lost connection surfaces immediately
(``ConnectionRefusedError`` on connect, ``ServiceUnavailableError`` on
EOF mid-request).  ``retries=N`` turns on a bounded
exponential-backoff reconnect loop with jitter so fleet clients ride
out a shard failover or router restart: each retry closes the dead
socket, sleeps ``backoff_base * 2**attempt`` (capped at
``backoff_max``, ±``jitter`` fraction randomized to de-synchronize
herds), reconnects, and re-sends the request.  Solve requests are safe
to re-send — they are deterministic and cached by fingerprint, so a
duplicate costs at most one cache lookup on the far side.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, Mapping, Optional, Sequence

from ..errors import ServiceUnavailableError
from .protocol import (
    MAX_LINE_BYTES,
    exception_from_payload,
    make_request,
    parse_response,
    read_message,
    send_message,
)

__all__ = ["PlannerClient", "PlannerSessionHandle", "SyncPlannerClient"]


def _as_job_dict(job: Any) -> Dict[str, Any]:
    """Accept a schema-v1 job dict or a JobSpec-like object."""
    if isinstance(job, Mapping):
        return dict(job)
    from ..workloads.io import job_to_dict

    return job_to_dict(job)


def _as_reuse_set_dict(rs: Any) -> Dict[str, Any]:
    if isinstance(rs, Mapping):
        return dict(rs)
    from ..workloads.io import reuse_set_to_dict

    return reuse_set_to_dict(rs)


def _solve_params(
    spec: Mapping[str, Any],
    provider: str,
    n_vms: int,
    iterations: int,
    seed: int,
    use_castpp: bool,
    restarts: Optional[int],
    backend: Optional[str] = None,
    replicas: Optional[int] = None,
    tenant: Optional[str] = None,
) -> Dict[str, Any]:
    params: Dict[str, Any] = {
        "spec": dict(spec),
        "provider": provider,
        "n_vms": n_vms,
        "iterations": iterations,
        "seed": seed,
        "use_castpp": use_castpp,
    }
    if restarts is not None:
        params["restarts"] = restarts
    if backend is not None:
        params["backend"] = backend
    if replicas is not None:
        params["replicas"] = replicas
    if tenant is not None:
        params["tenant"] = tenant
    return params


class PlannerClient:
    """Async client: ``async with PlannerClient(host, port) as c: ...``.

    Parameters
    ----------
    host / port:
        The daemon (or fleet router) address.
    retries:
        Reconnect attempts after a connection-level failure (refused,
        reset, EOF mid-request).  0 — the default — preserves the
        historical fail-fast behaviour.
    backoff_base / backoff_max:
        Exponential backoff schedule: attempt ``i`` sleeps
        ``min(backoff_max, backoff_base * 2**i)`` seconds.
    jitter:
        Fractional randomization of each sleep (0.1 → ±10%), breaking
        up reconnect herds when many clients lose the same shard.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4815,
        *,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.1,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.jitter = float(jitter)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 0
        self._rng = random.Random()

    async def connect(self) -> "PlannerClient":
        """Open the connection (idempotent)."""
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES
            )
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "PlannerClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- raw request/response ------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        delay = min(self.backoff_max, self.backoff_base * (2.0 ** attempt))
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)

    async def _request_once(
        self, op: str, params: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        await self.connect()
        assert self._reader is not None and self._writer is not None
        self._next_id += 1
        req = make_request(op, params, req_id=f"c{self._next_id}")
        await send_message(self._writer, req)
        line = await read_message(self._reader)
        if line is None:
            raise ServiceUnavailableError("server closed the connection mid-request")
        return parse_response(line)

    async def request(
        self, op: str, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request, return the full validated response envelope.

        Raises the server's typed exception on an error response.
        Connection-level failures reconnect and re-send up to
        ``retries`` times before propagating.
        """
        attempt = 0
        while True:
            try:
                response = await self._request_once(op, params)
                break
            except (ConnectionError, OSError):
                # Covers refused/reset/broken-pipe and the typed
                # mid-request EOF (ServiceUnavailableError is a
                # ConnectionError too).  A dead socket never carries
                # state worth keeping — drop it either way.
                await self.close()
                if attempt >= self.retries:
                    raise
                await asyncio.sleep(self._backoff_s(attempt))
                attempt += 1
        if not response["ok"]:
            exc = exception_from_payload(response["error"])
            # Error envelopes carry the server-side trace id too —
            # stamp it on the exception so callers (and the CLI) can
            # print something grep-able against a debug dump.
            trace = response.get("trace_id")
            exc.trace_id = str(trace) if trace is not None else None
            raise exc
        return response

    async def _solve_result(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        response = await self.request(op, params)
        result = dict(response["result"])
        result["cached"] = bool(response.get("cached", False))
        return result

    # -- typed ops -----------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        """Liveness probe."""
        return dict((await self.request("ping"))["result"])

    async def stats(self) -> Dict[str, Any]:
        """Server counters (cache, pool, single-flight, limits)."""
        return dict((await self.request("stats"))["result"])

    async def metrics(
        self, format: str = "prometheus", scope: Optional[str] = None
    ) -> Dict[str, Any]:
        """The server's metrics registry.

        ``format="prometheus"`` → ``{"format": ..., "body": <text>}``;
        ``format="json"`` → ``{"format": ..., "metrics": {...}}`` with
        p50/p95/p99 per histogram series.  Against a fleet router,
        ``scope="fleet"`` (its default) scrapes every healthy shard and
        rolls the registries up with per-shard labels;
        ``scope="router"`` returns only the router's own instruments.
        """
        params: Dict[str, Any] = {"format": format}
        if scope is not None:
            params["scope"] = scope
        return dict((await self.request("metrics", params))["result"])

    async def slo(self, scope: Optional[str] = None) -> Dict[str, Any]:
        """The server's SLO report (burn rates + ok/warning/page per op).

        Against a fleet router the default scope rolls every shard's
        report up (worst shard state wins); ``scope="router"`` returns
        the router's own report only.
        """
        params: Dict[str, Any] = {}
        if scope is not None:
            params["scope"] = scope
        return dict((await self.request("slo", params))["result"])

    async def profile(
        self, duration_s: float = 1.0, interval_s: float = 0.005
    ) -> Dict[str, Any]:
        """Run the server's sampling profiler for ``duration_s`` seconds.

        Returns the subsystem self-time table plus folded stacks (see
        :mod:`repro.obs.sampler`).  The call blocks for the whole
        duration.
        """
        return dict(
            (
                await self.request(
                    "profile",
                    {"duration_s": duration_s, "interval_s": interval_s},
                )
            )["result"]
        )

    async def debug_dump(self, reason: str = "request") -> Dict[str, Any]:
        """Fetch a flight-recorder postmortem bundle from the server."""
        return dict(
            (await self.request("debug_dump", {"reason": reason}))["result"]
        )

    async def catalog(self, provider: str = "google") -> Dict[str, Any]:
        """The provider's storage catalog and prices."""
        return dict(
            (await self.request("catalog", {"provider": provider}))["result"]
        )

    async def register(
        self, shard_id: str, host: str, port: int
    ) -> Dict[str, Any]:
        """Register a planner shard with the fleet router."""
        return dict(
            (
                await self.request(
                    "register",
                    {"shard_id": shard_id, "host": host, "port": int(port)},
                )
            )["result"]
        )

    async def deregister(self, shard_id: str) -> Dict[str, Any]:
        """Remove a planner shard from the fleet router."""
        return dict(
            (await self.request("deregister", {"shard_id": shard_id}))["result"]
        )

    async def plan(
        self,
        workload: Mapping[str, Any],
        provider: str = "google",
        n_vms: int = 25,
        iterations: int = 3000,
        seed: int = 42,
        use_castpp: bool = True,
        restarts: Optional[int] = None,
        backend: Optional[str] = None,
        replicas: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Solve a workload; result carries ``cached`` and ``fingerprint``.

        ``backend="tempering"`` selects the parallel-tempering annealer
        with ``replicas`` coupled chains (see
        :mod:`repro.core.tempering`); both default to the server's
        ``"anneal"`` single-chain when omitted.  ``tenant`` labels the
        request for the fleet's fair queueing and metrics; it never
        changes the plan (plans are tenant-independent pure functions
        of the request).
        """
        return await self._solve_result(
            "plan",
            _solve_params(
                workload, provider, n_vms, iterations, seed, use_castpp, restarts,
                backend=backend, replicas=replicas, tenant=tenant,
            ),
        )

    async def whatif(
        self,
        workload: Mapping[str, Any],
        *,
        plan: Optional[Mapping[str, Any]] = None,
        tier: Optional[str] = None,
        provider: str = "google",
        n_vms: int = 25,
        fast: bool = True,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Measure a fixed tiering on the server's simulated cluster.

        Exactly one of ``plan`` (a tiering-plan dict, e.g. from
        ``plan --out``) or ``tier`` (a uniform tier name) selects the
        tiering.  ``fast=True`` (the default) measures over the
        vectorized wave-model fast path; ``fast=False`` forces the
        exact event engine.  No solver runs — the result carries the
        measured makespan/cost/utility plus per-job phase times, and is
        cached by its own fingerprint (``fast`` included, since the two
        paths agree only within the documented tolerance).
        """
        params: Dict[str, Any] = {
            "spec": dict(workload),
            "provider": provider,
            "n_vms": n_vms,
            "fast": fast,
        }
        if plan is not None:
            params["plan"] = dict(plan)
        if tier is not None:
            params["tier"] = tier
        if tenant is not None:
            params["tenant"] = tenant
        return await self._solve_result("whatif", params)

    async def sweep(
        self,
        workloads: "Sequence[Mapping[str, Any]] | Mapping[str, Any]",
        *,
        providers: Sequence[str] = ("google",),
        reps: int = 1,
        n_vms: int = 25,
        iterations: int = 3000,
        seed: int = 42,
        use_castpp: bool = True,
        backend: str = "anneal",
        replicas: int = 8,
        warm: bool = True,
        workers: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Solve a (catalog × workload × rep) grid on the server.

        Runs the amortized :class:`~repro.sweep.SweepEngine` server-side
        — warm-start transfer between neighboring grid points, CRN-paired
        seeds across catalogs, per-point bit parity — and returns its
        ``to_dict()`` payload (points, per-workload catalog ranking,
        mode counts).  Cached and single-flighted by the sweep
        fingerprint; ``workers`` fans engine waves over a server-side
        process pool.
        """
        if isinstance(workloads, Mapping):
            workloads = [workloads]
        params: Dict[str, Any] = {
            "specs": [dict(w) for w in workloads],
            "providers": list(providers),
            "reps": reps,
            "n_vms": n_vms,
            "iterations": iterations,
            "seed": seed,
            "use_castpp": use_castpp,
            "backend": backend,
            "replicas": replicas,
            "warm": warm,
        }
        if workers is not None:
            params["workers"] = workers
        if tenant is not None:
            params["tenant"] = tenant
        return await self._solve_result("sweep", params)

    async def plan_workflow(
        self,
        workflow: Mapping[str, Any],
        provider: str = "google",
        n_vms: int = 25,
        iterations: int = 3000,
        seed: int = 42,
        restarts: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Deadline-optimize a workflow DAG."""
        return await self._solve_result(
            "plan_workflow",
            _solve_params(
                workflow, provider, n_vms, iterations, seed, True, restarts,
                tenant=tenant,
            ),
        )

    # -- streaming sessions --------------------------------------------------

    async def session_open(
        self,
        workload: Optional[Mapping[str, Any]] = None,
        *,
        session_id: Optional[str] = None,
        provider: str = "google",
        n_vms: int = 25,
        iterations: int = 3000,
        seed: int = 42,
        use_castpp: bool = True,
        backend: Optional[str] = None,
        replicas: Optional[int] = None,
        config: Optional[Mapping[str, Any]] = None,
        include_plan: bool = False,
    ) -> Dict[str, Any]:
        """Open a streaming planning session (see :mod:`repro.session`).

        The optional ``workload`` (schema-v1 dict) is solved at full
        budget as the session's opening plan; subsequent
        :meth:`session_delta` calls re-plan by warm start in
        milliseconds.  Returns at least ``session_id``.
        """
        params: Dict[str, Any] = {
            "provider": provider,
            "n_vms": n_vms,
            "iterations": iterations,
            "seed": seed,
            "use_castpp": use_castpp,
            "include_plan": include_plan,
        }
        if workload is not None:
            params["spec"] = dict(workload)
        if session_id is not None:
            params["session_id"] = session_id
        if backend is not None:
            params["backend"] = backend
        if replicas is not None:
            params["replicas"] = replicas
        if config is not None:
            params["config"] = dict(config)
        return dict((await self.request("session_open", params))["result"])

    async def session_delta(
        self,
        session_id: str,
        *,
        add_jobs: Any = None,
        reuse_sets: Any = None,
        remove: Any = None,
        include_plan: bool = False,
    ) -> Dict[str, Any]:
        """Admit a delta (departures and/or arrivals) to a session.

        ``add_jobs``/``reuse_sets`` accept schema-v1 dicts or the
        in-process :class:`~repro.workloads.spec.JobSpec` /
        ``ReuseSet`` objects.  Removals apply before additions.
        """
        params: Dict[str, Any] = {
            "session_id": session_id,
            "include_plan": include_plan,
        }
        if remove:
            params["remove"] = [str(jid) for jid in remove]
        if add_jobs or reuse_sets:
            params["add"] = {
                "jobs": [_as_job_dict(j) for j in (add_jobs or [])],
                "reuse_sets": [
                    _as_reuse_set_dict(rs) for rs in (reuse_sets or [])
                ],
            }
        return dict((await self.request("session_delta", params))["result"])

    async def session_close(self, session_id: str) -> Dict[str, Any]:
        """Close a session; returns its final plan and counters."""
        return dict(
            (
                await self.request("session_close", {"session_id": session_id})
            )["result"]
        )

    def session(
        self,
        workload: Optional[Mapping[str, Any]] = None,
        **open_kwargs: Any,
    ) -> "PlannerSessionHandle":
        """Context-managed streaming session::

            async with client.session(workload_dict) as sess:
                await sess.add_jobs([...])
                await sess.remove_jobs(["job-3"])

        The session opens on ``__aenter__`` and closes (server-side)
        on ``__aexit__``; the handle's :attr:`~PlannerSessionHandle.summary`
        holds the close payload afterwards.
        """
        return PlannerSessionHandle(self, workload, open_kwargs)


class PlannerSessionHandle:
    """One open streaming session bound to a :class:`PlannerClient`."""

    def __init__(
        self,
        client: PlannerClient,
        workload: Optional[Mapping[str, Any]],
        open_kwargs: Dict[str, Any],
    ) -> None:
        self._client = client
        self._workload = workload
        self._open_kwargs = open_kwargs
        self.session_id: Optional[str] = None
        #: Result payload of the most recent open/delta op.
        self.last: Optional[Dict[str, Any]] = None
        #: The ``session_close`` payload, set on ``__aexit__``/:meth:`close`.
        self.summary: Optional[Dict[str, Any]] = None

    async def __aenter__(self) -> "PlannerSessionHandle":
        result = await self._client.session_open(
            self._workload, **self._open_kwargs
        )
        self.session_id = str(result["session_id"])
        self.last = result
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        if self.session_id is not None and self.summary is None:
            try:
                await self.close()
            except Exception:
                # Best-effort close on unwind: the original exception
                # (if any) matters more than a dead session id.
                if exc_info[0] is None:
                    raise

    def _require_open(self) -> str:
        if self.session_id is None:
            raise ServiceUnavailableError("session is not open")
        return self.session_id

    async def add_jobs(
        self,
        jobs: Any,
        reuse_sets: Any = None,
        include_plan: bool = False,
    ) -> Dict[str, Any]:
        """Admit arriving jobs; returns the re-plan result payload."""
        self.last = await self._client.session_delta(
            self._require_open(),
            add_jobs=jobs, reuse_sets=reuse_sets, include_plan=include_plan,
        )
        return self.last

    async def remove_jobs(
        self, job_ids: Any, include_plan: bool = False
    ) -> Dict[str, Any]:
        """Retire departing jobs; returns the re-plan result payload."""
        self.last = await self._client.session_delta(
            self._require_open(), remove=job_ids, include_plan=include_plan,
        )
        return self.last

    async def close(self) -> Dict[str, Any]:
        """Close the session server-side (idempotent client-side)."""
        sid = self._require_open()
        self.summary = await self._client.session_close(sid)
        self.session_id = None
        return self.summary


class SyncPlannerClient:
    """Blocking facade over :class:`PlannerClient` (one connection per call)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 4815,
        *,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.1,
    ) -> None:
        self.host = host
        self.port = port
        self._client_kwargs = {
            "retries": retries,
            "backoff_base": backoff_base,
            "backoff_max": backoff_max,
            "jitter": jitter,
        }

    def _run(self, method: str, *args: Any, **kwargs: Any) -> Dict[str, Any]:
        async def call() -> Dict[str, Any]:
            async with PlannerClient(
                self.host, self.port, **self._client_kwargs
            ) as client:
                return await getattr(client, method)(*args, **kwargs)

        return asyncio.run(call())

    def ping(self) -> Dict[str, Any]:
        """Liveness probe."""
        return self._run("ping")

    def stats(self) -> Dict[str, Any]:
        """Server counters."""
        return self._run("stats")

    def metrics(
        self, format: str = "prometheus", scope: Optional[str] = None
    ) -> Dict[str, Any]:
        """The server's metrics registry (Prometheus text or JSON)."""
        return self._run("metrics", format=format, scope=scope)

    def slo(self, scope: Optional[str] = None) -> Dict[str, Any]:
        """The server's (or fleet's rolled-up) SLO report."""
        return self._run("slo", scope=scope)

    def profile(
        self, duration_s: float = 1.0, interval_s: float = 0.005
    ) -> Dict[str, Any]:
        """Run the server's sampling profiler (blocks for the duration)."""
        return self._run("profile", duration_s=duration_s, interval_s=interval_s)

    def debug_dump(self, reason: str = "request") -> Dict[str, Any]:
        """Fetch a postmortem bundle from the server."""
        return self._run("debug_dump", reason=reason)

    def catalog(self, provider: str = "google") -> Dict[str, Any]:
        """Provider catalog."""
        return self._run("catalog", provider=provider)

    def plan(self, workload: Mapping[str, Any], **kwargs: Any) -> Dict[str, Any]:
        """Solve a workload."""
        return self._run("plan", workload, **kwargs)

    def whatif(self, workload: Mapping[str, Any], **kwargs: Any) -> Dict[str, Any]:
        """Measure a fixed tiering on the server's simulator."""
        return self._run("whatif", workload, **kwargs)

    def sweep(
        self,
        workloads: "Sequence[Mapping[str, Any]] | Mapping[str, Any]",
        **kwargs: Any,
    ) -> Dict[str, Any]:
        """Solve a cross-catalog sweep grid on the server."""
        return self._run("sweep", workloads, **kwargs)

    def plan_workflow(self, workflow: Mapping[str, Any], **kwargs: Any) -> Dict[str, Any]:
        """Deadline-optimize a workflow."""
        return self._run("plan_workflow", workflow, **kwargs)

    def session_open(
        self, workload: Optional[Mapping[str, Any]] = None, **kwargs: Any
    ) -> Dict[str, Any]:
        """Open a streaming planning session (state lives server-side,
        keyed by the returned ``session_id`` — safe across the one
        connection-per-call model of this facade)."""
        return self._run("session_open", workload, **kwargs)

    def session_delta(self, session_id: str, **kwargs: Any) -> Dict[str, Any]:
        """Admit a delta to a streaming session."""
        return self._run("session_delta", session_id, **kwargs)

    def session_close(self, session_id: str) -> Dict[str, Any]:
        """Close a streaming session."""
        return self._run("session_close", session_id)
