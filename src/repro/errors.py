"""Exception hierarchy for the CAST reproduction.

All library-raised errors derive from :class:`CastError` so callers can
catch every domain failure with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations

__all__ = [
    "CastError",
    "CatalogError",
    "CapacityError",
    "PlanError",
    "SimulationError",
    "WorkloadError",
    "SolverError",
    "ServiceError",
    "ProtocolError",
    "ServiceBusyError",
    "ServiceTimeoutError",
    "ServiceUnavailableError",
    "FleetError",
    "NoHealthyShardsError",
    "ObservabilityError",
    "SessionError",
]


class CastError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    ``trace_id`` is ``None`` for in-process failures; the service
    client stamps it from the response envelope when reconstructing a
    server-side error, so a failed request stays correlatable with the
    server's spans and flight-recorder records (``cast-plan
    debug-dump``).
    """

    trace_id: "str | None" = None


class CatalogError(CastError):
    """An unknown storage service, VM type, or provider was requested."""


class CapacityError(CastError):
    """A capacity constraint was violated (Eq. 3 / Eq. 10 of the paper).

    Raised when a plan provisions less storage than a job's aggregate
    input + intermediate + output footprint, or when a volume request
    exceeds the provider's per-volume limits.
    """


class PlanError(CastError):
    """A tiering plan is structurally invalid (missing jobs, bad tiers)."""


class SimulationError(CastError):
    """The discrete-event simulator reached an inconsistent state."""


class WorkloadError(CastError):
    """A workload specification is malformed (cycles, negative sizes...)."""


class SolverError(CastError):
    """The tiering solver could not produce a feasible plan."""


class ServiceError(CastError):
    """The planner service failed to process a request."""


class ProtocolError(ServiceError):
    """A service message violated the JSON-lines wire protocol."""


class ServiceBusyError(ServiceError):
    """The server shed the request: its inflight + queue limit is full."""


class ServiceTimeoutError(ServiceError):
    """A solve exceeded the server's per-request deadline."""


class ServiceUnavailableError(ServiceError, ConnectionError):
    """The peer vanished mid-conversation (EOF before a response line).

    Doubly derived so both idioms work: ``except CastError`` (typed
    service failure) and ``except ConnectionError`` (retryable
    transport loss — the client's reconnect loop and the fleet
    router's failover path both key off the latter).
    """


class FleetError(ServiceError):
    """The fleet tier (router/supervisor) failed to process a request."""


class NoHealthyShardsError(FleetError):
    """Every planner shard is down; the router cannot route the solve."""


class ObservabilityError(CastError):
    """A metrics instrument was registered or used inconsistently."""


class SessionError(CastError):
    """A streaming planning session was driven invalidly.

    Raised for deltas against a closed session, duplicate/unknown job
    ids in a delta, or malformed session-trace files.
    """
