"""``python -m repro`` dispatches to the ``cast-plan`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
