"""Command-line interface: ``cast-plan`` / ``python -m repro``.

Subcommands
-----------

``plan``
    Synthesize (or read) a workload, run CAST/CAST++ and print the
    tiering plan with its predicted utility/cost.
``serve``
    Run the planner daemon: an asyncio TCP service with a plan cache,
    single-flight dedup and a multi-start solver pool
    (:mod:`repro.service`).  Stop with Ctrl-C (or SIGTERM — both drain
    inflight solves and exit cleanly).
``fleet``
    Run a sharded planner fleet: a consistent-hashing router plus N
    shard subprocesses with health-checked failover and per-tenant
    fair queueing (:mod:`repro.fleet`).  Speaks the same protocol as
    ``serve``, so ``submit`` works against either.
``submit``
    Send a workload to a running daemon (or fleet router) and print
    the plan exactly as ``plan`` would; repeated submissions of the
    same workload are answered from the server's cache.
``top``
    Live ANSI dashboard over a running daemon or fleet router: per-op
    latency quantiles, SLO burn-rate states, cache hit rates, shard
    health and WFQ queue depths, repainted every ``--interval``
    seconds (``--once`` prints a single frame for scripts).
``profile``
    Run the sampling profiler inside a running daemon for
    ``--duration`` seconds and print self-time by subsystem
    (``--out`` writes folded stacks for any flamegraph tool).
``debug-dump``
    Fetch a flight-recorder postmortem bundle (metrics + exemplars +
    recent requests + spans + SLO report) from a running daemon into
    one JSONL file.  Servers also write these automatically on SLO
    ``page`` transitions when started with ``--dump-dir``.
``simulate``
    Deploy a fixed tiering (a uniform ``--tier`` or a ``--plan-file``
    from ``plan --out``) on the simulated cluster and print the
    measured makespan/cost/utility — no solver involved.  ``--batch``
    routes eligible jobs through the vectorized wave-model fast path;
    ``--check`` re-measures on the exact event engine and exits 1 if
    any phase disagrees beyond the documented tolerance.
``session``
    Replay a recorded churn trace (``--replay trace.json``) through a
    streaming :class:`~repro.session.PlanningSession`: every add/remove
    event triggers a warm-start re-plan, with per-event latency lines
    and a p50/p95/p99 summary at the end.  ``--parity-every N``
    bit-checks every Nth re-plan against the canonical evaluator and
    exits 1 on any mismatch.
``sweep``
    Solve a (catalog × workload × knob) grid through the amortized
    :class:`~repro.sweep.SweepEngine` — warm-start transfer between
    neighboring points, CRN-paired seeds across catalogs, per-point
    bit parity — and print the per-workload catalog ranking.
``experiment``
    Regenerate one of the paper's tables/figures or an ablation
    (``table1 table2 table4 fig1 fig2 fig3 fig4 fig5 fig7 fig8 fig9
    ablation-sa ablation-reg ablation-heat ablation-dynamic
    sensitivity crosscloud``, or ``all``).
``size``
    Sweep candidate cluster sizes for a workload and report the
    utility-maximizing VM count (the paper's future-work extension).
``report``
    Regenerate every artifact into one markdown reproduction report.
``catalog``
    Print one provider's storage catalog and prices.
``catalogs``
    List every registered provider with tier price/bandwidth
    summaries (``--json`` for machine-readable output).

All workload-consuming commands accept ``--provider
{google,aws,azure}`` and ``--workload-file path.json`` (see
:mod:`repro.workloads.io` for the schema) in place of the built-in
synthetic workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from . import plan_workload
from .cloud import PROVIDER_FACTORIES as _PROVIDERS
from .cloud import resolve_provider as _resolve_provider
from .errors import CastError
from .obs.logs import LOG_LEVELS, configure_logging
from .workloads.io import load_json
from .workloads.spec import WorkloadSpec
from .workloads.swim import synthesize_facebook_workload, synthesize_small_workload

#: Default TCP port of the planner daemon (``serve``/``submit``).
DEFAULT_SERVICE_PORT = 4815


def _resolve_workload(args: argparse.Namespace):
    """Workload from --workload-file, else the named synthetic one."""
    if getattr(args, "workload_file", None):
        loaded = load_json(args.workload_file)
        if not isinstance(loaded, WorkloadSpec):
            raise CastError(
                f"{args.workload_file} contains a workflow, not a workload"
            )
        return loaded
    if args.workload == "facebook":
        return synthesize_facebook_workload()
    if args.workload == "small":
        return synthesize_small_workload()
    raise CastError(f"unknown workload: {args.workload!r}")

__all__ = ["main", "build_parser"]


def _cmd_catalog(args: argparse.Namespace) -> int:
    prov = _resolve_provider(args.provider)
    print(f"provider: {prov.name}")
    print(f"{'tier':10s} {'persistent':>10s} {'$/GB/month':>11s} {'$/GB/hr':>10s}")
    for tier in prov.tiers:
        svc = prov.service(tier)
        print(
            f"{tier.value:10s} {str(svc.persistent):>10s} "
            f"{svc.price_gb_month:11.3f} {prov.storage_price_gb_hr(tier):10.6f}"
        )
    print(f"VM ({prov.default_vm.name}): ${prov.prices.vm_price_per_min * 60:.4f}/hour")
    return 0


def _catalogs_summary() -> List[Dict]:
    """Every registered provider with tier price/bandwidth summaries."""
    out: List[Dict] = []
    for key in sorted(_PROVIDERS):
        prov = _resolve_provider(key)
        tiers = []
        for tier in prov.tiers:
            svc = prov.service(tier)
            tiers.append(
                {
                    "tier": tier.value,
                    "persistent": svc.persistent,
                    "price_gb_month": svc.price_gb_month,
                    "price_gb_hr": prov.storage_price_gb_hr(tier),
                    "mb_s_at_500gb": svc.throughput_mb_s(500.0),
                    "mb_s_cap": svc.throughput.cap,
                    "iops_cap": svc.iops.cap,
                }
            )
        out.append(
            {
                "key": key,
                "name": prov.name,
                "vm": prov.default_vm.name,
                "vm_usd_hr": prov.prices.vm_price_per_min * 60,
                "tiers": tiers,
            }
        )
    return out


def _cmd_catalogs(args: argparse.Namespace) -> int:
    summary = _catalogs_summary()
    if getattr(args, "json", False):
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    for entry in summary:
        print(
            f"{entry['key']}: {entry['name']} "
            f"(VM {entry['vm']} ${entry['vm_usd_hr']:.3f}/hr)"
        )
        print(
            f"  {'tier':10s} {'persistent':>10s} {'$/GB/month':>11s} "
            f"{'MB/s@500GB':>11s} {'MB/s cap':>9s} {'IOPS cap':>9s}"
        )
        for t in entry["tiers"]:
            print(
                f"  {t['tier']:10s} {str(t['persistent']):>10s} "
                f"{t['price_gb_month']:11.3f} {t['mb_s_at_500gb']:11.0f} "
                f"{t['mb_s_cap']:9.0f} {t['iops_cap']:9.0f}"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import SweepConfig, SweepEngine

    try:
        workload = _resolve_workload(args)
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    providers = [p.strip() for p in args.providers.split(",") if p.strip()]
    knobs = [{"rep": r} for r in range(max(1, args.reps))]
    config = SweepConfig(
        n_vms=args.vms,
        iterations=args.iterations,
        seed=args.seed,
        use_castpp=not args.basic,
        backend=args.backend,
        replicas=args.replicas,
        warm=not args.cold,
    )
    try:
        engine = SweepEngine(
            providers, [workload], knobs=knobs, config=config,
            workers=args.workers,
        )
        result = engine.run()
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if all(p.parity_ok for p in result.points) else 1
    modes = result.modes
    print(
        f"sweep: {len(result.points)} points "
        f"({len(providers)} catalogs x 1 workload x {len(knobs)} knobs) "
        f"in {result.elapsed_s:.2f}s"
    )
    print(
        "modes: "
        + ", ".join(f"{k}={v}" for k, v in sorted(modes.items()) if v)
    )
    for block in result.ranking():
        print(f"\nworkload {block['workload']}:")
        print(
            f"  {'rank':>4s} {'catalog':>8s} {'utility':>12s} "
            f"{'vs best':>8s} {'cost $':>9s} {'makespan':>9s}"
        )
        for rank, e in enumerate(block["ranking"], start=1):
            print(
                f"  {rank:4d} {e['provider']:>8s} {e['mean_utility']:12.6f} "
                f"{e['relative'] * 100:7.1f}% {e['mean_cost_usd']:9.2f} "
                f"{e['mean_makespan_min']:7.1f}m"
            )
    bad = [p for p in result.points if not p.parity_ok]
    if bad:
        print(f"PARITY FAILURES: {len(bad)} points", file=sys.stderr)
        return 1
    return 0


def _render_plan(
    solver_name: str,
    workload: WorkloadSpec,
    n_vms: int,
    plan,
    *,
    utility: float,
    makespan_min: float,
    cost_total: float,
    cost_vm: float,
    cost_storage: float,
    verbose: bool,
    out: Optional[str],
) -> None:
    """The shared plan rendering used by both ``plan`` and ``submit``."""
    print(f"{solver_name} plan for {workload.name} ({workload.n_jobs} jobs, {n_vms} VMs)")
    print(
        f"predicted: T={makespan_min:.1f} min  cost=${cost_total:.2f} "
        f"(vm ${cost_vm:.2f} + storage ${cost_storage:.2f})  "
        f"utility={utility:.3e}"
    )
    if verbose:
        print(f"{'job':12s} {'app':8s} {'input(GB)':>10s} {'tier':>9s} {'cap(GB)':>9s}")
        for job in workload.jobs:
            p = plan.placement(job.job_id)
            print(
                f"{job.job_id:12s} {job.app.name:8s} {job.input_gb:10.1f} "
                f"{p.tier.value:>9s} {p.capacity_gb:9.1f}"
            )
    else:
        mix: Dict[str, float] = {}
        for tier, gb in plan.aggregate_capacity_gb().items():
            mix[tier.value] = gb
        total = sum(mix.values())
        shares = ", ".join(f"{k}: {v / total:.0%}" for k, v in sorted(mix.items()))
        print(f"capacity mix: {shares}  (use --verbose for per-job placements)")
    if out:
        import json
        from pathlib import Path

        Path(out).write_text(
            json.dumps(plan.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote plan to {out}")


def _cmd_plan(args: argparse.Namespace) -> int:
    from .obs.progress import ProgressPrinter
    from .obs.tracing import span, trace_collector

    try:
        workload = _resolve_workload(args)
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    progress = ProgressPrinter() if args.trace_solver else None
    with span("cli.plan", attrs={"workload": workload.name}) as sp:
        outcome = plan_workload(
            workload,
            n_vms=args.vms,
            provider=_resolve_provider(args.provider),
            use_castpp=not args.basic,
            iterations=args.iterations,
            seed=args.seed,
            backend=args.backend,
            replicas=args.replicas,
            progress=progress,
        )
    if args.trace_export:
        written = trace_collector().dump_jsonl(
            args.trace_export, trace_id=sp.trace_id
        )
        print(
            f"wrote {written} spans (trace {sp.trace_id[:12]}) "
            f"to {args.trace_export}",
            file=sys.stderr,
        )
    ev = outcome.evaluation
    _render_plan(
        "CAST" if args.basic else "CAST++",
        workload,
        args.vms,
        outcome.plan,
        utility=ev.utility,
        makespan_min=ev.makespan_min,
        cost_total=ev.cost.total_usd,
        cost_vm=ev.cost.vm_usd,
        cost_storage=ev.cost.storage_usd,
        verbose=args.verbose,
        out=args.out,
    )
    return 0


def _install_sigterm_drain(stop_event) -> None:
    """Make SIGTERM behave like Ctrl-C for the serve/fleet loops.

    Supervised daemons (the fleet supervisor, systemd, containers) stop
    children with SIGTERM; without a handler Python dies mid-solve with
    a traceback and a non-zero exit.  Setting ``stop_event`` lets the
    accept loop drain inflight work, close the socket, and exit 0.
    No-op on loops/platforms without signal-handler support.
    """
    import asyncio
    import signal

    try:
        asyncio.get_running_loop().add_signal_handler(
            signal.SIGTERM, stop_event.set
        )
    except (NotImplementedError, RuntimeError):  # pragma: no cover - win/nested
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import PlannerServer, SolverPool

    if args.trace_export:
        from .obs.tracing import add_jsonl_sink

        add_jsonl_sink(args.trace_export)
        print(f"streaming spans to {args.trace_export}", file=sys.stderr)

    async def run() -> None:
        server = PlannerServer(
            host=args.host,
            port=args.port,
            pool=SolverPool(processes=args.pool_processes, restarts=args.restarts),
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            request_timeout_s=args.request_timeout,
            dump_dir=args.dump_dir,
        )
        await server.start()
        host, port = server.address
        print(
            f"cast-plan planner listening on {host}:{port} "
            f"(pool={server.pool.processes} procs, restarts={server.pool.restarts}, "
            f"cache={server.cache.capacity}) — Ctrl-C to stop",
            flush=True,
        )
        sigterm = asyncio.Event()
        _install_sigterm_drain(sigterm)
        serve_task = asyncio.create_task(server.serve_forever())
        sigterm_task = asyncio.create_task(sigterm.wait())
        try:
            # Ctrl-C cancels this wait (asyncio.run's SIGINT handler);
            # the cancellation must propagate after the drain so
            # asyncio.run re-raises KeyboardInterrupt and main() can
            # exit 130.  SIGTERM resolves the event instead: drain and
            # return 0 (supervised shards must die cleanly).
            await asyncio.wait(
                {serve_task, sigterm_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (serve_task, sigterm_task):
                task.cancel()
            await asyncio.gather(serve_task, sigterm_task, return_exceptions=True)
            await server.stop()

    asyncio.run(run())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import asyncio

    from .fleet import FleetRouter, FleetSupervisor

    if args.trace_export:
        from .obs.tracing import add_jsonl_sink

        add_jsonl_sink(args.trace_export)
        print(f"streaming spans to {args.trace_export}", file=sys.stderr)

    weights = {}
    for item in args.tenant_weight or []:
        name, _, value = item.partition("=")
        try:
            weights[name] = float(value)
        except ValueError:
            raise CastError(
                f"--tenant-weight wants NAME=FLOAT, got {item!r}"
            ) from None

    async def run() -> None:
        router = FleetRouter(
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            max_queue_per_tenant=args.max_queue_per_tenant,
            tenant_weights=weights or None,
            default_restarts=args.restarts,
            health_interval_s=args.health_interval,
            dump_dir=args.dump_dir,
        )
        supervisor = FleetSupervisor(
            router,
            shards=args.shards,
            host=args.host,
            pool_processes=args.pool_processes,
            restarts=args.restarts,
            max_inflight=args.shard_max_inflight,
            request_timeout_s=args.request_timeout,
            auto_restart=not args.no_restart,
            dump_dir=args.dump_dir,
        )
        await router.start()
        host, port = router.address
        print(f"starting {args.shards} planner shard(s)...", flush=True)
        try:
            await supervisor.start()
        except BaseException:
            await router.stop()
            raise
        print(
            f"cast-plan fleet: router on {host}:{port} over "
            + ", ".join(
                f"{s.shard_id}@{s.host}:{s.port}" for s in supervisor.shards
            )
            + f" (pool={args.pool_processes} procs/shard, "
            f"restarts={args.restarts}) — Ctrl-C to stop",
            flush=True,
        )
        sigterm = asyncio.Event()
        _install_sigterm_drain(sigterm)
        serve_task = asyncio.create_task(router.serve_forever())
        sigterm_task = asyncio.create_task(sigterm.wait())
        try:
            await asyncio.wait(
                {serve_task, sigterm_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (serve_task, sigterm_task):
                task.cancel()
            await asyncio.gather(serve_task, sigterm_task, return_exceptions=True)
            await supervisor.stop()
            await router.stop()

    asyncio.run(run())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .core.plan import TieringPlan
    from .service.client import SyncPlannerClient
    from .workloads.io import workload_to_dict

    try:
        workload = _resolve_workload(args)
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    client = SyncPlannerClient(host=args.host, port=args.port,
                               retries=args.retries)
    try:
        result = client.plan(
            workload_to_dict(workload),
            provider=args.provider,
            n_vms=args.vms,
            iterations=args.iterations,
            seed=args.seed,
            use_castpp=not args.basic,
            restarts=args.restarts,
            backend=args.backend,
            replicas=args.replicas,
            tenant=args.tenant,
        )
    except ConnectionRefusedError:
        print(
            f"no planner at {args.host}:{args.port} — start one with "
            f"'cast-plan serve' (or 'cast-plan fleet')",
            file=sys.stderr,
        )
        return 2
    _render_plan(
        result.get("solver", "CAST++"),
        workload,
        args.vms,
        TieringPlan.from_dict(result["plan"]),
        utility=result["utility"],
        makespan_min=result["makespan_min"],
        cost_total=result["cost_total_usd"],
        cost_vm=result["cost_vm_usd"],
        cost_storage=result["cost_storage_usd"],
        verbose=args.verbose,
        out=args.out,
    )
    origin = "cache" if result.get("cached") else (
        f"solved in {result.get('solve_seconds', 0.0):.2f}s, "
        f"{result.get('restarts', 1)} restarts (best: #{result.get('best_restart', 0)})"
    )
    if result.get("shard"):
        origin += f" [shard {result['shard']}]"
    trace = result.get("trace_id") or ""
    trace_part = f"  trace {trace[:12]}" if trace else ""
    print(f"served from {origin}  [{result.get('fingerprint', '')[:12]}]{trace_part}")
    if args.show_stats:
        stats = client.stats()
        cache = stats["cache"]
        # "counters" keys differ between a single server and the fleet
        # router, but both expose these three.
        counters = stats.get("counters", {})
        print(
            f"server stats: cache hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']} size={cache['size']}/{cache['capacity']}  "
            f"singleflight joins={counters.get('dedup_joined', 0)}  "
            f"solves={counters.get('solves_ok', 0)}"
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard: poll metrics/slo/stats, repaint one frame."""
    import time

    from .obs.top import CLEAR, render_dashboard
    from .service.client import SyncPlannerClient

    client = SyncPlannerClient(host=args.host, port=args.port)
    color = (not args.no_color) and sys.stdout.isatty()

    def one_frame() -> str:
        stats = client.stats()
        fleet = args.fleet or stats.get("role") == "fleet-router"
        metrics = client.metrics(format="json")["metrics"]
        slo = client.slo()
        return render_dashboard(
            metrics=metrics, slo=slo, stats=stats, fleet=fleet, color=color,
            title=f"cast-plan top — {args.host}:{args.port}",
        )

    try:
        if args.once:
            print(one_frame(), end="")
            return 0
        while True:
            frame = one_frame()
            print(CLEAR + frame, end="", flush=True)
            time.sleep(args.interval)
    except ConnectionRefusedError:
        print(
            f"no planner at {args.host}:{args.port} — start one with "
            f"'cast-plan serve' (or 'cast-plan fleet')",
            file=sys.stderr,
        )
        return 2


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the server's sampling profiler and print the subsystem table."""
    from pathlib import Path

    from .service.client import SyncPlannerClient

    client = SyncPlannerClient(host=args.host, port=args.port)
    try:
        report = client.profile(
            duration_s=args.duration, interval_s=args.interval
        )
    except ConnectionRefusedError:
        print(
            f"no planner at {args.host}:{args.port} — start one with "
            f"'cast-plan serve' (or 'cast-plan fleet')",
            file=sys.stderr,
        )
        return 2
    print(
        f"sampled {report['samples']} frames over {report['duration_s']:.2f}s "
        f"(every {report['interval_s'] * 1000:.1f} ms)"
    )
    print(f"{'subsystem':14s} {'samples':>8s} {'share':>7s} {'self(s)':>8s}")
    for name, row in report["by_subsystem"].items():
        print(
            f"{name:14s} {row['samples']:8d} {row['share'] * 100:6.1f}% "
            f"{row['self_s']:8.3f}"
        )
    if args.out:
        Path(args.out).write_text(
            "\n".join(report["folded"]) + ("\n" if report["folded"] else "")
        )
        print(f"wrote {len(report['folded'])} folded stacks to {args.out}")
    return 0


def _cmd_debug_dump(args: argparse.Namespace) -> int:
    """Fetch a postmortem bundle from a live daemon and write it."""
    import time

    from .obs.flightrec import dump_bundle
    from .service.client import SyncPlannerClient

    client = SyncPlannerClient(host=args.host, port=args.port)
    try:
        bundle = client.debug_dump(reason="cli")
    except ConnectionRefusedError:
        print(
            f"no planner at {args.host}:{args.port} — start one with "
            f"'cast-plan serve' (or 'cast-plan fleet')",
            file=sys.stderr,
        )
        return 2
    path = args.out or f"castdump-{int(time.time() * 1000)}-cli.jsonl"
    dump_bundle(path, bundle)
    slo = bundle.get("slo") or {}
    print(
        f"wrote {path}: {len(bundle.get('metrics', {}))} metrics, "
        f"{len(bundle.get('records', []))} flight records, "
        f"{len(bundle.get('spans', []))} spans, "
        f"slo state {slo.get('state', 'n/a')}"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    from .cloud.storage import Tier
    from .cloud.vm import ClusterSpec
    from .core.plan import TieringPlan
    from .experiments.measure import measure_plan
    from .experiments.runner import ExperimentRunner
    from .simulator import ANALYTIC_RTOL, batch_results_match, fastpath_stats, \
        reset_fastpath_stats

    try:
        workload = _resolve_workload(args)
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    prov = _resolve_provider(args.provider)
    cluster = ClusterSpec(n_vms=args.vms)
    if args.plan_file:
        plan = TieringPlan.from_dict(json.loads(Path(args.plan_file).read_text()))
    else:
        plan = TieringPlan.uniform(workload, Tier(args.tier))

    reset_fastpath_stats()
    t0 = time.perf_counter()
    with ExperimentRunner(args.workers, fast_path=args.batch) as runner:
        measured = measure_plan(
            workload, plan, cluster, prov,
            runner=runner if (runner.parallel or args.batch) else None,
        )
    elapsed = time.perf_counter() - t0
    source = "plan " + args.plan_file if args.plan_file else f"uniform {args.tier}"
    print(
        f"simulated {workload.n_jobs} jobs on {cluster.n_vms} VMs "
        f"({prov.name}, {source}) in {elapsed:.2f}s"
    )
    print(
        f"measured: T={measured.makespan_min:.1f} min  "
        f"cost=${measured.cost.total_usd:.2f}  utility={measured.utility:.3e}"
    )
    if args.batch:
        if runner.parallel:
            # Fast-path counters accumulate inside the worker
            # processes; report the parent-side dispatch instead.
            rs = runner.stats()
            print(
                f"fast path: dispatched={rs['tasks_run']} "
                f"deduped={rs['tasks_deduped']} over {rs['workers']} workers"
            )
        else:
            st = fastpath_stats()
            print(
                f"fast path: analytic={st['analytic']} "
                f"fallback={st['fallback']} cache_hits={st['cache_hits']} "
                f"deduped={st['deduped']}"
            )
    if args.check:
        # Re-measure on the exact event engine (serial, no fast path).
        # Any phase off by more than ANALYTIC_RTOL relative fails the
        # gate and the command exits 1 — same contract as the
        # parity-gated benchmarks.
        exact = measure_plan(workload, plan, cluster, prov)
        got = [measured.per_job[j.job_id] for j in workload.jobs]
        want = [exact.per_job[j.job_id] for j in workload.jobs]
        failures = batch_results_match(got, want, rtol=ANALYTIC_RTOL)
        if failures:
            print(
                f"parity check FAILED ({len(failures)} phases beyond "
                f"rtol={ANALYTIC_RTOL:g}):",
                file=sys.stderr,
            )
            for line in failures[:10]:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"parity check passed: {len(got)} jobs within "
            f"rtol={ANALYTIC_RTOL:g} of the exact engine"
        )
    return 0


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _fmt_replan(r) -> str:
    parity = ""
    if r.parity_ok is not None:
        parity = f"  parity={'ok' if r.parity_ok else 'FAIL'}"
    return (
        f"[{r.seq:4d}] {r.kind:6s} {r.mode:5s} {r.replan_s * 1e3:9.2f} ms  "
        f"jobs={r.resident_jobs:5d}  utility={r.utility:.4e}{parity}"
    )


def _cmd_session(args: argparse.Namespace) -> int:
    """Replay a recorded churn trace through an in-process session."""
    import json
    from pathlib import Path

    from .service.sessions import normalize_open_params
    from .session import PlanningSession, SessionConfig, load_trace
    from .workloads.io import (
        job_from_dict,
        reuse_set_from_dict,
        workload_from_dict,
    )

    try:
        trace = load_trace(args.replay)
        open_params = dict(trace["open"])
        for knob in ("provider", "iterations", "seed", "backend", "replicas"):
            value = getattr(args, knob)
            if value is not None:
                open_params[knob] = value
        if args.vms is not None:
            open_params["n_vms"] = args.vms
        if args.parity_every is not None:
            config = dict(open_params.get("config") or {})
            config["parity_check_every"] = args.parity_every
            open_params["config"] = config
        p = normalize_open_params(open_params)
        workload = (
            workload_from_dict(p["spec"]) if p["spec"] is not None else None
        )
        session = PlanningSession(
            workload,
            provider=_resolve_provider(p["provider"]),
            n_vms=p["n_vms"],
            iterations=p["iterations"],
            seed=p["seed"],
            use_castpp=p["use_castpp"],
            backend=p["backend"],
            replicas=p["replicas"],
            config=(
                SessionConfig(**p["config"]) if p["config"] is not None else None
            ),
        )
    except (CastError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    results = []
    if session.last_result is not None:
        results.append(session.last_result)
        print(_fmt_replan(session.last_result))
    try:
        for event in trace["events"]:
            if event["kind"] == "add":
                jobs = [job_from_dict(j) for j in event.get("jobs", [])]
                sets = [
                    reuse_set_from_dict(rs)
                    for rs in event.get("reuse_sets", [])
                ]
                result = session.add_jobs(jobs, sets)
            else:
                result = session.remove_jobs(event["job_ids"])
            results.append(result)
            print(_fmt_replan(result))
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    summary = session.close()
    warm_ms = sorted(
        r.replan_s * 1e3 for r in results if r.mode == "warm"
    )
    modes: Dict[str, int] = {}
    for r in results:
        modes[r.mode] = modes.get(r.mode, 0) + 1
    mode_str = ", ".join(f"{k}: {v}" for k, v in sorted(modes.items()))
    print(
        f"replayed {len(trace['events'])} events "
        f"({mode_str}); {summary['resident_jobs']} jobs resident"
    )
    if warm_ms:
        print(
            f"warm re-plan latency: p50={_percentile(warm_ms, 0.50):.2f} "
            f"p95={_percentile(warm_ms, 0.95):.2f} "
            f"p99={_percentile(warm_ms, 0.99):.2f} "
            f"max={warm_ms[-1]:.2f} ms"
        )
    parity_failures = sum(1 for r in results if r.parity_ok is False)
    if parity_failures:
        print(f"{parity_failures} parity checks FAILED", file=sys.stderr)
    if args.out:
        payload = {
            "trace": args.replay,
            "replans": [r.to_dict() for r in results],
            "modes": modes,
            "warm_ms": {
                "p50": _percentile(warm_ms, 0.50),
                "p95": _percentile(warm_ms, 0.95),
                "p99": _percentile(warm_ms, 0.99),
            },
            "summary": {k: v for k, v in summary.items() if k != "plan"},
        }
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote replay results to {args.out}")
    return 1 if parity_failures else 0


_EXPERIMENTS: Dict[str, Callable[[], str]] = {}


def _register_experiments() -> None:
    """Lazily bind experiment names to run+format pairs."""
    if _EXPERIMENTS:
        return
    from . import experiments as ex

    _EXPERIMENTS.update(
        {
            "table1": lambda: ex.format_table1(ex.run_table1()),
            "table2": lambda: ex.format_table2(ex.run_table2()),
            "table4": lambda: ex.format_table4(ex.run_table4()),
            "fig1": lambda: ex.format_fig1(ex.run_fig1()),
            "fig2": lambda: ex.format_fig2(ex.run_fig2()),
            "fig3": lambda: ex.format_fig3(ex.run_fig3()),
            "fig4": lambda: ex.format_fig4(ex.run_fig4()),
            "fig5": lambda: ex.format_fig5(ex.run_fig5()),
            "fig7": lambda workers=None, fast_sim=False: ex.format_fig7(
                ex.run_fig7(workers=workers, fast_sim=fast_sim)
            ),
            "fig8": lambda: ex.format_fig8(ex.run_fig8()),
            "fig9": lambda workers=None, fast_sim=False: ex.format_fig9(
                ex.run_fig9(workers=workers, fast_sim=fast_sim)
            ),
            "ablation-sa": lambda: ex.format_sa_ablation(ex.run_sa_ablation()),
            "ablation-reg": lambda: ex.format_regression_ablation(
                ex.run_regression_ablation()
            ),
            "ablation-heat": lambda: ex.format_heat_ablation(
                ex.run_heat_ablation()
            ),
            "ablation-dynamic": lambda: ex.format_dynamic_ablation(
                ex.run_dynamic_ablation()
            ),
            "sensitivity": lambda workers=None, fast_sim=False: (
                ex.format_price_sensitivity(
                    ex.run_price_sensitivity(workers=workers, fast_sim=fast_sim)
                )
            ),
            "crosscloud": lambda workers=None: ex.format_crosscloud(
                ex.run_crosscloud(workers=workers)
            ),
        }
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    _register_experiments()
    names: Sequence[str]
    if args.name == "all":
        names = list(_EXPERIMENTS)
    elif args.name in _EXPERIMENTS:
        names = [args.name]
    else:
        print(
            f"unknown experiment {args.name!r}; "
            f"known: all {' '.join(sorted(_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    import inspect

    workers = getattr(args, "workers", None)
    fast_sim = bool(getattr(args, "fast_sim", False))
    for name in names:
        print(f"=== {name} ===")
        fn = _EXPERIMENTS[name]
        # Simulation-heavy experiments accept a worker count (and
        # fig7 the vectorized fast path); the rest are solver-bound
        # and run as before.
        params = inspect.signature(fn).parameters
        kwargs = {}
        if "workers" in params:
            kwargs["workers"] = workers
        if "fast_sim" in params:
            kwargs["fast_sim"] = fast_sim
        print(fn(**kwargs))
        print()
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    from .core.sizing import best_cluster_size, sweep_cluster_sizes

    try:
        workload = _resolve_workload(args)
    except CastError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    prov = _resolve_provider(args.provider)
    sizes = [int(x) for x in args.sizes.split(",")]
    points = sweep_cluster_sizes(
        workload, sizes, prov, iterations=args.iterations, seed=args.seed
    )
    print(f"{'VMs':>5s} {'utility':>12s} {'cost($)':>9s} {'runtime(min)':>13s}")
    for p in points:
        print(
            f"{p.n_vms:5d} {p.utility:12.3e} "
            f"{p.evaluation.cost.total_usd:9.2f} {p.evaluation.makespan_min:13.1f}"
        )
    best = best_cluster_size(points)
    print(f"best size: {best.n_vms} VMs ({best.vm.name})")
    return 0


def _add_logging_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--log-level", default="warning", choices=LOG_LEVELS,
                   help="stderr logging threshold for the repro package")
    p.add_argument("--log-json", action="store_true",
                   help="emit log records as JSON lines (with trace ids)")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="facebook",
                   choices=("facebook", "small"),
                   help="which built-in workload to plan")
    p.add_argument("--workload-file", default=None,
                   help="JSON workload file (overrides --workload)")
    p.add_argument("--provider", default="google",
                   choices=sorted(_PROVIDERS),
                   help="cloud catalog to plan against")
    p.add_argument("--iterations", type=int, default=3000,
                   help="annealer iteration budget")
    p.add_argument("--seed", type=int, default=42, help="solver RNG seed")
    p.add_argument("--backend", default="anneal",
                   choices=("anneal", "tempering"),
                   help="single Metropolis chain, or parallel tempering "
                        "(the scale backend for large workloads)")
    p.add_argument("--replicas", type=int, default=8,
                   help="tempering replica count (tempering backend only)")


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    text = generate_report(quick=args.quick)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(text)} chars)")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``cast-plan`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="cast-plan",
        description="CAST cloud storage tiering planner (HPDC'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_catalog = sub.add_parser("catalog", help="print the storage catalog")
    p_catalog.add_argument("--provider", default="google",
                           choices=sorted(_PROVIDERS))
    _add_logging_args(p_catalog)
    p_catalog.set_defaults(func=_cmd_catalog)

    p_catalogs = sub.add_parser(
        "catalogs",
        help="list every registered cloud catalog with tier summaries",
    )
    p_catalogs.add_argument("--json", action="store_true",
                            help="machine-readable output")
    _add_logging_args(p_catalogs)
    p_catalogs.set_defaults(func=_cmd_catalogs)

    p_sweep = sub.add_parser(
        "sweep",
        help="solve a multi-catalog grid with warm-start transfer",
    )
    _add_workload_args(p_sweep)
    _add_logging_args(p_sweep)
    p_sweep.add_argument("--providers", default="google,aws,azure",
                         help="comma-separated catalog list (sweep axis)")
    p_sweep.add_argument("--vms", type=int, default=25, help="cluster size")
    p_sweep.add_argument("--reps", type=int, default=2,
                         help="CRN-paired replications per catalog")
    p_sweep.add_argument("--basic", action="store_true",
                         help="use basic CAST instead of CAST++")
    p_sweep.add_argument("--cold", action="store_true",
                         help="disable warm-start transfer (every point "
                              "solves at full budget)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool workers; default serial")
    p_sweep.add_argument("--json", action="store_true",
                         help="dump the full sweep result as JSON")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_plan = sub.add_parser("plan", help="plan a workload")
    _add_workload_args(p_plan)
    _add_logging_args(p_plan)
    p_plan.add_argument("--vms", type=int, default=25, help="cluster size")
    p_plan.add_argument("--basic", action="store_true",
                        help="use basic CAST instead of CAST++")
    p_plan.add_argument("--verbose", action="store_true",
                        help="print per-job placements")
    p_plan.add_argument("--out", default=None,
                        help="write the plan as JSON to this file")
    p_plan.add_argument("--trace-solver", action="store_true",
                        help="print sampled annealer progress to stderr")
    p_plan.add_argument("--trace-export", default=None, metavar="PATH",
                        help="write this run's spans as JSON lines")
    p_plan.set_defaults(func=_cmd_plan)

    p_serve = sub.add_parser("serve", help="run the planner daemon")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                         help="TCP port (0 picks a free one)")
    p_serve.add_argument("--pool-processes", type=int, default=None,
                         help="solver worker processes (0 = threads)")
    p_serve.add_argument("--restarts", type=int, default=4,
                         help="annealing restarts per solve")
    p_serve.add_argument("--cache-size", type=int, default=128,
                         help="plan-cache capacity (entries)")
    p_serve.add_argument("--max-inflight", type=int, default=4,
                         help="concurrent solves before queueing")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="queued solves before shedding requests")
    p_serve.add_argument("--request-timeout", type=float, default=600.0,
                         help="per-solve deadline in seconds")
    p_serve.add_argument("--trace-export", default=None, metavar="PATH",
                         help="stream every finished span to this JSONL file")
    p_serve.add_argument("--dump-dir", default=None, metavar="DIR",
                         help="auto-write a flight-recorder debug bundle "
                              "here on every SLO page transition")
    _add_logging_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded planner fleet (router + N shard processes)",
    )
    p_fleet.add_argument("--shards", type=int, default=2,
                         help="planner shard processes to spawn")
    p_fleet.add_argument("--host", default="127.0.0.1", help="bind address")
    p_fleet.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                         help="router TCP port (0 picks a free one); "
                              "shards always take free ports")
    p_fleet.add_argument("--pool-processes", type=int, default=1,
                         help="solver worker processes per shard "
                              "(0 = threads)")
    p_fleet.add_argument("--restarts", type=int, default=4,
                         help="annealing restarts per solve (all shards)")
    p_fleet.add_argument("--cache-size", type=int, default=256,
                         help="router L1 plan-cache capacity (entries)")
    p_fleet.add_argument("--max-inflight", type=int, default=16,
                         help="concurrent forwards at the router")
    p_fleet.add_argument("--max-queue-per-tenant", type=int, default=64,
                         help="queued requests per tenant before shedding")
    p_fleet.add_argument("--shard-max-inflight", type=int, default=4,
                         help="concurrent solves per shard")
    p_fleet.add_argument("--tenant-weight", action="append", metavar="NAME=W",
                         help="fair-queueing weight for a tenant "
                              "(repeatable; default 1.0)")
    p_fleet.add_argument("--health-interval", type=float, default=1.0,
                         help="seconds between shard health sweeps")
    p_fleet.add_argument("--request-timeout", type=float, default=600.0,
                         help="per-solve deadline on each shard (seconds)")
    p_fleet.add_argument("--no-restart", action="store_true",
                         help="do not respawn crashed shards")
    p_fleet.add_argument("--trace-export", default=None, metavar="PATH",
                         help="stream router spans to this JSONL file")
    p_fleet.add_argument("--dump-dir", default=None, metavar="DIR",
                         help="auto-write debug bundles here on SLO pages "
                              "(router at the top level, one subdir per "
                              "shard)")
    _add_logging_args(p_fleet)
    p_fleet.set_defaults(func=_cmd_fleet)

    p_submit = sub.add_parser("submit",
                              help="submit a workload to a running daemon")
    _add_workload_args(p_submit)
    _add_logging_args(p_submit)
    p_submit.add_argument("--vms", type=int, default=25, help="cluster size")
    p_submit.add_argument("--basic", action="store_true",
                          help="use basic CAST instead of CAST++")
    p_submit.add_argument("--verbose", action="store_true",
                          help="print per-job placements")
    p_submit.add_argument("--out", default=None,
                          help="write the plan as JSON to this file")
    p_submit.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_submit.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                          help="daemon TCP port")
    p_submit.add_argument("--restarts", type=int, default=None,
                          help="annealing restarts (default: server's)")
    p_submit.add_argument("--tenant", default=None,
                          help="tenant label for fleet fair queueing "
                               "and per-tenant metrics")
    p_submit.add_argument("--retries", type=int, default=0,
                          help="reconnect attempts (exponential backoff) "
                               "after a lost connection; 0 = fail fast")
    p_submit.add_argument("--show-stats", action="store_true",
                          help="also print server cache/dedup counters")
    p_submit.set_defaults(func=_cmd_submit)

    p_top = sub.add_parser(
        "top",
        help="live dashboard over a running daemon or fleet router",
    )
    p_top.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_top.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                       help="daemon TCP port")
    p_top.add_argument("--fleet", action="store_true",
                       help="force the fleet view (auto-detected from the "
                            "stats payload otherwise)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between repaints")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit (for scripts/CI)")
    p_top.add_argument("--no-color", action="store_true",
                       help="disable ANSI colors even on a TTY")
    _add_logging_args(p_top)
    p_top.set_defaults(func=_cmd_top)

    p_prof = sub.add_parser(
        "profile",
        help="run the sampling profiler inside a running daemon",
    )
    p_prof.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_prof.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                        help="daemon TCP port")
    p_prof.add_argument("--duration", type=float, default=1.0,
                        help="seconds to sample (server caps at 30)")
    p_prof.add_argument("--interval", type=float, default=0.005,
                        help="seconds between samples")
    p_prof.add_argument("--out", default=None, metavar="PATH",
                        help="write folded stacks (flamegraph input) here")
    _add_logging_args(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    p_dump = sub.add_parser(
        "debug-dump",
        help="fetch a flight-recorder postmortem bundle from a daemon",
    )
    p_dump.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_dump.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                        help="daemon TCP port")
    p_dump.add_argument("--out", default=None, metavar="PATH",
                        help="bundle path (default castdump-<ms>-cli.jsonl)")
    _add_logging_args(p_dump)
    p_dump.set_defaults(func=_cmd_debug_dump)

    p_size = sub.add_parser("size", help="sweep cluster sizes for a workload")
    _add_workload_args(p_size)
    _add_logging_args(p_size)
    p_size.add_argument("--sizes", default="5,10,25",
                        help="comma-separated candidate VM counts")
    p_size.set_defaults(func=_cmd_size)

    p_sim = sub.add_parser(
        "simulate",
        help="measure a fixed tiering on the simulated cluster",
    )
    p_sim.add_argument("--workload", default="facebook",
                       choices=("facebook", "small"),
                       help="which built-in workload to simulate")
    p_sim.add_argument("--workload-file", default=None,
                       help="JSON workload file (overrides --workload)")
    p_sim.add_argument("--provider", default="google",
                       choices=sorted(_PROVIDERS),
                       help="cloud catalog to simulate against")
    p_sim.add_argument("--vms", type=int, default=25, help="cluster size")
    p_sim.add_argument("--tier", default="objStore",
                       choices=("ephSSD", "persSSD", "persHDD", "objStore"),
                       help="uniform tier for every job (default objStore)")
    p_sim.add_argument("--plan-file", default=None, metavar="PATH",
                       help="tiering-plan JSON (from 'plan --out'); "
                            "overrides --tier")
    p_sim.add_argument("--batch", action="store_true",
                       help="route eligible jobs through the vectorized "
                            "wave-model fast path (phase times agree with "
                            "the event engine within 1e-9 relative)")
    p_sim.add_argument("--workers", type=int, default=None,
                       help="parallel simulation workers; default serial")
    p_sim.add_argument("--check", action="store_true",
                       help="re-measure on the exact event engine and "
                            "exit 1 if any phase disagrees beyond the "
                            "tolerance (the parity gate)")
    _add_logging_args(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_sess = sub.add_parser(
        "session",
        help="replay a churn trace through a streaming planning session",
    )
    p_sess.add_argument("--replay", required=True, metavar="PATH",
                        help="session-trace JSON file (schema v1: open "
                             "params plus add/remove events)")
    p_sess.add_argument("--vms", type=int, default=None,
                        help="cluster size (overrides the trace)")
    p_sess.add_argument("--provider", default=None,
                        choices=sorted(_PROVIDERS),
                        help="cloud catalog (overrides the trace)")
    p_sess.add_argument("--iterations", type=int, default=None,
                        help="full-solve iteration budget (overrides "
                             "the trace)")
    p_sess.add_argument("--seed", type=int, default=None,
                        help="solver RNG seed (overrides the trace)")
    p_sess.add_argument("--backend", default=None,
                        choices=("anneal", "tempering"),
                        help="full-solve backend (overrides the trace)")
    p_sess.add_argument("--replicas", type=int, default=None,
                        help="tempering replica count (overrides the trace)")
    p_sess.add_argument("--parity-every", type=int, default=None,
                        metavar="N",
                        help="bit-parity re-score every Nth re-plan; any "
                             "failure exits 1")
    p_sess.add_argument("--out", default=None, metavar="PATH",
                        help="write per-event results as JSON")
    _add_logging_args(p_sess)
    p_sess.set_defaults(func=_cmd_session)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", help="experiment id (or 'all')")
    p_exp.add_argument("--workers", type=int, default=None,
                       help="parallel simulation workers for the "
                            "measurement-heavy experiments (fig7, fig9, "
                            "sensitivity); default serial")
    p_exp.add_argument("--fast-sim", action="store_true",
                       help="vectorized wave-model fast path for the "
                            "measurement simulations (fig7, fig9, "
                            "sensitivity); eligibility is per job, so "
                            "ineligible jobs still run on the exact "
                            "event engine")
    _add_logging_args(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_rep = sub.add_parser("report", help="generate the full reproduction report")
    p_rep.add_argument("--out", default=None, help="write markdown to this file")
    p_rep.add_argument("--quick", action="store_true",
                       help="reduced solver budgets (fast smoke run)")
    _add_logging_args(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Ctrl-C is the normal way to stop ``serve``, so ``KeyboardInterrupt``
    exits cleanly with the conventional 130 instead of a traceback, and
    any :class:`CastError` (unknown provider, malformed workload file,
    service-side failures relayed by ``submit``) prints one line and
    exits 2.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        getattr(args, "log_level", "warning"),
        json_format=getattr(args, "log_json", False),
    )
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except CastError as exc:
        # Service-relayed errors carry the server-side trace id (the
        # client stamps it from the error envelope) — print it so the
        # failure can be grepped out of a debug dump or span export.
        trace = getattr(exc, "trace_id", None)
        suffix = f"  [trace {str(trace)[:12]}]" if trace else ""
        print(f"{exc}{suffix}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
