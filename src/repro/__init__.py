"""CAST: Tiering Storage for Data Analytics in the Cloud — reproduction.

A full Python reproduction of Cheng, Iqbal, Gupta & Butt, *CAST:
Tiering Storage for Data Analytics in the Cloud*, HPDC 2015.

The package provides:

* :mod:`repro.cloud` — Google Cloud's Jan-2015 storage catalog and
  pricing (Table 1), capacity-scaling curves, VM shapes;
* :mod:`repro.workloads` — application profiles (Table 2), SWIM-style
  Facebook workload synthesis (Table 4), workflow DAGs (Fig. 4);
* :mod:`repro.simulator` — a discrete-event MapReduce + storage
  cluster simulator standing in for the paper's 400-core testbed;
* :mod:`repro.profiler` — offline job profiling into performance-model
  matrices (§4.1);
* :mod:`repro.core` — the CAST contribution: Eq. 1 estimator, PCHIP
  capacity regression, Eq. 2–6 utility/cost models, the simulated
  annealing solver, greedy baselines, and CAST++ (§4.2–4.3);
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import plan_workload
    from repro.workloads import synthesize_facebook_workload

    outcome = plan_workload(synthesize_facebook_workload())
    print(outcome.evaluation.utility, outcome.evaluation.cost.total_usd)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Optional

from .cloud import ClusterSpec, CloudProvider, Tier, google_cloud_2015
from .core import (
    AnnealingSchedule,
    CastPlusPlus,
    CastSolver,
    PlanEvaluation,
    TieringPlan,
)
from .profiler import build_model_matrix
from .workloads import WorkloadSpec

# Library etiquette: no handler, no output, unless the application (or
# the cast-plan CLI via repro.obs.configure_logging) attaches one.
logging.getLogger("repro").addHandler(logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "plan_workload",
    "PlanningOutcome",
    "CastSolver",
    "CastPlusPlus",
    "TieringPlan",
    "WorkloadSpec",
    "Tier",
    "google_cloud_2015",
]


@dataclass(frozen=True)
class PlanningOutcome:
    """Result of the one-call planning pipeline."""

    plan: TieringPlan
    evaluation: PlanEvaluation
    solver: CastSolver


def plan_workload(
    workload: WorkloadSpec,
    n_vms: int = 25,
    provider: Optional[CloudProvider] = None,
    use_castpp: bool = True,
    iterations: int = 3000,
    seed: int = 42,
    backend: str = "anneal",
    replicas: int = 8,
    progress: Optional[Any] = None,
    progress_every: int = 500,
    initial_plan: Optional[TieringPlan] = None,
) -> PlanningOutcome:
    """Profile, solve and evaluate a workload in one call.

    This is the whole paper pipeline: offline profiling on the cluster
    substrate (§4.1), simulated-annealing tiering search (§4.2, with
    the §4.3 reuse enhancement when ``use_castpp``), and a reuse-aware
    Eq. 2 evaluation of the winning plan.  ``backend="tempering"``
    swaps the single Metropolis chain for the parallel-tempering
    annealer (``replicas`` coupled chains on the tensorized objective —
    see :mod:`repro.core.tempering`), the recommended setting beyond a
    few hundred jobs.  ``progress`` receives sampled
    :class:`repro.obs.SolverProgress` snapshots every
    ``progress_every`` iterations (``cast-plan plan --trace-solver``).
    ``initial_plan`` warm-starts the search from a previous best plan
    instead of the Algorithm 2 seed — the streaming session layer's
    millisecond re-plans (:mod:`repro.session`) ride on this.
    """
    provider = provider or google_cloud_2015()
    cluster = ClusterSpec(n_vms=n_vms, vm=provider.default_vm)
    matrix = build_model_matrix(provider=provider, cluster_spec=cluster)
    solver_cls = CastPlusPlus if use_castpp else CastSolver
    solver = solver_cls(
        cluster_spec=cluster,
        matrix=matrix,
        provider=provider,
        schedule=AnnealingSchedule(iter_max=iterations),
        seed=seed,
        backend=backend,
        replicas=replicas,
    )
    result = solver.solve(
        workload, initial=initial_plan,
        progress=progress, progress_every=progress_every,
    )
    evaluation = solver.evaluate(workload, result.best_state, reuse_aware=True)
    return PlanningOutcome(plan=result.best_state, evaluation=evaluation, solver=solver)
