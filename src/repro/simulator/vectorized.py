"""Closed-form wave-model batch evaluator (the vectorized fast path).

The discrete-event engine exists for *contention*: shared-channel
queueing, per-block placements that concentrate slow blocks on a few
nodes (Fig. 5), and phased workloads.  In the common uncontended case —
uniform placement, full staging, one job on a fresh cluster — every
wave of a phase is a cohort of identical tasks entering an otherwise
idle processor-shared channel, so the engine's event cascade collapses
to the paper's Eq. 1 closed form per wave:

* a **map wave** of ``k`` tasks on one node lasts
  ``startup + max(read_overhead + k·split/B_block, split/cpu_map)
  + k·inter/B_inter``;
* a **reduce wave** of ``k`` tasks lasts
  ``startup + max(k·shuffle/B_inter, shuffle/cpu_shuffle +
  shuffle/cpu_reduce) + write_overheads + k·out/B_out``;
* ephSSD **staging** is one bulk stream per node:
  ``requests·overhead + per_node_mb/B_staging``.

A phase is then a dot product of wave counts and wave durations, and a
whole batch of simulation requests evaluates as NumPy array
expressions over ``(batch, phase, wave)`` tensors — no event queue, no
Python callbacks.

Exactness
---------
The closed form replays the engine's arithmetic (same sizes, same
bandwidth sizing via :func:`~repro.simulator.cluster.channel_bandwidth_mb_s`,
same startup constant) but not its operation *order*, so results agree
with the virtual-time engine only to floating-point reassociation —
empirically ~1e-15 relative, gated at :data:`ANALYTIC_RTOL` (1e-9, the
house parity tolerance).  Analytic results are therefore **never**
stored under an engine cache key (see ``simulate_batch``), and
:func:`fallback_reason` routes every request the closed form cannot
express back to the exact event engine:

* ``"placement"`` — non-uniform block placement (stragglers/contention);
* ``"phased"`` — staging partially disabled, as in ``core/dynamic.py``
  phased workloads and mid-DAG workflow jobs;
* ``"degenerate"`` — malformed task counts.

``REPRO_SIM_REFERENCE=1`` disables the fast path entirely (the batch
API then returns bit-identical event-engine results), and
``REPRO_SIM_ANALYTIC=0`` turns it off for callers that did not opt in
explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..units import gb_to_mb
from ..workloads.spec import JobSpec
from .cluster import channel_bandwidth_mb_s
from .hdfs import BlockPlacement
from .storage_backend import _EPS_MB
from .tasks import TASK_STARTUP_S

__all__ = [
    "ANALYTIC_ENV",
    "ANALYTIC_RTOL",
    "WaveModelInputs",
    "analytic_enabled",
    "fallback_reason",
    "wave_model_inputs",
    "evaluate_wave_model",
    "fastpath_stats",
    "reset_fastpath_stats",
    "register_fastpath_metrics",
]

#: Environment variable disabling the analytic fast path ("0"/"false").
ANALYTIC_ENV = "REPRO_SIM_ANALYTIC"

#: Documented agreement bound between the closed form and the
#: virtual-time event engine: per-phase relative difference.  Matches
#: the PARITY_RTOL the throughput benchmarks gate on.
ANALYTIC_RTOL = 1e-9


def analytic_enabled() -> bool:
    """Whether ``REPRO_SIM_ANALYTIC`` leaves the fast path on (default)."""
    return os.environ.get(ANALYTIC_ENV, "").strip().lower() not in ("0", "false")


def fallback_reason(
    job: JobSpec,
    placement: Optional[BlockPlacement],
    stage_in: bool,
    stage_out: bool,
) -> Optional[str]:
    """Why one request must run on the event engine (``None`` = eligible).

    ``placement`` must already be normalized by
    :func:`~repro.simulator.engine.resolve_sim_inputs` (``None`` for the
    uniform case) — a non-``None`` placement means per-block tier mixes,
    whose straggler plateaus only the event engine reproduces.  Phased
    requests (staging partially disabled, the ``core/dynamic.py``
    pattern) also fall back: their timing interacts with surrounding
    promote/demote transfers the closed form does not see.
    """
    if placement is not None:
        return "placement"
    if not (stage_in and stage_out):
        return "phased"
    if job.map_tasks < 1 or job.reduce_tasks < 1:
        return "degenerate"
    return None


@dataclass(frozen=True, slots=True)
class WaveModelInputs:
    """Per-request scalars the closed form reads — nothing else.

    One instance per eligible simulation request; a batch of these is
    what :func:`evaluate_wave_model` turns into arrays.  All sizes are
    MB (the engine's channel unit), all rates MB/s.
    """

    m: int                    #: map tasks
    r: int                    #: reduce tasks
    n: int                    #: worker VMs
    map_slots: int
    reduce_slots: int
    split_mb: float           #: per-map input split
    inter_mb: float           #: per-map intermediate partition
    shuffle_mb: float         #: per-reduce shuffle read
    out_mb: float             #: per-reduce output write
    cpu_map: float
    cpu_shuffle: float
    cpu_reduce: float
    bw_block: float           #: per-node input-tier channel bandwidth
    bw_inter: float
    bw_out: float
    ovh_block: float          #: per-read request overhead (objStore input)
    ovh_inter: float
    ovh_out: float            #: per-write overhead × files_per_reduce_task
    download_mb: float        #: per-node staged input (0 = no download)
    download_reqs: int
    upload_mb: float          #: per-node persisted output (0 = no upload)
    upload_reqs: int
    bw_staging: float
    ovh_staging: float


def wave_model_inputs(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    caps: Mapping[Tier, float],
    out_tier: Tier,
    stage_in: bool,
    stage_out: bool,
) -> WaveModelInputs:
    """Extract one request's closed-form scalars (inputs pre-resolved)."""
    from .engine import STAGING_LANES_PER_VM, intermediate_tier_for

    app = job.app
    n = cluster_spec.n_vms
    m = job.map_tasks
    r = job.reduce_tasks
    inter_tier = intermediate_tier_for(provider, input_tier)
    split_mb = gb_to_mb(job.input_gb / m)

    def _overhead(tier: Tier) -> float:
        if tier is Tier.OBJ_STORE:
            return float(provider.service(tier).request_overhead_s)
        return 0.0

    svc_obj = provider.service(Tier.OBJ_STORE)
    bw_staging = float(svc_obj.bulk_staging_mb_s or svc_obj.throughput_mb_s(1.0))
    lanes = n * STAGING_LANES_PER_VM

    download_mb = 0.0
    download_reqs = 0
    if input_tier is Tier.EPH_SSD and stage_in:
        download_mb = gb_to_mb(job.input_gb / n)
        download_reqs = max(1, -(-m // lanes))
    upload_mb = 0.0
    upload_reqs = 0
    if out_tier is Tier.EPH_SSD and job.output_gb > 0 and stage_out:
        upload_mb = gb_to_mb(job.output_gb / n)
        upload_reqs = max(1, -(-(r * app.files_per_reduce_task) // lanes))

    return WaveModelInputs(
        m=m,
        r=r,
        n=n,
        map_slots=cluster_spec.vm.map_slots,
        reduce_slots=cluster_spec.vm.reduce_slots,
        split_mb=split_mb,
        inter_mb=split_mb * app.map_selectivity,
        shuffle_mb=gb_to_mb(job.intermediate_gb / r),
        out_mb=gb_to_mb(job.output_gb / r),
        cpu_map=float(app.cpu_map_mb_s),
        cpu_shuffle=float(app.cpu_shuffle_mb_s),
        cpu_reduce=float(app.cpu_reduce_mb_s),
        bw_block=channel_bandwidth_mb_s(provider, cluster_spec, input_tier, caps),
        bw_inter=channel_bandwidth_mb_s(provider, cluster_spec, inter_tier, caps),
        bw_out=channel_bandwidth_mb_s(provider, cluster_spec, out_tier, caps),
        ovh_block=_overhead(input_tier),
        ovh_inter=_overhead(inter_tier),
        ovh_out=_overhead(out_tier) * app.files_per_reduce_task,
        download_mb=download_mb,
        download_reqs=download_reqs,
        upload_mb=upload_mb,
        upload_reqs=upload_reqs,
        bw_staging=bw_staging,
        ovh_staging=float(svc_obj.request_overhead_s),
    )


def evaluate_wave_model(batch: Sequence[WaveModelInputs]) -> np.ndarray:
    """Evaluate a batch of requests; returns ``(len(batch), 4)`` phases.

    Columns are ``(download_s, map_s, reduce_s, upload_s)``.  The
    computation builds ``(batch, phase, wave)`` count and duration
    tensors — phases have at most two distinct wave shapes (full waves
    and one remainder wave) — and contracts over the wave axis.
    """
    size = len(batch)
    if size == 0:
        return np.zeros((0, 4))

    def _f(field: str) -> np.ndarray:
        return np.array([getattr(w, field) for w in batch], dtype=np.float64)

    def _i(field: str) -> np.ndarray:
        return np.array([getattr(w, field) for w in batch], dtype=np.int64)

    m, r, n = _i("m"), _i("r"), _i("n")
    ms, rs = _i("map_slots"), _i("reduce_slots")
    split_mb, inter_mb = _f("split_mb"), _f("inter_mb")
    shuffle_mb, out_mb = _f("shuffle_mb"), _f("out_mb")
    cpu_map, cpu_shuffle, cpu_reduce = _f("cpu_map"), _f("cpu_shuffle"), _f("cpu_reduce")
    bw_block, bw_inter, bw_out = _f("bw_block"), _f("bw_inter"), _f("bw_out")
    ovh_block, ovh_inter, ovh_out = _f("ovh_block"), _f("ovh_inter"), _f("ovh_out")

    def map_wave(k: np.ndarray) -> np.ndarray:
        """Duration of a map wave of ``k`` concurrent tasks per node."""
        kf = k.astype(np.float64)
        read = ovh_block + np.where(split_mb > _EPS_MB, kf * split_mb / bw_block, 0.0)
        compute = split_mb / cpu_map
        write = np.where(
            inter_mb <= 0.0,
            0.0,
            ovh_inter + np.where(inter_mb > _EPS_MB, kf * inter_mb / bw_inter, 0.0),
        )
        return np.where(k > 0, TASK_STARTUP_S + np.maximum(read, compute) + write, 0.0)

    def reduce_wave(k: np.ndarray) -> np.ndarray:
        """Duration of a reduce wave of ``k`` concurrent tasks per node."""
        kf = k.astype(np.float64)
        read = np.where(
            shuffle_mb <= 0.0,
            0.0,
            ovh_inter + np.where(shuffle_mb > _EPS_MB, kf * shuffle_mb / bw_inter, 0.0),
        )
        compute = shuffle_mb / cpu_shuffle + shuffle_mb / cpu_reduce
        write = np.where(
            out_mb <= 0.0,
            0.0,
            ovh_out + np.where(out_mb > _EPS_MB, kf * out_mb / bw_out, 0.0),
        )
        return np.where(k > 0, TASK_STARTUP_S + np.maximum(read, compute) + write, 0.0)

    # --- map: the fullest node holds ceil(m/n) data-local tasks and
    # runs them in lockstep waves of its map-slot count.
    per_node = -(-m // n)
    map_full, map_rem = np.divmod(per_node, ms)

    # --- reduce: breadth-first dispatch spreads min(r, n·rs) tasks
    # evenly; past that, refills key off which event *kind* completes a
    # wave.  Output writes and read-bound waves complete through a
    # channel wake that re-fills one node at a time (clustered
    # remainder: min(rs, rem)); compute-bound waves complete in ring
    # dispatch order and re-fill breadth-first (ceil(rem/n)).  Ties are
    # clustered — wake events re-arm behind same-time compute events.
    cap = n * rs
    single = -(-r // n)  # r <= cap: one wave of ceil(r/n)
    full_waves, rem = np.divmod(r, cap)
    read_rs = np.where(
        shuffle_mb <= 0.0,
        0.0,
        ovh_inter + np.where(shuffle_mb > _EPS_MB, rs * shuffle_mb / bw_inter, 0.0),
    )
    compute_r = shuffle_mb / cpu_shuffle + shuffle_mb / cpu_reduce
    clustered = (out_mb > 0.0) | (read_rs >= compute_r)
    k_rem = np.where(clustered, np.minimum(rs, rem), np.minimum(rs, -(-rem // n)))
    multi = r > cap
    reduce_k_last = np.where(multi, k_rem, single)

    # --- staging: one bulk stream per node, request setup up front.
    dl_mb, ul_mb = _f("download_mb"), _f("upload_mb")
    dl_reqs, ul_reqs = _i("download_reqs"), _i("upload_reqs")
    bw_staging, ovh_staging = _f("bw_staging"), _f("ovh_staging")

    def staging_time(size_mb: np.ndarray, reqs: np.ndarray) -> np.ndarray:
        setup = reqs.astype(np.float64) * ovh_staging
        stream = np.where(size_mb > _EPS_MB, size_mb / bw_staging, 0.0)
        return np.where(reqs > 0, setup + stream, 0.0)

    # --- contract (batch, phase, wave) counts against durations.
    durations = np.zeros((size, 4, 2))
    counts = np.zeros((size, 4, 2))
    durations[:, 0, 0] = staging_time(dl_mb, dl_reqs)
    counts[:, 0, 0] = (dl_reqs > 0).astype(np.float64)
    durations[:, 1, 0] = map_wave(ms)
    counts[:, 1, 0] = map_full.astype(np.float64)
    durations[:, 1, 1] = map_wave(map_rem)
    counts[:, 1, 1] = (map_rem > 0).astype(np.float64)
    durations[:, 2, 0] = reduce_wave(rs)
    counts[:, 2, 0] = np.where(multi, full_waves, 0).astype(np.float64)
    durations[:, 2, 1] = reduce_wave(reduce_k_last)
    counts[:, 2, 1] = (reduce_k_last > 0).astype(np.float64)
    durations[:, 3, 0] = staging_time(ul_mb, ul_reqs)
    counts[:, 3, 0] = (ul_reqs > 0).astype(np.float64)
    return (counts * durations).sum(axis=2)


class _FastPathStats:
    """Plain-int counters for batch routing decisions (obs-mirrored)."""

    __slots__ = ("analytic", "fallback", "cache_hits", "deduped", "batches",
                 "fallback_reasons")

    def __init__(self) -> None:
        self.analytic = 0
        self.fallback = 0
        self.cache_hits = 0
        self.deduped = 0
        self.batches = 0
        self.fallback_reasons: Dict[str, int] = {}

    def note_fallback(self, reason: str) -> None:
        self.fallback += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "analytic": self.analytic,
            "fallback": self.fallback,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "batches": self.batches,
            "fallback_reasons": dict(self.fallback_reasons),
        }


_STATS = _FastPathStats()


def _stats() -> _FastPathStats:
    """The process-wide fast-path counters (internal)."""
    return _STATS


def fastpath_stats() -> Dict[str, Any]:
    """Snapshot of the batch fast-path routing counters."""
    return _STATS.snapshot()


def reset_fastpath_stats() -> None:
    """Zero the counters (benchmarks and tests)."""
    s = _STATS
    s.analytic = s.fallback = s.cache_hits = s.deduped = s.batches = 0
    s.fallback_reasons.clear()


def register_fastpath_metrics(registry: Any, key: str = "sim_fastpath") -> None:
    """Mirror fast-path counters into a metrics registry.

    Same keyed-collector pattern as the simulation cache: publishes
    ``cast_sim_fastpath_total{path=analytic|fallback|cache_hit|deduped}``,
    ``cast_sim_fastpath_batches_total`` and per-reason
    ``cast_sim_fastpath_fallbacks_total{reason=...}`` on every scrape,
    keeping the dispatch path itself uninstrumented.
    """

    def _mirror(reg: Any) -> None:
        s = _STATS
        paths = reg.counter(
            "cast_sim_fastpath_total",
            "Batch simulation requests by routing outcome",
            labelnames=("path",),
        )
        paths.set_total(s.analytic, path="analytic")
        paths.set_total(s.fallback, path="fallback")
        paths.set_total(s.cache_hits, path="cache_hit")
        paths.set_total(s.deduped, path="deduped")
        reg.counter(
            "cast_sim_fastpath_batches_total", "simulate_batch invocations"
        ).set_total(s.batches)
        reasons = reg.counter(
            "cast_sim_fastpath_fallbacks_total",
            "Event-engine fallbacks by reason",
            labelnames=("reason",),
        )
        for reason, count in sorted(s.fallback_reasons.items()):
            reasons.set_total(count, reason=reason)

    registry.register_collector(key, _mirror)


def batch_results_match(
    a: Sequence[Any],
    b: Sequence[Any],
    rtol: float = ANALYTIC_RTOL,
) -> List[str]:
    """Per-phase relative comparison of two aligned result sequences.

    Returns human-readable mismatch descriptions (empty = parity).
    Shared by the CLI ``--check`` gate, the vectorized benchmark and
    the tests so "the documented tolerance" is one definition.
    """
    problems: List[str] = []
    phases = ("download_s", "map_s", "reduce_s", "upload_s")
    for ra, rb in zip(a, b):
        for phase in phases:
            va, vb = getattr(ra, phase), getattr(rb, phase)
            scale = max(abs(va), abs(vb), 1e-12)
            if abs(va - vb) / scale > rtol:
                problems.append(
                    f"{ra.job_id}.{phase}: {va!r} vs {vb!r} "
                    f"(rel {abs(va - vb) / scale:.3e} > {rtol:g})"
                )
    return problems
