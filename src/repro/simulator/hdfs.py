"""HDFS-style block placement across storage tiers.

CAST argues for **all-or-nothing, job-level** placement (§3.2, Fig. 5):
splitting one job's input blocks across a fast and a slow tier does not
help, because the map tasks reading from the slow tier straggle and
dominate the job's makespan.  To *demonstrate* that (rather than assume
it), the simulator supports per-block tier assignment: a
:class:`BlockPlacement` maps every input split to the tier its block
lives on, and the map phase reads each split from its block's tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..cloud.storage import Tier
from ..errors import SimulationError

__all__ = ["BlockPlacement"]


@dataclass(frozen=True)
class BlockPlacement:
    """Tier assignment for each input block of one job.

    ``tiers[i]`` is the tier holding block ``i`` (and hence serving map
    task ``i``'s read).  The all-or-nothing policy is the special case
    of a single distinct tier.
    """

    tiers: Tuple[Tier, ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise SimulationError("BlockPlacement needs at least one block")

    @staticmethod
    def uniform(n_blocks: int, tier: Tier) -> "BlockPlacement":
        """All blocks on one tier (the CAST policy)."""
        if n_blocks <= 0:
            raise SimulationError(f"need at least one block, got {n_blocks}")
        return BlockPlacement(tiers=(tier,) * n_blocks)

    @staticmethod
    def fractional(
        n_blocks: int,
        fast_tier: Tier,
        slow_tier: Tier,
        fast_fraction: float,
        layout: str = "clustered",
    ) -> "BlockPlacement":
        """``fast_fraction`` of blocks on the fast tier, rest on the slow.

        Parameters
        ----------
        layout:
            ``"clustered"`` (default) — slow blocks occupy a contiguous
            index range and therefore, under data-local scheduling,
            concentrate on a subset of nodes whose volumes they share.
            This is how HDFS-level tier partitioning behaves (whole
            files / block ranges land on one medium) and produces the
            Fig. 5 plateau: any node still serving slow blocks at full
            local concurrency paces the job.
            ``"interleaved"`` — fast blocks spread evenly through the
            index space (every node mixes both tiers).
        """
        if not 0.0 <= fast_fraction <= 1.0:
            raise SimulationError(f"fraction out of [0,1]: {fast_fraction}")
        if n_blocks <= 0:
            raise SimulationError(f"need at least one block, got {n_blocks}")
        n_fast = int(round(fast_fraction * n_blocks))
        tiers: List[Tier] = [slow_tier] * n_blocks
        if layout == "clustered":
            for i in range(n_fast):
                tiers[i] = fast_tier
        elif layout == "interleaved":
            if n_fast > 0:
                idx = np.unique(
                    np.round(np.linspace(0, n_blocks - 1, n_fast)).astype(int)
                )
                # Rounding collisions can drop slots; fill from the front.
                missing = n_fast - idx.size
                if missing > 0:
                    extra = [i for i in range(n_blocks) if i not in set(idx.tolist())]
                    idx = np.concatenate([idx, np.asarray(extra[:missing], dtype=int)])
                for i in idx:
                    tiers[int(i)] = fast_tier
        else:
            raise SimulationError(f"unknown layout: {layout!r}")
        return BlockPlacement(tiers=tuple(tiers))

    # -- introspection -----------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of blocks (== map tasks)."""
        return len(self.tiers)

    def tier_counts(self) -> Mapping[Tier, int]:
        """How many blocks live on each tier."""
        out: Dict[Tier, int] = {}
        for t in self.tiers:
            out[t] = out.get(t, 0) + 1
        return out

    def distinct_tiers(self) -> Tuple[Tier, ...]:
        """The tiers actually used, in first-appearance order."""
        seen: List[Tier] = []
        for t in self.tiers:
            if t not in seen:
                seen.append(t)
        return tuple(seen)
