"""Task execution models: map and reduce task state machines.

Hadoop tasks stream records: input I/O overlaps with user-code
processing, so a task's read-and-process stage lasts as long as the
*slower* of its I/O and its compute — the pipelined approximation
``max(io, cpu)``.  This is what makes CPU-bound applications (KMeans,
Pagerank) tier-insensitive: their compute leg dominates on every tier
(§3.1.2, Fig. 1(d)).  Output writes happen after processing and are
serialized behind it.

* **map task** — (read split ∥ compute at ``cpu_map``) → write its
  intermediate partition to the intermediate tier;
* **reduce task** — (shuffle-read ∥ compute at the shuffle+reduce
  rates) → write its output partition, paying per-object request
  overheads when that tier is an object store
  (``files_per_reduce_task`` requests per task — Join's pain point in
  §3.1.2).

I/O legs run on the node's :class:`SharedChannel` for the relevant
tier and therefore contend with every concurrent task on the node.
Compute legs are plain timed delays: slots already bound compute
concurrency, and the per-slot CPU rate is an app-profile constant.
"""

from __future__ import annotations

from typing import Callable

from ..cloud.storage import Tier
from ..units import gb_to_mb
from ..workloads.apps import AppProfile
from .cluster import SimNode
from .scheduler import TaskBody

__all__ = ["TASK_STARTUP_S", "make_map_task", "make_reduce_task"]

#: Fixed per-task launch latency (Hadoop-1 JVM spawn + heartbeat).
#: Keeps single-split jobs from finishing in milliseconds and puts a
#: tier-independent floor under every wave, which is why small jobs'
#: runtimes are insensitive to the storage choice (§5.1.1).
TASK_STARTUP_S = 1.0


def make_map_task(
    app: AppProfile,
    split_gb: float,
    block_tier: Tier,
    intermediate_tier: Tier,
) -> TaskBody:
    """Build a map-task body.

    Parameters
    ----------
    app:
        Application profile (CPU rates, selectivities).
    split_gb:
        Input split size for this task.
    block_tier:
        Tier holding this task's input block (per-block for Fig. 5).
    intermediate_tier:
        Tier receiving the map output partition.
    """
    split_mb = gb_to_mb(split_gb)
    inter_mb = split_mb * app.map_selectivity

    def body(node: SimNode, done: Callable[[], None]) -> None:
        queue = node.cluster.queue
        pending = [2]  # read leg + compute leg run in parallel

        def leg_done() -> None:
            pending[0] -= 1
            if pending[0] == 0:
                after_process()

        def after_process() -> None:
            if inter_mb <= 0:
                done()
                return
            node.channel(intermediate_tier).start_transfer(
                inter_mb, done, n_requests=1
            )

        def launch() -> None:
            node.channel(block_tier).start_transfer(split_mb, leg_done, n_requests=1)
            queue.schedule_after(split_mb / app.cpu_map_mb_s, leg_done)

        queue.schedule_after(TASK_STARTUP_S, launch)

    return body


def make_reduce_task(
    app: AppProfile,
    shuffle_gb: float,
    output_gb: float,
    intermediate_tier: Tier,
    output_tier: Tier,
) -> TaskBody:
    """Build a reduce-task body (shuffle read + compute + output write).

    Parameters
    ----------
    shuffle_gb:
        This task's share of the intermediate data (``inter/r``).
    output_gb:
        This task's share of the job output (``output/r``).
    intermediate_tier / output_tier:
        Where the shuffle data lives and where output lands.
    """
    shuffle_mb = gb_to_mb(shuffle_gb)
    output_mb = gb_to_mb(output_gb)

    def body(node: SimNode, done: Callable[[], None]) -> None:
        queue = node.cluster.queue
        pending = [2]  # shuffle-read leg + compute leg run in parallel

        def leg_done() -> None:
            pending[0] -= 1
            if pending[0] == 0:
                after_process()

        def after_process() -> None:
            if output_mb <= 0:
                done()
                return
            node.channel(output_tier).start_transfer(
                output_mb, done, n_requests=app.files_per_reduce_task
            )

        def launch() -> None:
            compute_s = (
                shuffle_mb / app.cpu_shuffle_mb_s + shuffle_mb / app.cpu_reduce_mb_s
            )
            queue.schedule_after(compute_s, leg_done)
            if shuffle_mb <= 0:
                leg_done()
            else:
                node.channel(intermediate_tier).start_transfer(
                    shuffle_mb, leg_done, n_requests=1
                )

        queue.schedule_after(TASK_STARTUP_S, launch)

    return body
