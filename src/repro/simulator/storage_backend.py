"""Simulated storage channels with fair bandwidth sharing.

Each node-attached volume stack (an ephSSD array, a persSSD volume, the
node's slice of objStore egress) is a :class:`SharedChannel`: a
processor-sharing bandwidth server.  ``k`` concurrent transfers each
progress at ``B/k`` MB/s, re-divided instantaneously whenever a
transfer starts or finishes — the standard fluid model for storage fair
sharing, and the mechanism behind both tier stragglers (Fig. 5) and
wave-level contention the analytical Eq. 1 model can only approximate
(which is precisely what gives the Fig. 8 prediction error its ~8 %
magnitude).

Object-store transfers additionally pay a fixed per-request setup
latency before entering the channel (GCS-connector behaviour, §3.1.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import SimulationError
from .events import EventQueue

__all__ = ["SharedChannel", "Transfer"]

_EPS_MB = 1e-9


@dataclass
class Transfer:
    """One in-flight transfer on a channel."""

    transfer_id: int
    remaining_mb: float
    on_complete: Callable[[], None]


class SharedChannel:
    """Processor-sharing bandwidth server.

    Parameters
    ----------
    queue:
        The owning simulation's event queue.
    bandwidth_mb_s:
        Aggregate channel bandwidth.
    name:
        Diagnostic label (``"node3/persSSD"``).
    request_overhead_s:
        Fixed setup latency charged per transfer *before* it begins to
        consume bandwidth (object stores; 0 for block devices).
    """

    __slots__ = (
        "_queue",
        "bandwidth_mb_s",
        "name",
        "request_overhead_s",
        "_active",
        "_ids",
        "_last_update",
        "_epoch",
        "busy_mb",
        "n_transfers",
    )

    def __init__(
        self,
        queue: EventQueue,
        bandwidth_mb_s: float,
        name: str = "channel",
        request_overhead_s: float = 0.0,
    ) -> None:
        if bandwidth_mb_s <= 0:
            raise SimulationError(f"{name}: non-positive bandwidth {bandwidth_mb_s}")
        if request_overhead_s < 0:
            raise SimulationError(f"{name}: negative request overhead")
        self._queue = queue
        self.bandwidth_mb_s = float(bandwidth_mb_s)
        self.name = name
        self.request_overhead_s = float(request_overhead_s)
        self._active: Dict[int, Transfer] = {}
        self._ids = itertools.count()
        self._last_update = queue.now
        self._epoch = 0
        #: Total MB moved through this channel (metrics).
        self.busy_mb = 0.0
        #: Total transfers completed (metrics).
        self.n_transfers = 0

    # -- public API --------------------------------------------------------

    def start_transfer(
        self,
        size_mb: float,
        on_complete: Callable[[], None],
        n_requests: int = 1,
    ) -> None:
        """Begin moving ``size_mb`` through the channel.

        ``on_complete`` fires when the last byte lands.  ``n_requests``
        multiplies the per-request setup overhead (a reduce task
        writing 64 small objects pays 64 setups, serialized before the
        data flows — the dominant effect for small files).
        """
        if size_mb < 0:
            raise SimulationError(f"{self.name}: negative transfer size {size_mb}")
        overhead = self.request_overhead_s * max(0, n_requests)

        def _enter() -> None:
            if size_mb <= _EPS_MB:
                self.n_transfers += 1
                on_complete()
                return
            self._advance()
            tid = next(self._ids)
            self._active[tid] = Transfer(tid, size_mb, on_complete)
            self._reschedule()

        if overhead > 0:
            self._queue.schedule_after(overhead, _enter)
        else:
            _enter()

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the channel."""
        return len(self._active)

    def current_rate_mb_s(self) -> float:
        """Per-transfer rate right now (``B/k``), or ``B`` when idle."""
        k = max(1, len(self._active))
        return self.bandwidth_mb_s / k

    # -- fluid-model internals ----------------------------------------------

    def _advance(self) -> None:
        """Progress all active transfers up to the current time."""
        now = self._queue.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        rate = self.bandwidth_mb_s / len(self._active)
        moved = rate * elapsed
        for t in self._active.values():
            t.remaining_mb -= moved
            self.busy_mb += moved

    def _reschedule(self) -> None:
        """Schedule the next completion; invalidate older schedules."""
        self._epoch += 1
        if not self._active:
            return
        epoch = self._epoch
        min_remaining = min(t.remaining_mb for t in self._active.values())
        rate = self.bandwidth_mb_s / len(self._active)
        eta = max(0.0, min_remaining) / rate
        self._queue.schedule_after(eta, lambda: self._on_completion_event(epoch))

    def _on_completion_event(self, epoch: int) -> None:
        """Handle a (possibly stale) predicted completion."""
        if epoch != self._epoch:
            return  # membership changed since this was scheduled
        self._advance()
        finished = [t for t in self._active.values() if t.remaining_mb <= _EPS_MB]
        for t in finished:
            del self._active[t.transfer_id]
        self._reschedule()
        for t in finished:
            self.n_transfers += 1
            t.on_complete()
