"""Simulated storage channels with fair bandwidth sharing.

Each node-attached volume stack (an ephSSD array, a persSSD volume, the
node's slice of objStore egress) is a shared channel: a
processor-sharing bandwidth server.  ``k`` concurrent transfers each
progress at ``B/k`` MB/s, re-divided instantaneously whenever a
transfer starts or finishes — the standard fluid model for storage fair
sharing, and the mechanism behind both tier stragglers (Fig. 5) and
wave-level contention the analytical Eq. 1 model can only approximate
(which is precisely what gives the Fig. 8 prediction error its ~8 %
magnitude).

Object-store transfers additionally pay a fixed per-request setup
latency before entering the channel (GCS-connector behaviour, §3.1.2).

Two implementations of the same fluid model live here:

* :class:`VirtualTimeSharedChannel` (the default) — a processor-sharing
  **virtual clock**.  Virtual time advances at ``B/k`` MB per simulated
  second, a transfer of ``S`` MB entering at virtual time ``V`` gets a
  service tag ``V + S``, and completions pop from a heap ordered by
  tag.  Membership changes cost ``O(log k)`` instead of the reference
  implementation's ``O(k)`` bulk decrement + ``O(k)`` min scan, and an
  identical-size cohort (a wave of equal map tasks entering together)
  shares one tag value and completes in a single event.
* :class:`ReferenceSharedChannel` — the original per-transfer
  bulk-decrement implementation, kept as the executable specification.
  Select it globally with ``REPRO_SIM_REFERENCE=1``;
  ``benchmarks/bench_sim_throughput.py`` gates on the two agreeing to
  ≤1e-9 relative on every phase timing.

:func:`SharedChannel` is the factory every caller goes through; it
reads the environment per construction so a single process can compare
both implementations.
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import SimulationError
from .events import EventQueue

__all__ = [
    "SharedChannel",
    "ReferenceSharedChannel",
    "VirtualTimeSharedChannel",
    "Transfer",
    "use_reference_channel",
    "channel_impl_name",
]

_EPS_MB = 1e-9

#: Environment variable selecting the reference simulator implementation
#: (the original channels *and* the original phase dispatcher, so the
#: flag restores the pre-optimization simulator end to end).
REFERENCE_ENV = "REPRO_SIM_REFERENCE"


def use_reference_channel() -> bool:
    """Whether ``REPRO_SIM_REFERENCE`` selects the reference implementation."""
    return os.environ.get(REFERENCE_ENV, "").strip().lower() not in ("", "0", "false")


def channel_impl_name() -> str:
    """The active implementation id (also part of the sim-cache key)."""
    return "reference" if use_reference_channel() else "virtual-time"


@dataclass
class Transfer:
    """One in-flight transfer on a reference channel."""

    __slots__ = ("transfer_id", "remaining_mb", "on_complete")

    transfer_id: int
    remaining_mb: float
    on_complete: Callable[[], None]


class _ChannelBase:
    """Shared validation, request-overhead handling and counters.

    Parameters
    ----------
    queue:
        The owning simulation's event queue.
    bandwidth_mb_s:
        Aggregate channel bandwidth.
    name:
        Diagnostic label (``"node3/persSSD"``).
    request_overhead_s:
        Fixed setup latency charged per transfer *before* it begins to
        consume bandwidth (object stores; 0 for block devices).
    """

    __slots__ = (
        "_queue",
        "bandwidth_mb_s",
        "name",
        "request_overhead_s",
        "_epoch",
        "busy_mb",
        "n_transfers",
    )

    def __init__(
        self,
        queue: EventQueue,
        bandwidth_mb_s: float,
        name: str = "channel",
        request_overhead_s: float = 0.0,
    ) -> None:
        if bandwidth_mb_s <= 0:
            raise SimulationError(f"{name}: non-positive bandwidth {bandwidth_mb_s}")
        if request_overhead_s < 0:
            raise SimulationError(f"{name}: negative request overhead")
        self._queue = queue
        self.bandwidth_mb_s = float(bandwidth_mb_s)
        self.name = name
        self.request_overhead_s = float(request_overhead_s)
        self._epoch = 0
        #: Total MB moved through this channel (metrics).
        self.busy_mb = 0.0
        #: Total transfers completed (metrics).
        self.n_transfers = 0

    # -- public API --------------------------------------------------------

    def start_transfer(
        self,
        size_mb: float,
        on_complete: Callable[[], None],
        n_requests: int = 1,
    ) -> None:
        """Begin moving ``size_mb`` through the channel.

        ``on_complete`` fires when the last byte lands.  ``n_requests``
        multiplies the per-request setup overhead (a reduce task
        writing 64 small objects pays 64 setups, serialized before the
        data flows — the dominant effect for small files).
        """
        if size_mb < 0:
            raise SimulationError(f"{self.name}: negative transfer size {size_mb}")
        overhead = self.request_overhead_s * (n_requests if n_requests > 0 else 0)
        if overhead > 0:
            self._queue.schedule_after(
                overhead, lambda: self._enter(size_mb, on_complete)
            )
        else:
            self._enter(size_mb, on_complete)

    def _enter(self, size_mb: float, on_complete: Callable[[], None]) -> None:
        if size_mb <= _EPS_MB:
            self.n_transfers += 1
            on_complete()
            return
        self._admit(size_mb, on_complete)

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the channel."""
        raise NotImplementedError

    def current_rate_mb_s(self) -> float:
        """Per-transfer rate right now (``B/k``), or ``B`` when idle."""
        return self.bandwidth_mb_s / max(1, self.active_transfers)

    # -- implementation hook -----------------------------------------------

    def _admit(self, size_mb: float, on_complete: Callable[[], None]) -> None:
        raise NotImplementedError


class ReferenceSharedChannel(_ChannelBase):
    """Processor-sharing bandwidth server — the reference implementation.

    Progress is advanced lazily on membership changes by bulk-
    decrementing every active transfer (``O(k)``), the next completion
    comes from a min scan over remaining sizes (``O(k)``), and stale
    completion predictions are invalidated by epoch counters.  Correct
    and simple, but ``O(n²)`` per phase of ``n`` concurrent transfers.
    """

    __slots__ = ("_active", "_ids", "_last_update")

    def __init__(
        self,
        queue: EventQueue,
        bandwidth_mb_s: float,
        name: str = "channel",
        request_overhead_s: float = 0.0,
    ) -> None:
        super().__init__(queue, bandwidth_mb_s, name, request_overhead_s)
        self._active: Dict[int, Transfer] = {}
        self._ids = itertools.count()
        self._last_update = queue.now

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the channel."""
        return len(self._active)

    # -- fluid-model internals ----------------------------------------------

    def _admit(self, size_mb: float, on_complete: Callable[[], None]) -> None:
        self._advance()
        tid = next(self._ids)
        self._active[tid] = Transfer(tid, size_mb, on_complete)
        self._reschedule()

    def _advance(self) -> None:
        """Progress all active transfers up to the current time."""
        now = self._queue.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        rate = self.bandwidth_mb_s / len(self._active)
        moved = rate * elapsed
        for t in self._active.values():
            t.remaining_mb -= moved
            self.busy_mb += moved

    def _reschedule(self) -> None:
        """Schedule the next completion; invalidate older schedules."""
        self._epoch += 1
        if not self._active:
            return
        epoch = self._epoch
        min_remaining = min(t.remaining_mb for t in self._active.values())
        rate = self.bandwidth_mb_s / len(self._active)
        eta = max(0.0, min_remaining) / rate
        self._queue.schedule_after(eta, lambda: self._on_completion_event(epoch))

    def _on_completion_event(self, epoch: int) -> None:
        """Handle a (possibly stale) predicted completion."""
        if epoch != self._epoch:
            return  # membership changed since this was scheduled
        self._advance()
        finished = [t for t in self._active.values() if t.remaining_mb <= _EPS_MB]
        for t in finished:
            del self._active[t.transfer_id]
        self._reschedule()
        for t in finished:
            self.n_transfers += 1
            t.on_complete()


class VirtualTimeSharedChannel(_ChannelBase):
    """Processor-sharing bandwidth server on a virtual service clock.

    Invariant: the channel's virtual time ``V`` advances at ``B/k`` MB
    per simulated second while ``k`` transfers are active, so every
    active transfer receives exactly ``dV`` MB over any interval.  A
    transfer of size ``S`` admitted at virtual time ``V₀`` therefore
    completes when ``V`` reaches its service tag ``V₀ + S`` — and
    ``tag − V`` *is* its remaining MB at any instant.  Completions pop
    from a heap keyed by ``(tag, seq)``: membership changes cost
    ``O(log k)``, equal-size cohorts share a tag and drain in one
    event, and FIFO order within a cohort comes from the seq counter.
    """

    __slots__ = ("_heap", "_ids", "_vt", "_n_active", "_last_update", "_wake_at")

    def __init__(
        self,
        queue: EventQueue,
        bandwidth_mb_s: float,
        name: str = "channel",
        request_overhead_s: float = 0.0,
    ) -> None:
        super().__init__(queue, bandwidth_mb_s, name, request_overhead_s)
        # (service tag, seq, completion callback), heap-ordered.
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._ids = itertools.count()
        self._vt = 0.0
        self._n_active = 0
        self._last_update = queue.now
        # Fire time of the single valid outstanding wake event (None
        # when nothing is scheduled).  See _rearm.
        self._wake_at: float | None = None

    @property
    def active_transfers(self) -> int:
        """Number of transfers currently sharing the channel."""
        return self._n_active

    @property
    def virtual_time_mb(self) -> float:
        """Accumulated per-transfer service (diagnostics / tests)."""
        return self._vt

    # -- fluid-model internals ----------------------------------------------

    def _admit(self, size_mb: float, on_complete: Callable[[], None]) -> None:
        self._advance()
        heapq.heappush(self._heap, (self._vt + size_mb, next(self._ids), on_complete))
        self._n_active += 1
        self._rearm()

    def _advance(self) -> None:
        """Advance the virtual clock up to the current time."""
        now = self._queue.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._n_active:
            return
        self._vt += self.bandwidth_mb_s / self._n_active * elapsed
        self.busy_mb += self.bandwidth_mb_s * elapsed

    def _rearm(self) -> None:
        """Keep one wake event scheduled at or before the head's finish.

        A wake that fires *early* (the head was pushed back by later
        admissions) is harmless: it pops nothing and re-arms at the
        corrected time.  So an outstanding wake only has to be replaced
        when the head's predicted finish moves *earlier* (a small
        transfer admitted under a long one).  Admission bursts — a wave
        of equal map tasks — therefore schedule one wake plus one
        correction instead of one event per admission; with the old
        always-invalidate scheme ~85 % of fired events were stale.
        """
        if not self._heap:
            self._wake_at = None
            return
        rate = self.bandwidth_mb_s / self._n_active
        lead = self._heap[0][0] - self._vt
        target = self._queue.now + (lead if lead > 0.0 else 0.0) / rate
        wake = self._wake_at
        if wake is not None and target >= wake:
            return  # the outstanding wake fires first and corrects
        self._epoch += 1
        self._wake_at = target
        epoch = self._epoch
        self._queue.schedule_at(target, lambda: self._on_wake(epoch))

    def _on_wake(self, epoch: int) -> None:
        """Pop every transfer whose service tag the clock has passed."""
        if epoch != self._epoch:
            return  # superseded by an earlier re-arm
        self._wake_at = None
        self._advance()
        finished: List[Tuple[float, int, Callable[[], None]]] = []
        while self._heap and self._heap[0][0] <= self._vt + _EPS_MB:
            finished.append(heapq.heappop(self._heap))
        self._n_active -= len(finished)
        self._rearm()
        for _tag, _seq, on_complete in finished:
            self.n_transfers += 1
            on_complete()


def SharedChannel(
    queue: EventQueue,
    bandwidth_mb_s: float,
    name: str = "channel",
    request_overhead_s: float = 0.0,
) -> _ChannelBase:
    """Build a shared channel with the active implementation.

    The virtual-time channel is the default; ``REPRO_SIM_REFERENCE=1``
    selects :class:`ReferenceSharedChannel` (read per construction, so
    parity harnesses can flip it inside one process).
    """
    cls = ReferenceSharedChannel if use_reference_channel() else VirtualTimeSharedChannel
    return cls(queue, bandwidth_mb_s, name=name, request_overhead_s=request_overhead_s)
