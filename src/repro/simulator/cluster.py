"""Simulated cluster: nodes, per-node storage channels, slot accounting.

A :class:`SimCluster` instantiates one :class:`SimNode` per VM.  Each
node owns one :class:`~repro.simulator.storage_backend.SharedChannel`
per storage tier it touches, sized from the provisioned per-VM capacity
through the provider's scaling curves:

* **ephSSD** — 733 MB/s per 375 GB volume, up to 4 volumes per VM;
* **persSSD / persHDD** — the Table 1 capacity→throughput curve
  evaluated at the per-VM volume size;
* **objStore** — each VM gets the measured 265 MB/s of connector
  throughput plus the per-request setup overhead.

Channels are created lazily on first use, so a job that never touches
persHDD pays nothing for it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..errors import SimulationError
from .events import EventQueue
from .storage_backend import SharedChannel

__all__ = ["SimNode", "SimCluster", "channel_bandwidth_mb_s"]


def channel_bandwidth_mb_s(
    provider: CloudProvider,
    spec: ClusterSpec,
    tier: Tier,
    per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
) -> float:
    """Per-node channel bandwidth for ``tier`` — without building a cluster.

    This is the single source of the sizing arithmetic: `SimCluster`
    channels and lightweight callers (cross-tier transfer estimates)
    both read it, so the two can never drift.
    """
    svc = provider.service(tier)
    if tier is Tier.OBJ_STORE:
        return float(svc.throughput_mb_s(1.0))
    cap = (per_vm_capacity_gb or {}).get(tier, 0.0)
    if tier is Tier.EPH_SSD:
        # Extra volumes add capacity, not throughput: Hadoop-1's
        # local-dir I/O paths do not stripe across a JBOD of local
        # SSDs, so a node's effective ephemeral bandwidth plateaus
        # at one device's speed (the paper's ephSSD-100% config
        # runs *slower* than persSSD-100% despite 4 volumes/VM).
        bw = svc.throughput_mb_s(svc.fixed_volume_gb)
    else:
        # Block volumes: throughput follows provisioned size; fall
        # back to the smallest Table 1 volume when unsized.
        eff_cap = cap if cap > 0 else 100.0
        bw = svc.throughput_mb_s(eff_cap)
    if svc.persistent and tier is not Tier.EPH_SSD:
        bw = min(bw, spec.vm.network_mb_s)
    return float(bw)


class SimNode:
    """One worker VM: slots plus per-tier storage channels."""

    __slots__ = (
        "node_id", "cluster", "map_slots_free", "reduce_slots_free",
        "_channels", "_staging",
    )

    def __init__(self, node_id: int, cluster: "SimCluster") -> None:
        self.node_id = node_id
        self.cluster = cluster
        self.map_slots_free = cluster.spec.vm.map_slots
        self.reduce_slots_free = cluster.spec.vm.reduce_slots
        self._channels: Dict[Tier, SharedChannel] = {}
        self._staging: Optional[SharedChannel] = None

    def channel(self, tier: Tier) -> SharedChannel:
        """The node's channel for ``tier`` (created on first use)."""
        ch = self._channels.get(tier)
        if ch is None:
            ch = self.cluster._make_channel(self.node_id, tier)
            self._channels[tier] = ch
        return ch

    def staging_channel(self) -> SharedChannel:
        """The node's bulk objStore↔ephSSD staging channel.

        Slower than the streaming objStore channel: the connector
        serializes copy/checksum/rename per object during bulk copies.
        """
        if self._staging is None:
            svc = self.cluster.provider.service(Tier.OBJ_STORE)
            bw = svc.bulk_staging_mb_s or svc.throughput_mb_s(1.0)
            self._staging = SharedChannel(
                self.cluster.queue,
                bandwidth_mb_s=bw,
                name=f"node{self.node_id}/staging",
                request_overhead_s=svc.request_overhead_s,
            )
        return self._staging


class SimCluster:
    """The simulated analytics cluster.

    Parameters
    ----------
    spec:
        VM count and shape.
    provider:
        Storage catalog (channel bandwidths, request overheads).
    per_vm_capacity_gb:
        Provisioned per-VM volume capacity for each block tier; sizes
        the persSSD/persHDD/ephSSD channels.  Tiers absent from the
        mapping fall back to a sensible floor (the smallest catalog
        volume) so characterization runs don't need full plans.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        provider: CloudProvider,
        per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
    ) -> None:
        self.spec = spec
        self.provider = provider
        self.per_vm_capacity_gb: Dict[Tier, float] = dict(per_vm_capacity_gb or {})
        self.queue = EventQueue()
        self.nodes = [SimNode(i, self) for i in range(spec.n_vms)]

    # -- channel construction -------------------------------------------------

    def _make_channel(self, node_id: int, tier: Tier) -> SharedChannel:
        svc = self.provider.service(tier)
        name = f"node{node_id}/{tier.value}"
        bw = channel_bandwidth_mb_s(
            self.provider, self.spec, tier, self.per_vm_capacity_gb
        )
        if tier is Tier.OBJ_STORE:
            return SharedChannel(
                self.queue,
                bandwidth_mb_s=bw,
                name=name,
                request_overhead_s=svc.request_overhead_s,
            )
        return SharedChannel(self.queue, bandwidth_mb_s=bw, name=name)

    # -- convenience -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Worker VM count."""
        return len(self.nodes)

    def node(self, node_id: int) -> SimNode:
        """Node lookup with bounds checking."""
        if not 0 <= node_id < len(self.nodes):
            raise SimulationError(f"no node {node_id} in {self.n_nodes}-node cluster")
        return self.nodes[node_id]

    def tier_bandwidth_per_node(self, tier: Tier) -> float:
        """Channel bandwidth a node sees for ``tier`` (diagnostics)."""
        return self.node(0).channel(tier).bandwidth_mb_s
