"""Slot-based FIFO phase scheduler (Hadoop-1 style).

A MapReduce phase is a bag of identical-shape tasks executed under
per-node slot limits.  :class:`PhaseRun` dispatches tasks to nodes
round-robin as slots free up — the wave structure of Eq. 1 emerges
naturally (``ceil(tasks/slots)`` waves), but unlike the analytical
model, waves here *overlap raggedly*: a node whose tasks finish early
starts its next wave immediately, and stragglers on slow tiers hold the
phase open (the Fig. 5 effect).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence

from ..errors import SimulationError
from .cluster import SimCluster, SimNode
from .storage_backend import use_reference_channel

__all__ = ["PhaseRun", "TaskBody"]

#: A task body: given its node and a completion callback, drive the
#: task through its I/O + compute states on the event queue.
TaskBody = Callable[[SimNode, Callable[[], None]], None]


class PhaseRun:
    """Run one phase's tasks under slot constraints, then fire a callback.

    Parameters
    ----------
    cluster:
        Target cluster.
    kind:
        ``"map"`` or ``"reduce"`` — selects which slot pool is used.
    tasks:
        Task bodies in submission order (FIFO).
    on_phase_done:
        Fired once, when the last task completes.
    pins:
        Optional per-task node pin (data-local map tasks); ``None``
        entries run on any node.
    """

    __slots__ = (
        "cluster", "kind", "_pending", "_pinned", "_n_total", "_n_done",
        "_on_phase_done", "_rr_next", "_started", "_reference",
    )

    def __init__(
        self,
        cluster: SimCluster,
        kind: str,
        tasks: Sequence[TaskBody],
        on_phase_done: Callable[[], None],
        pins: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        if kind not in ("map", "reduce"):
            raise SimulationError(f"unknown phase kind: {kind!r}")
        self.cluster = cluster
        self.kind = kind
        if pins is not None and len(pins) != len(tasks):
            raise SimulationError(
                f"{len(pins)} pins for {len(tasks)} tasks"
            )
        self._pending: Deque[TaskBody] = deque()
        self._pinned: Dict[int, Deque[TaskBody]] = {}
        for i, task in enumerate(tasks):
            pin = pins[i] if pins is not None else None
            if pin is None:
                self._pending.append(task)
            else:
                if not 0 <= pin < cluster.n_nodes:
                    raise SimulationError(f"pin {pin} out of range")
                self._pinned.setdefault(pin, deque()).append(task)
        self._n_total = len(tasks)
        self._n_done = 0
        self._on_phase_done = on_phase_done
        self._rr_next = 0
        self._started = False
        # REPRO_SIM_REFERENCE restores the seed dispatcher alongside the
        # reference channels, so the flag reproduces the original
        # simulator end to end.  Read once: a PhaseRun never changes
        # implementation mid-flight.
        self._reference = use_reference_channel()

    # -- slot bookkeeping --------------------------------------------------------

    def _slots_free(self, node: SimNode) -> int:
        return node.map_slots_free if self.kind == "map" else node.reduce_slots_free

    def _take_slot(self, node: SimNode) -> None:
        if self.kind == "map":
            node.map_slots_free -= 1
        else:
            node.reduce_slots_free -= 1

    def _release_slot(self, node: SimNode) -> None:
        if self.kind == "map":
            node.map_slots_free += 1
        else:
            node.reduce_slots_free += 1

    # -- dispatch ------------------------------------------------------------------

    def start(self) -> None:
        """Begin dispatching (idempotent; empty phases complete at once)."""
        if self._started:
            raise SimulationError("PhaseRun.start() called twice")
        self._started = True
        if self._n_total == 0:
            self.cluster.queue.schedule_after(0.0, self._on_phase_done)
            return
        self._dispatch()
        if self._n_done < self._n_total and not self._any_runnable():
            raise SimulationError("phase deadlocked: pinned tasks cannot start")

    def _dispatch(self) -> None:
        """Fill free slots round-robin until tasks or slots run out.

        Data-local (pinned) tasks only run on their node — Hadoop's
        locality-preferring placement; unpinned tasks take any slot.

        A node that can't take a task right now (slots full, or slots
        free but nothing dispatchable to it) stays that way for the
        rest of this pass — task bodies always defer through the event
        queue, so no slot frees and no task appears mid-dispatch.  Each
        node is therefore visited on a ring it drops off permanently on
        failure, one slot filled per visit (breadth-first, matching the
        wave structure), for O(n_nodes + dispatched) per pass instead
        of a full rescan after every successful dispatch.
        """
        if self._reference:
            self._dispatch_reference()
            return
        nodes = self.cluster.nodes
        n_nodes = len(nodes)
        ring: Deque[int] = deque(
            (self._rr_next + i) % n_nodes for i in range(n_nodes)
        )
        last_success = -1
        while ring and (self._pending or self._pinned):
            idx = ring.popleft()
            node = nodes[idx]
            if self._slots_free(node) <= 0:
                continue
            local = self._pinned.get(node.node_id)
            if local:
                task = local.popleft()
                if not local:
                    del self._pinned[node.node_id]
            elif self._pending:
                task = self._pending.popleft()
            else:
                continue
            ring.append(idx)
            last_success = idx
            self._take_slot(node)
            task(node, lambda n=node: self._on_task_done(n))
        if last_success >= 0:
            # Reproduce the reference scan's resume point (mod n_nodes):
            # it always stopped one visit past the last dispatch.
            self._rr_next = last_success + 1

    def _dispatch_reference(self) -> None:
        """The seed dispatcher, verbatim: full rescan after each dispatch.

        O(n_nodes × tasks) per phase — kept as the executable spec the
        ring dispatcher and the completion fast path are checked
        against under ``REPRO_SIM_REFERENCE=1``.
        """
        n_nodes = self.cluster.n_nodes
        scanned = 0
        while (self._pending or self._pinned) and scanned < n_nodes:
            node = self.cluster.node(self._rr_next % n_nodes)
            self._rr_next += 1
            if self._slots_free(node) <= 0:
                scanned += 1
                continue
            local = self._pinned.get(node.node_id)
            if local:
                task = local.popleft()
                if not local:
                    del self._pinned[node.node_id]
            elif self._pending:
                task = self._pending.popleft()
            else:
                scanned += 1
                continue
            scanned = 0
            self._take_slot(node)
            task(node, lambda n=node: self._on_task_done(n))

    def _on_task_done(self, node: SimNode) -> None:
        self._release_slot(node)
        self._n_done += 1
        if self._n_done == self._n_total:
            self._on_phase_done()
            return
        if self._reference:
            if self._pending or self._pinned:
                self._dispatch_reference()
            return
        # Node-local fast path.  Every full dispatch pass ends with the
        # invariant "a node with free slots has nothing dispatchable to
        # it" (it failed its last ring visit), tasks are never added
        # after construction, and slots only free right here — so a
        # completion can unblock work on *this* node alone, and at most
        # one task (a node holding spare slots had, and therefore still
        # has, nothing to run).  Dispatching locally preserves the
        # invariant and skips the O(n_nodes) ring rebuild per
        # completion.
        local = self._pinned.get(node.node_id)
        if local:
            task = local.popleft()
            if not local:
                del self._pinned[node.node_id]
        elif self._pending:
            task = self._pending.popleft()
        else:
            return
        # Where the ring pass dispatching this same task would resume.
        self._rr_next = node.node_id + 1
        self._take_slot(node)
        task(node, lambda n=node: self._on_task_done(n))

    def _any_runnable(self) -> bool:
        """Whether at least one task is running or dispatchable."""
        total_free = sum(
            self._slots_free(n) for n in self.cluster.nodes
        )
        running = self._n_total - self._n_done - len(self._pending) - sum(
            len(q) for q in self._pinned.values()
        )
        return running > 0 or total_free > 0

    @property
    def progress(self) -> float:
        """Fraction of tasks completed (diagnostics)."""
        return self._n_done / self._n_total if self._n_total else 1.0
