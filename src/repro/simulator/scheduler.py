"""Slot-based FIFO phase scheduler (Hadoop-1 style).

A MapReduce phase is a bag of identical-shape tasks executed under
per-node slot limits.  :class:`PhaseRun` dispatches tasks to nodes
round-robin as slots free up — the wave structure of Eq. 1 emerges
naturally (``ceil(tasks/slots)`` waves), but unlike the analytical
model, waves here *overlap raggedly*: a node whose tasks finish early
starts its next wave immediately, and stragglers on slow tiers hold the
phase open (the Fig. 5 effect).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..errors import SimulationError
from .cluster import SimCluster, SimNode

__all__ = ["PhaseRun", "TaskBody"]

#: A task body: given its node and a completion callback, drive the
#: task through its I/O + compute states on the event queue.
TaskBody = Callable[[SimNode, Callable[[], None]], None]


class PhaseRun:
    """Run one phase's tasks under slot constraints, then fire a callback.

    Parameters
    ----------
    cluster:
        Target cluster.
    kind:
        ``"map"`` or ``"reduce"`` — selects which slot pool is used.
    tasks:
        Task bodies in submission order (FIFO).
    on_phase_done:
        Fired once, when the last task completes.
    pins:
        Optional per-task node pin (data-local map tasks); ``None``
        entries run on any node.
    """

    def __init__(
        self,
        cluster: SimCluster,
        kind: str,
        tasks: Sequence[TaskBody],
        on_phase_done: Callable[[], None],
        pins: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        if kind not in ("map", "reduce"):
            raise SimulationError(f"unknown phase kind: {kind!r}")
        self.cluster = cluster
        self.kind = kind
        if pins is not None and len(pins) != len(tasks):
            raise SimulationError(
                f"{len(pins)} pins for {len(tasks)} tasks"
            )
        self._pending: Deque[TaskBody] = deque()
        self._pinned: Dict[int, Deque[TaskBody]] = {}
        for i, task in enumerate(tasks):
            pin = pins[i] if pins is not None else None
            if pin is None:
                self._pending.append(task)
            else:
                if not 0 <= pin < cluster.n_nodes:
                    raise SimulationError(f"pin {pin} out of range")
                self._pinned.setdefault(pin, deque()).append(task)
        self._n_total = len(tasks)
        self._n_done = 0
        self._on_phase_done = on_phase_done
        self._rr_next = 0
        self._started = False

    # -- slot bookkeeping --------------------------------------------------------

    def _slots_free(self, node: SimNode) -> int:
        return node.map_slots_free if self.kind == "map" else node.reduce_slots_free

    def _take_slot(self, node: SimNode) -> None:
        if self.kind == "map":
            node.map_slots_free -= 1
        else:
            node.reduce_slots_free -= 1

    def _release_slot(self, node: SimNode) -> None:
        if self.kind == "map":
            node.map_slots_free += 1
        else:
            node.reduce_slots_free += 1

    # -- dispatch ------------------------------------------------------------------

    def start(self) -> None:
        """Begin dispatching (idempotent; empty phases complete at once)."""
        if self._started:
            raise SimulationError("PhaseRun.start() called twice")
        self._started = True
        if self._n_total == 0:
            self.cluster.queue.schedule_after(0.0, self._on_phase_done)
            return
        self._dispatch()
        if self._n_done < self._n_total and not self._any_runnable():
            raise SimulationError("phase deadlocked: pinned tasks cannot start")

    def _dispatch(self) -> None:
        """Fill free slots round-robin until tasks or slots run out.

        Data-local (pinned) tasks only run on their node — Hadoop's
        locality-preferring placement; unpinned tasks take any slot.
        """
        n_nodes = self.cluster.n_nodes
        scanned = 0
        while (self._pending or self._pinned) and scanned < n_nodes:
            node = self.cluster.node(self._rr_next % n_nodes)
            self._rr_next += 1
            if self._slots_free(node) <= 0:
                scanned += 1
                continue
            local = self._pinned.get(node.node_id)
            if local:
                task = local.popleft()
                if not local:
                    del self._pinned[node.node_id]
            elif self._pending:
                task = self._pending.popleft()
            else:
                scanned += 1
                continue
            scanned = 0
            self._take_slot(node)
            task(node, lambda n=node: self._on_task_done(n))

    def _on_task_done(self, node: SimNode) -> None:
        self._release_slot(node)
        self._n_done += 1
        if self._n_done == self._n_total:
            self._on_phase_done()
        elif self._pending or self._pinned:
            self._dispatch()

    def _any_runnable(self) -> bool:
        """Whether at least one task is running or dispatchable."""
        total_free = sum(
            self._slots_free(n) for n in self.cluster.nodes
        )
        running = self._n_total - self._n_done - len(self._pending) - sum(
            len(q) for q in self._pinned.values()
        )
        return running > 0 or total_free > 0

    @property
    def progress(self) -> float:
        """Fraction of tasks completed (diagnostics)."""
        return self._n_done / self._n_total if self._n_total else 1.0
