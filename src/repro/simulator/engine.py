"""Top-level simulation drivers.

This module is the "cluster" of the reproduction: where the paper runs
jobs on a 400-core Google Cloud Hadoop deployment, we run them here.
A job executes as:

1. **download** (only when its input tier is non-persistent ephSSD):
   stage the input from objStore onto the local SSDs, one parallel
   stream per node;
2. **map phase**: one task per input split under map-slot limits, each
   reading from the tier its block lives on (per-block placement —
   all-or-nothing placement is the single-tier special case);
3. **shuffle + reduce phase**: one task per reducer under reduce-slot
   limits;
4. **upload** (only when output lands on ephSSD): persist the output
   back to objStore.

Jobs in a workload run back-to-back (the cluster is the unit of
scheduling in the paper's evaluation, and Eq. 4 sums per-job times),
and workflow simulation additionally charges cross-tier output→input
transfers between dependent jobs.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..errors import SimulationError
from ..obs.metrics import get_registry
from ..obs.tracing import span as _span
from ..units import gb_to_mb
from ..workloads.spec import JobSpec, WorkloadSpec
from ..workloads.workflow import Workflow
from .cache import cache_enabled, job_sim_fingerprint, simulation_cache
from .cluster import SimCluster, channel_bandwidth_mb_s
from .hdfs import BlockPlacement
from .metrics import JobSimResult, WorkloadSimResult
from .scheduler import PhaseRun, TaskBody
from .storage_backend import use_reference_channel
from .tasks import make_map_task, make_reduce_task
from .vectorized import (
    analytic_enabled,
    evaluate_wave_model,
    fallback_reason,
    wave_model_inputs,
)
from .vectorized import _stats as _fastpath_stats

__all__ = [
    "intermediate_tier_for",
    "default_per_vm_capacity",
    "resolve_sim_inputs",
    "simulate_job",
    "simulate_batch",
    "simulate_workload",
    "simulate_workflow",
    "cross_tier_transfer_seconds",
]

#: Prefix distinguishing analytic results in the simulation cache.
#: Engine-computed results keep their bare fingerprint keys, so a
#: closed-form number can never be served where a caller asked the
#: event engine (``simulate_job`` stays bit-exact), while repeat batch
#: queries still hit.
ANALYTIC_KEY_PREFIX = "analytic:"


#: Per-VM persSSD volume backing objStore jobs' shuffle data.  The
#: paper's §3.1.1 text says 100 GB, but the measured Fig. 1 runtime
#: ratios (objStore ≈ 1.4–1.6× persSSD for shuffle-heavy jobs, not 3×)
#: are only consistent with intermediate I/O that is not choked by a
#: 48 MB/s volume — Hadoop spills overlap with local buffering on the
#: real system.  250 GB (118 MB/s) reproduces the measured ratios; see
#: DESIGN.md's substitution table.
HELPER_INTERMEDIATE_GB_PER_VM = 250.0

#: Parallel connections per VM for bulk objStore staging (gsutil -m
#: style).  Much higher than the task-slot count: staging is a pure
#: transfer loop, not slot-bound user code.
STAGING_LANES_PER_VM = 24


def intermediate_tier_for(provider: CloudProvider, input_tier: Tier) -> Tier:
    """Where shuffle data lives for a job whose data tier is ``input_tier``.

    The paper stores intermediate data on the same service as the
    original data, except for objStore, which cannot host shuffle
    spills — those go to the service named by ``requires_intermediate``
    (persSSD in the Google catalog, §3.1.1).
    """
    svc = provider.service(input_tier)
    if svc.requires_intermediate is not None:
        return svc.requires_intermediate
    return input_tier


def default_per_vm_capacity(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
) -> Dict[Tier, float]:
    """Per-VM volume sizing covering one job's Eq. 3 footprint.

    Block tiers get ``footprint / n_vms`` (at least the smallest
    catalog volume); an objStore job gets the paper's 100 GB persSSD
    intermediate volume per VM.
    """
    caps: Dict[Tier, float] = {}
    inter_tier = intermediate_tier_for(provider, input_tier)
    share = job.footprint_gb / cluster_spec.n_vms
    if input_tier is Tier.OBJ_STORE:
        caps[inter_tier] = HELPER_INTERMEDIATE_GB_PER_VM
    elif input_tier is Tier.EPH_SSD:
        svc = provider.service(Tier.EPH_SSD)
        n_vol = max(1, int(math.ceil(share / svc.fixed_volume_gb)))
        n_vol = min(n_vol, svc.max_volumes_per_vm or n_vol)
        caps[Tier.EPH_SSD] = n_vol * svc.fixed_volume_gb
    else:
        caps[input_tier] = max(share, 100.0)
    return caps


class _PhaseClock:
    """Records phase boundary times as the driver advances."""

    __slots__ = ("marks",)

    def __init__(self) -> None:
        self.marks: Dict[str, float] = {}

    def mark(self, label: str, time: float) -> None:
        self.marks[label] = time

    def duration(self, label: str) -> float:
        start = self.marks.get(f"{label}:start")
        end = self.marks.get(f"{label}:end")
        if start is None or end is None:
            return 0.0
        return end - start


def resolve_sim_inputs(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
    block_placement: Optional[BlockPlacement] = None,
    output_tier: Optional[Tier] = None,
) -> Tuple[Dict[Tier, float], Optional[BlockPlacement], Tier]:
    """Normalize a :func:`simulate_job` call onto its canonical inputs.

    Returns the resolved per-VM capacities, the normalized block
    placement (``None`` when uniform on the input tier — that IS the
    default placement, so both spellings must share a cache key) and
    the effective output tier.  Shared by the cache lookup in
    :func:`simulate_job` and the parallel runner's dedup pass.
    """
    out_tier = output_tier or input_tier
    caps = dict(
        per_vm_capacity_gb
        if per_vm_capacity_gb is not None
        else default_per_vm_capacity(job, input_tier, cluster_spec, provider)
    )
    # An ephSSD output from a non-ephSSD job still needs local volumes.
    if out_tier is Tier.EPH_SSD and Tier.EPH_SSD not in caps:
        caps[Tier.EPH_SSD] = provider.service(Tier.EPH_SSD).fixed_volume_gb

    if block_placement is not None and block_placement.n_blocks != job.map_tasks:
        raise SimulationError(
            f"{job.job_id}: block placement has {block_placement.n_blocks} blocks "
            f"but the job has {job.map_tasks} map tasks"
        )
    placement = block_placement
    if placement is not None and all(t == input_tier for t in placement.tiers):
        placement = None
    return caps, placement, out_tier


def simulate_job(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
    block_placement: Optional[BlockPlacement] = None,
    output_tier: Optional[Tier] = None,
    stage_in: bool = True,
    stage_out: bool = True,
) -> JobSimResult:
    """Execute one job on a fresh simulated cluster.

    Parameters
    ----------
    job:
        The job to run.
    input_tier:
        Storage service holding (or staging) the job's input.
    per_vm_capacity_gb:
        Channel sizing; defaults to :func:`default_per_vm_capacity`.
    block_placement:
        Optional per-block tier map (Fig. 5 experiments).  Must have
        exactly ``job.map_tasks`` blocks.
    output_tier:
        Where output is written; defaults to ``input_tier``
        (workflows override this to pipeline across tiers).
    stage_in / stage_out:
        Whether ephSSD persistence staging applies at this job's input
        / output.  Workflow execution disables them for mid-DAG jobs:
        an ephSSD job fed by another ephSSD job finds its input already
        local, and only terminal outputs need the objStore upload.

    Returns
    -------
    JobSimResult
        Phase-level timing breakdown.

    Notes
    -----
    Results are memoized in the process-wide
    :class:`~repro.simulator.cache.SimulationCache`: the run depends
    only on the job's *shape* (never its id), so shape-duplicate jobs —
    the normal case in SWIM workloads — are simulated once.  Hits are
    the stored result re-stamped with this job's id, bit-exact by
    construction.  ``REPRO_SIM_CACHE=0`` disables the cache.
    """
    caps, placement, out_tier = resolve_sim_inputs(
        job, input_tier, cluster_spec, provider,
        per_vm_capacity_gb=per_vm_capacity_gb,
        block_placement=block_placement,
        output_tier=output_tier,
    )

    if not cache_enabled():
        return _simulate_job_instrumented(
            job, input_tier, cluster_spec, provider, caps, placement,
            out_tier, stage_in, stage_out,
        )

    key = job_sim_fingerprint(
        job, input_tier, cluster_spec, provider, caps, out_tier,
        stage_in, stage_out,
        placement_tiers=None if placement is None else tuple(placement.tiers),
    )
    cache = simulation_cache()
    hit = cache.get(key)
    if hit is not None:
        return hit if hit.job_id == job.job_id else replace(hit, job_id=job.job_id)
    result = _simulate_job_instrumented(
        job, input_tier, cluster_spec, provider, caps, placement,
        out_tier, stage_in, stage_out,
    )
    cache.put(key, result)
    return result


def _simulate_job_instrumented(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    caps: Dict[Tier, float],
    block_placement: Optional[BlockPlacement],
    out_tier: Tier,
    stage_in: bool,
    stage_out: bool,
) -> JobSimResult:
    """Run one uncached simulation under a span + latency histogram.

    Only *misses* pay this (a span and one histogram observation are
    microseconds against a millisecond-scale discrete-event run); the
    cache-hit fast path above stays untouched.
    """
    started = time.perf_counter()
    with _span(
        "simulator.job",
        attrs={"job_id": job.job_id, "input_tier": input_tier.value},
    ):
        result = _simulate_job_uncached(
            job, input_tier, cluster_spec, provider, caps, block_placement,
            out_tier, stage_in, stage_out,
        )
    get_registry().histogram(
        "cast_sim_job_seconds",
        "Wall time of one uncached simulate_job run",
    ).observe(time.perf_counter() - started)
    return result


def _simulate_job_uncached(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    caps: Dict[Tier, float],
    block_placement: Optional[BlockPlacement],
    out_tier: Tier,
    stage_in: bool,
    stage_out: bool,
) -> JobSimResult:
    """The actual discrete-event run (inputs already resolved)."""
    cluster = SimCluster(cluster_spec, provider, caps)
    queue = cluster.queue
    clock = _PhaseClock()
    inter_tier = intermediate_tier_for(provider, input_tier)

    m = job.map_tasks
    r = job.reduce_tasks
    split_gb = job.input_gb / m
    shuffle_gb = job.intermediate_gb / r
    output_share_gb = job.output_gb / r

    blocks = block_placement or BlockPlacement.uniform(m, input_tier)

    # --- phase drivers, chained through callbacks -------------------------

    def start_download() -> None:
        if input_tier is not Tier.EPH_SSD or not stage_in:
            start_map()
            return
        clock.mark("download:start", queue.now)
        per_node_gb = job.input_gb / cluster.n_nodes
        # Staging runs many connections per VM (gsutil -m style), so
        # per-object setup latencies amortize across the lanes.
        lanes = cluster.n_nodes * STAGING_LANES_PER_VM
        reqs = max(1, int(math.ceil(m / lanes)))
        remaining = [cluster.n_nodes]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                clock.mark("download:end", queue.now)
                start_map()

        for node in cluster.nodes:
            node.staging_channel().start_transfer(
                gb_to_mb(per_node_gb), one_done, n_requests=reqs
            )

    def start_map() -> None:
        clock.mark("map:start", queue.now)
        # Task bodies are stateless between invocations (all per-run
        # state lives in closures the body creates when called), so
        # same-shape tasks share one body object — one per block tier
        # instead of one per block.
        body_for: Dict[Tier, TaskBody] = {}
        tasks = []
        for i in range(m):
            tier = blocks.tiers[i]
            body = body_for.get(tier)
            if body is None:
                body = body_for[tier] = make_map_task(
                    job.app, split_gb, tier, inter_tier
                )
            tasks.append(body)
        # HDFS spreads a file's blocks evenly over the cluster and the
        # scheduler runs map tasks data-locally: block i lives (and its
        # task runs) on node i*n//m.  With a fractional placement this
        # is what concentrates slow-tier blocks on a subset of nodes
        # and produces the Fig. 5 straggler plateau.
        pins = [i * cluster.n_nodes // m for i in range(m)]

        def map_done() -> None:
            clock.mark("map:end", queue.now)
            start_reduce()

        PhaseRun(cluster, "map", tasks, map_done, pins=pins).start()

    def start_reduce() -> None:
        clock.mark("reduce:start", queue.now)
        # All reduce tasks of a job are identical in shape; share one
        # stateless body (see start_map).
        body = make_reduce_task(
            job.app, shuffle_gb, output_share_gb, inter_tier, out_tier
        )
        tasks = [body] * r

        def reduce_done() -> None:
            clock.mark("reduce:end", queue.now)
            start_upload()

        PhaseRun(cluster, "reduce", tasks, reduce_done).start()

    def start_upload() -> None:
        if out_tier is not Tier.EPH_SSD or job.output_gb <= 0 or not stage_out:
            return
        clock.mark("upload:start", queue.now)
        per_node_gb = job.output_gb / cluster.n_nodes
        lanes = cluster.n_nodes * STAGING_LANES_PER_VM
        reqs = max(1, int(math.ceil(r * job.app.files_per_reduce_task / lanes)))
        remaining = [cluster.n_nodes]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                clock.mark("upload:end", queue.now)

        for node in cluster.nodes:
            node.staging_channel().start_transfer(
                gb_to_mb(per_node_gb), one_done, n_requests=reqs
            )

    queue.schedule_at(0.0, start_download)
    queue.run()

    return JobSimResult(
        job_id=job.job_id,
        input_tier=input_tier,
        output_tier=out_tier,
        download_s=clock.duration("download"),
        map_s=clock.duration("map"),
        reduce_s=clock.duration("reduce"),
        upload_s=clock.duration("upload"),
        events=queue.events_dispatched,
    )


def simulate_batch(
    items: Sequence[Tuple[JobSpec, Tier, Optional[Mapping[Tier, float]]]],
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    block_placements: Optional[Sequence[Optional[BlockPlacement]]] = None,
    stage_in: bool = True,
    stage_out: bool = True,
    fast_path: Optional[bool] = None,
) -> List[JobSimResult]:
    """Simulate many ``(job, input_tier, caps)`` requests at once.

    The batch analogue of :func:`simulate_job`, routed through the
    vectorized wave model of :mod:`~repro.simulator.vectorized` where
    the closed form is exact and through the event engine everywhere
    else.  Per request, in order:

    1. the content-addressed cache is consulted under the *engine* key —
       hits are the engine's stored result re-stamped with the request's
       job id, bit-exact exactly as :func:`simulate_job` serves them;
    2. eligible requests (uniform placement, full staging — see
       :func:`~repro.simulator.vectorized.fallback_reason`) are
       evaluated in one NumPy pass, agreeing with the engine to
       :data:`~repro.simulator.vectorized.ANALYTIC_RTOL`; their results
       cache under an ``analytic:``-prefixed key so they can never
       shadow an engine result;
    3. everything else falls back to :func:`simulate_job` per request —
       with ``REPRO_SIM_REFERENCE=1`` (or ``fast_path=False``) the whole
       batch takes this path and is bit-identical to serial engine runs.

    ``fast_path=None`` follows ``REPRO_SIM_ANALYTIC`` (on by default);
    an explicit ``True``/``False`` overrides the environment.  The
    reference-channel escape hatch always wins.
    """
    items = list(items)
    if not items:
        return []
    placements: Sequence[Optional[BlockPlacement]]
    if block_placements is None:
        placements = [None] * len(items)
    else:
        placements = list(block_placements)
        if len(placements) != len(items):
            raise SimulationError(
                f"simulate_batch: {len(items)} items but "
                f"{len(placements)} block placements"
            )

    fast = analytic_enabled() if fast_path is None else bool(fast_path)
    reference = use_reference_channel()
    use_cache = cache_enabled()
    cache = simulation_cache() if use_cache else None
    stats = _fastpath_stats()

    results: List[Optional[JobSimResult]] = [None] * len(items)
    # (index, job, input_tier, out_tier, wave inputs, analytic cache key)
    analytic: List[Tuple[int, JobSpec, Tier, Tier, object, Optional[str]]] = []
    # (index, job, input_tier, caps, placement)
    fallback: List[Tuple[int, JobSpec, Tier, Dict[Tier, float], Optional[BlockPlacement]]] = []
    first_for_key: Dict[str, int] = {}
    dup_of: Dict[int, int] = {}
    n_cache_hits = 0

    for i, (job, tier, caps_in) in enumerate(items):
        caps, placement, out_tier = resolve_sim_inputs(
            job, tier, cluster_spec, provider,
            per_vm_capacity_gb=caps_in,
            block_placement=placements[i],
        )
        key: Optional[str] = None
        if cache is not None:
            key = job_sim_fingerprint(
                job, tier, cluster_spec, provider, caps, out_tier,
                stage_in, stage_out,
                placement_tiers=None if placement is None else tuple(placement.tiers),
            )
            hit = cache.get(key)
            if hit is not None:
                results[i] = (
                    hit if hit.job_id == job.job_id else replace(hit, job_id=job.job_id)
                )
                n_cache_hits += 1
                continue
            prev = first_for_key.get(key)
            if prev is not None:
                dup_of[i] = prev
                continue
            first_for_key[key] = i

        if reference or not fast:
            reason = "reference" if reference else "disabled"
        else:
            reason = fallback_reason(job, placement, stage_in, stage_out)
        if reason is None:
            akey = None if key is None else ANALYTIC_KEY_PREFIX + key
            if akey is not None:
                ahit = cache.get(akey)
                if ahit is not None:
                    results[i] = (
                        ahit
                        if ahit.job_id == job.job_id
                        else replace(ahit, job_id=job.job_id)
                    )
                    n_cache_hits += 1
                    continue
            wave = wave_model_inputs(
                job, tier, cluster_spec, provider, caps, out_tier,
                stage_in, stage_out,
            )
            analytic.append((i, job, tier, out_tier, wave, akey))
        else:
            stats.note_fallback(reason)
            fallback.append((i, job, tier, caps, placement))

    with _span(
        "simulator.batch",
        attrs={
            "items": len(items),
            "analytic": len(analytic),
            "fallback": len(fallback),
            "cache_hits": n_cache_hits,
        },
    ):
        if analytic:
            phases = evaluate_wave_model([entry[4] for entry in analytic])
            for (i, job, tier, out_tier, _wave, akey), row in zip(analytic, phases):
                res = JobSimResult(
                    job_id=job.job_id,
                    input_tier=tier,
                    output_tier=out_tier,
                    download_s=float(row[0]),
                    map_s=float(row[1]),
                    reduce_s=float(row[2]),
                    upload_s=float(row[3]),
                    events=0,
                )
                results[i] = res
                if akey is not None and cache is not None:
                    cache.put(akey, res)
            stats.analytic += len(analytic)
        for i, job, tier, caps, placement in fallback:
            results[i] = simulate_job(
                job, tier, cluster_spec, provider,
                per_vm_capacity_gb=caps,
                block_placement=placement,
                stage_in=stage_in,
                stage_out=stage_out,
            )

    for i, src_idx in dup_of.items():
        src = results[src_idx]
        assert src is not None
        job = items[i][0]
        results[i] = src if src.job_id == job.job_id else replace(src, job_id=job.job_id)

    stats.cache_hits += n_cache_hits
    stats.deduped += len(dup_of)
    stats.batches += 1
    out = [res for res in results if res is not None]
    assert len(out) == len(items)
    return out


def simulate_workload(
    workload: WorkloadSpec,
    tier_of: Mapping[str, Tier],
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
) -> WorkloadSimResult:
    """Run a workload's jobs back-to-back under a per-job tier map.

    ``per_vm_capacity_gb``, when given, applies to every job (a fixed
    provisioned cluster); otherwise each job gets footprint-sized
    volumes (matching how the solver provisions capacity per job).
    """
    results = []
    for jobspec in workload.jobs:
        tier = tier_of[jobspec.job_id]
        results.append(
            simulate_job(
                jobspec,
                tier,
                cluster_spec,
                provider,
                per_vm_capacity_gb=per_vm_capacity_gb,
            )
        )
    return WorkloadSimResult(job_results=tuple(results))


def cross_tier_transfer_seconds(
    size_gb: float,
    src_tier: Tier,
    dst_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
) -> float:
    """Time to pipeline ``size_gb`` from ``src_tier`` to ``dst_tier``.

    The copy runs one stream per node, bottlenecked by the slower of
    the two per-node channel bandwidths plus any object-store request
    overhead on either end.  Zero when the tiers match.
    """
    if src_tier == dst_tier or size_gb <= 0:
        return 0.0
    # Only two per-node bandwidths are needed — read them straight from
    # the sizing arithmetic rather than building a throwaway SimCluster.
    src_bw = channel_bandwidth_mb_s(provider, cluster_spec, src_tier, per_vm_capacity_gb)
    dst_bw = channel_bandwidth_mb_s(provider, cluster_spec, dst_tier, per_vm_capacity_gb)
    bw = min(src_bw, dst_bw)
    per_node_gb = size_gb / cluster_spec.n_vms
    overhead = 0.0
    for tier in (src_tier, dst_tier):
        overhead += provider.service(tier).request_overhead_s
    return gb_to_mb(per_node_gb) / bw + overhead


def simulate_workflow(
    workflow: Workflow,
    tier_of: Mapping[str, Tier],
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    per_vm_capacity_gb: Optional[Mapping[Tier, float]] = None,
    fast_path: bool = False,
) -> WorkloadSimResult:
    """Run a workflow's jobs in topological order with transfer costs.

    When a producer's output tier differs from a consumer's input tier,
    the output is pipelined across (§3.1.3) and the copy time joins the
    workflow makespan — the cost CAST's workflow-oblivious solver fails
    to account for (§5.2.1).

    ``fast_path=True`` dispatches the jobs through
    :func:`simulate_batch` grouped by their staging flags; eligibility
    stays per request (:func:`~repro.simulator.vectorized.fallback_reason`),
    so partially-staged DAG jobs still run on the exact event engine
    and only fully-staged jobs (isolated, single-job workflows) take
    the closed form.  The default keeps the historical per-job engine
    loop, bit-identical to every prior release.
    """
    order = workflow.topological_order()
    g = workflow.graph()
    # Only DAG-boundary jobs stage against objStore: roots read
    # external input, leaves persist the final output.  Mid-DAG data
    # either sits locally (same tier) or moves via the cross-tier
    # transfer accounted below.
    staging = {
        job_id: (
            not any(True for _ in g.predecessors(job_id)),
            not any(True for _ in g.successors(job_id)),
        )
        for job_id in order
    }
    if fast_path:
        groups: Dict[Tuple[bool, bool], List[str]] = {}
        for job_id in order:
            groups.setdefault(staging[job_id], []).append(job_id)
        by_id: Dict[str, JobSimResult] = {}
        for (stage_in, stage_out), ids in groups.items():
            batch = [
                (workflow.job(j), tier_of[j], per_vm_capacity_gb)
                for j in ids
            ]
            for j, res in zip(
                ids,
                simulate_batch(
                    batch, cluster_spec, provider,
                    stage_in=stage_in, stage_out=stage_out, fast_path=True,
                ),
            ):
                by_id[j] = res
        results = [by_id[job_id] for job_id in order]
    else:
        results = [
            simulate_job(
                workflow.job(job_id),
                tier_of[job_id],
                cluster_spec,
                provider,
                per_vm_capacity_gb=per_vm_capacity_gb,
                stage_in=staging[job_id][0],
                stage_out=staging[job_id][1],
            )
            for job_id in order
        ]
    transfer_total = 0.0
    for job_id in order:
        jobspec = workflow.job(job_id)
        tier = tier_of[job_id]
        for succ in workflow.successors(job_id):
            dst = tier_of[succ]
            transfer_total += cross_tier_transfer_seconds(
                jobspec.output_gb, tier, dst, cluster_spec, provider,
                per_vm_capacity_gb,
            )
    return WorkloadSimResult(job_results=tuple(results), transfer_s=transfer_total)
