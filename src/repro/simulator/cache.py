"""Content-addressed memoization of job simulations.

A discrete-event run of :func:`~repro.simulator.engine.simulate_job` is
a pure function of the job's *shape* — never its identity.  SWIM-style
workloads (Table 4) draw 100 jobs from 7 size bins × 4 applications, so
a plan measurement re-simulates the same (app, size, tier, capacity)
combination dozens of times; under a single plan the per-VM caps are
identical across jobs, leaving only ~28 distinct simulations in a
100-job Fig. 7 measurement.

The cache key is a SHA-256 over the canonical JSON of everything the
simulator reads:

* job shape: map/reduce task counts and phase data volumes;
* the full application profile (selectivities, CPU rates, file counts);
* input/output/intermediate tiers, staging flags and any non-uniform
  block placement;
* resolved per-VM channel capacities (after defaulting — the footprint
  only matters through these);
* the cluster shape the simulator reads (VM count, slot counts, NIC);
* a digest of the provider catalog's *performance* fields — prices and
  the provider name are excluded because the simulator never reads
  them, so a price-only catalog change keeps its hits;
* the active channel implementation, so flipping
  ``REPRO_SIM_REFERENCE`` can never serve results simulated by the
  other implementation.

Hits are bit-exact by construction: the stored
:class:`~repro.simulator.metrics.JobSimResult` is the object the
simulator produced, re-stamped with the requesting job's id.  Disable
with ``REPRO_SIM_CACHE=0`` (e.g. to time the raw simulator).
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from dataclasses import asdict
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..workloads.spec import JobSpec
from .metrics import JobSimResult
from .storage_backend import channel_impl_name

__all__ = [
    "catalog_digest",
    "job_sim_fingerprint",
    "SimulationCache",
    "simulation_cache",
    "cache_enabled",
    "register_metrics",
]

#: Environment variable disabling the simulation cache ("0"/"false").
CACHE_ENV = "REPRO_SIM_CACHE"

#: Default LRU capacity of the global cache (distinct job shapes).
DEFAULT_CAPACITY = 4096


def cache_enabled() -> bool:
    """Whether ``REPRO_SIM_CACHE`` leaves the cache on (the default)."""
    return os.environ.get(CACHE_ENV, "").strip().lower() not in ("0", "false")


def _canonical_json(obj: Any) -> str:
    from ..service.fingerprint import canonical_json

    return canonical_json(obj)


# Providers are immutable once built; digest each object once.  Keyed
# by id() with the provider kept as a strong reference so a recycled
# id can never alias a different catalog.
_CATALOG_MEMO: Dict[int, Tuple[CloudProvider, str]] = {}

# Same discipline for the two other shared immutable inputs a workload
# re-presents hundreds of times per measurement: the (typically 4)
# application profiles and the cluster spec.  Fingerprinting is on the
# cache *hit* path, so these memos set its cost.
_APP_MEMO: Dict[int, Tuple[Any, Dict[str, Any]]] = {}
_CLUSTER_MEMO: Dict[int, Tuple[ClusterSpec, Dict[str, Any]]] = {}


def _app_payload(app: Any) -> Dict[str, Any]:
    memo = _APP_MEMO.get(id(app))
    if memo is not None and memo[0] is app:
        return memo[1]
    payload = asdict(app)
    if len(_APP_MEMO) > 256:
        _APP_MEMO.clear()
    _APP_MEMO[id(app)] = (app, payload)
    return payload


def _cluster_payload(cluster_spec: ClusterSpec) -> Dict[str, Any]:
    memo = _CLUSTER_MEMO.get(id(cluster_spec))
    if memo is not None and memo[0] is cluster_spec:
        return memo[1]
    payload = {
        "n_vms": cluster_spec.n_vms,
        "map_slots": cluster_spec.vm.map_slots,
        "reduce_slots": cluster_spec.vm.reduce_slots,
        "network_mb_s": cluster_spec.vm.network_mb_s,
    }
    if len(_CLUSTER_MEMO) > 256:
        _CLUSTER_MEMO.clear()
    _CLUSTER_MEMO[id(cluster_spec)] = (cluster_spec, payload)
    return payload


def catalog_digest(provider: CloudProvider) -> str:
    """Digest of the catalog fields the simulator can observe.

    Performance-relevant only: throughput curves, volume shapes,
    request overheads, staging rates and tier couplings.  Prices, IOPS
    curves and the provider's name are deliberately excluded — the
    simulator never reads them, so e.g. a re-priced catalog keeps its
    cached simulations.
    """
    memo = _CATALOG_MEMO.get(id(provider))
    if memo is not None and memo[0] is provider:
        return memo[1]
    payload = {}
    for tier in sorted(provider.services, key=lambda t: t.value):
        svc = provider.service(tier)
        payload[tier.value] = {
            "persistent": svc.persistent,
            "throughput_points": [list(p) for p in svc.throughput.points],
            "throughput_cap": svc.throughput.cap,
            "fixed_volume_gb": svc.fixed_volume_gb,
            "max_volumes_per_vm": svc.max_volumes_per_vm,
            "max_volume_gb": svc.max_volume_gb,
            "request_overhead_s": svc.request_overhead_s,
            "bulk_staging_mb_s": svc.bulk_staging_mb_s,
            "requires_backing": (
                svc.requires_backing.value if svc.requires_backing else None
            ),
            "requires_intermediate": (
                svc.requires_intermediate.value if svc.requires_intermediate else None
            ),
        }
    digest = hashlib.sha256(_canonical_json(payload).encode()).hexdigest()
    if len(_CATALOG_MEMO) > 64:
        _CATALOG_MEMO.clear()
    _CATALOG_MEMO[id(provider)] = (provider, digest)
    return digest


def job_sim_fingerprint(
    job: JobSpec,
    input_tier: Tier,
    cluster_spec: ClusterSpec,
    provider: CloudProvider,
    caps: Mapping[Tier, float],
    output_tier: Tier,
    stage_in: bool,
    stage_out: bool,
    placement_tiers: Optional[Sequence[Tier]] = None,
) -> str:
    """SHA-256 key identifying one job simulation.

    ``caps`` must be the *resolved* per-VM capacities (after
    defaulting): the job's footprint influences the run only through
    them.  The job id is excluded — shape-identical jobs share a key.
    ``placement_tiers`` is ``None`` for the uniform-on-``input_tier``
    placement (the normalized form of the common case).
    """
    payload = {
        "app": _app_payload(job.app),
        "map_tasks": job.map_tasks,
        "reduce_tasks": job.reduce_tasks,
        "input_gb": job.input_gb,
        "intermediate_gb": job.intermediate_gb,
        "output_gb": job.output_gb,
        "input_tier": input_tier.value,
        "output_tier": output_tier.value,
        "stage_in": bool(stage_in),
        "stage_out": bool(stage_out),
        "placement": (
            None
            if placement_tiers is None
            else [t.value for t in placement_tiers]
        ),
        "caps": {t.value: float(v) for t, v in caps.items()},
        "cluster": _cluster_payload(cluster_spec),
        "catalog": catalog_digest(provider),
        "channel": channel_impl_name(),
    }
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


class SimulationCache:
    """In-memory LRU of finished job simulations, with counters.

    Same discipline as the planning service's
    :class:`~repro.service.cache.PlanCache`: ``get`` refreshes recency,
    ``put`` evicts the least-recently-used entry past ``capacity``.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JobSimResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[JobSimResult]:
        """Look up a simulation result, refreshing its recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, result: JobSimResult) -> None:
        """Insert a result, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (``hits``/``misses``/``evictions``/``size``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }


_GLOBAL_CACHE = SimulationCache()


def simulation_cache() -> SimulationCache:
    """The process-wide simulation cache."""
    return _GLOBAL_CACHE


def register_metrics(registry: Any, key: str = "sim_cache") -> None:
    """Mirror the global simulation cache into a metrics registry.

    Registers a keyed collector (idempotent — re-registration replaces)
    that publishes the cache's plain-``int`` counters as
    ``cast_sim_cache_events_total{event=...}`` plus a size gauge on
    every snapshot/exposition.  The hot lookup path keeps its raw ints;
    mirroring costs nothing until somebody actually reads metrics.
    """

    def _mirror(reg: Any) -> None:
        cache = _GLOBAL_CACHE
        events = reg.counter(
            "cast_sim_cache_events_total",
            "Simulation-cache lookups by outcome",
            labelnames=("event",),
        )
        events.set_total(cache.hits, event="hit")
        events.set_total(cache.misses, event="miss")
        events.set_total(cache.evictions, event="eviction")
        reg.gauge(
            "cast_sim_cache_size", "Entries in the simulation cache"
        ).set(len(cache))

    registry.register_collector(key, _mirror)
