"""Discrete-event MapReduce + cloud-storage cluster simulator.

The reproduction's stand-in for the paper's 400-core Google Cloud
Hadoop testbed: slot-scheduled map/reduce phases, processor-shared
storage channels per node and tier, per-block placement, object-store
request overheads, and ephSSD persistence staging.
"""

from .cluster import SimCluster, SimNode
from .engine import (
    cross_tier_transfer_seconds,
    default_per_vm_capacity,
    intermediate_tier_for,
    simulate_job,
    simulate_workflow,
    simulate_workload,
)
from .events import EventQueue
from .hdfs import BlockPlacement
from .metrics import JobSimResult, WorkloadSimResult
from .scheduler import PhaseRun
from .storage_backend import SharedChannel
from .tasks import make_map_task, make_reduce_task

__all__ = [
    "EventQueue",
    "SharedChannel",
    "SimCluster",
    "SimNode",
    "PhaseRun",
    "BlockPlacement",
    "JobSimResult",
    "WorkloadSimResult",
    "make_map_task",
    "make_reduce_task",
    "intermediate_tier_for",
    "default_per_vm_capacity",
    "simulate_job",
    "simulate_workload",
    "simulate_workflow",
    "cross_tier_transfer_seconds",
]
