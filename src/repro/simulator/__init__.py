"""Discrete-event MapReduce + cloud-storage cluster simulator.

The reproduction's stand-in for the paper's 400-core Google Cloud
Hadoop testbed: slot-scheduled map/reduce phases, processor-shared
storage channels per node and tier, per-block placement, object-store
request overheads, and ephSSD persistence staging.
"""

from .cache import (
    SimulationCache,
    cache_enabled,
    catalog_digest,
    job_sim_fingerprint,
    simulation_cache,
)
from .cluster import SimCluster, SimNode, channel_bandwidth_mb_s
from .engine import (
    cross_tier_transfer_seconds,
    default_per_vm_capacity,
    intermediate_tier_for,
    resolve_sim_inputs,
    simulate_batch,
    simulate_job,
    simulate_workflow,
    simulate_workload,
)
from .vectorized import (
    ANALYTIC_RTOL,
    analytic_enabled,
    batch_results_match,
    fallback_reason,
    fastpath_stats,
    register_fastpath_metrics,
    reset_fastpath_stats,
)
from .events import EventQueue
from .hdfs import BlockPlacement
from .metrics import JobSimResult, WorkloadSimResult
from .scheduler import PhaseRun
from .storage_backend import (
    ReferenceSharedChannel,
    SharedChannel,
    VirtualTimeSharedChannel,
    channel_impl_name,
    use_reference_channel,
)
from .tasks import make_map_task, make_reduce_task

__all__ = [
    "EventQueue",
    "SharedChannel",
    "ReferenceSharedChannel",
    "VirtualTimeSharedChannel",
    "use_reference_channel",
    "channel_impl_name",
    "SimulationCache",
    "simulation_cache",
    "cache_enabled",
    "catalog_digest",
    "job_sim_fingerprint",
    "SimCluster",
    "SimNode",
    "channel_bandwidth_mb_s",
    "PhaseRun",
    "BlockPlacement",
    "JobSimResult",
    "WorkloadSimResult",
    "make_map_task",
    "make_reduce_task",
    "intermediate_tier_for",
    "default_per_vm_capacity",
    "resolve_sim_inputs",
    "simulate_job",
    "simulate_batch",
    "simulate_workload",
    "simulate_workflow",
    "cross_tier_transfer_seconds",
    "ANALYTIC_RTOL",
    "analytic_enabled",
    "batch_results_match",
    "fallback_reason",
    "fastpath_stats",
    "register_fastpath_metrics",
    "reset_fastpath_stats",
]
