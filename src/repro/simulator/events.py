"""Discrete-event simulation core.

A minimal, fast event queue: callbacks scheduled at absolute times,
executed in time order with FIFO tie-breaking.  All simulator
components (shared storage channels, slot schedulers, job drivers)
communicate exclusively through this queue, which keeps the whole
cluster model deterministic — identical inputs replay identical event
sequences.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """A heap-ordered event calendar.

    Events are ``(time, seq, callback)`` triples; ``seq`` is a
    monotonically increasing counter so simultaneous events run in
    scheduling order (and callbacks never need to be comparable).
    """

    __slots__ = ("_heap", "_seq", "_now", "_running", "_n_dispatched")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._n_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total callbacks executed so far (diagnostics / tests)."""
        return self._n_dispatched

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated ``time``.

        Scheduling into the past is an error — it would silently
        corrupt causality.
        """
        if time < self._now - 1e-9:
            raise SimulationError(
                f"scheduling into the past: t={time:.6f} < now={self._now:.6f}"
            )
        heapq.heappush(self._heap, (max(time, self._now), next(self._seq), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        # delay >= 0 makes the causality check redundant; push directly
        # (this is the simulator's single hottest scheduling path).
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback))

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the calendar drains (or ``until``).

        Returns the final simulated time.  ``max_events`` guards
        against runaway feedback loops in model code.
        """
        if self._running:
            raise SimulationError("EventQueue.run() is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        try:
            if until is None:
                # Hot path: drain the calendar, no horizon checks.
                while heap:
                    time, _, callback = pop(heap)
                    self._now = time
                    callback()
                    dispatched += 1
                    if dispatched > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; likely a model feedback loop"
                        )
            else:
                while heap:
                    time = heap[0][0]
                    if time > until:
                        self._now = until
                        break
                    _, _, callback = pop(heap)
                    self._now = time
                    callback()
                    dispatched += 1
                    if dispatched > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; likely a model feedback loop"
                        )
        finally:
            self._running = False
            self._n_dispatched += dispatched
        return self._now

    def __len__(self) -> int:
        return len(self._heap)
