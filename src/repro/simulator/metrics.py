"""Simulation result records.

Plain dataclasses carrying what an experiment needs: phase-level
timings per job (Fig. 1's download / processing / upload breakdown) and
workload-level aggregates.  Monetary cost is *not* computed here — the
cost model lives in :mod:`repro.core.cost` and is shared between the
simulator (observed) and the estimator (predicted), so both sides of a
comparison always price identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..cloud.storage import Tier

__all__ = ["JobSimResult", "WorkloadSimResult"]


@dataclass(frozen=True)
class JobSimResult:
    """Timing breakdown of one simulated job.

    Attributes
    ----------
    job_id:
        The simulated job.
    input_tier / output_tier:
        Where the job read persistent input and wrote persistent output.
    download_s:
        objStore→ephSSD input staging (zero unless input on ephSSD).
    map_s / reduce_s:
        Phase durations (reduce includes shuffle, as executed).
    upload_s:
        ephSSD→objStore output persistence (zero unless on ephSSD).
    events:
        DES events dispatched (diagnostics).
    """

    job_id: str
    input_tier: Tier
    output_tier: Tier
    download_s: float
    map_s: float
    reduce_s: float
    upload_s: float
    events: int = 0

    @property
    def processing_s(self) -> float:
        """Map + shuffle/reduce time (Fig. 1's 'data processing' bar)."""
        return self.map_s + self.reduce_s

    @property
    def total_s(self) -> float:
        """End-to-end runtime including persistence transfers."""
        return self.download_s + self.map_s + self.reduce_s + self.upload_s


@dataclass(frozen=True)
class WorkloadSimResult:
    """Aggregate of sequentially executed jobs.

    The paper's own completion-time model (Eq. 4) sums per-job times,
    so the simulated workload makespan is the same sum plus any
    cross-tier transfer times the caller recorded.
    """

    job_results: Tuple[JobSimResult, ...]
    transfer_s: float = 0.0

    @property
    def makespan_s(self) -> float:
        """Workload completion time ``T`` (seconds)."""
        return sum(r.total_s for r in self.job_results) + self.transfer_s

    @property
    def n_jobs(self) -> int:
        """Number of simulated jobs."""
        return len(self.job_results)

    def by_job(self) -> Mapping[str, JobSimResult]:
        """Results keyed by job id."""
        return {r.job_id: r for r in self.job_results}
