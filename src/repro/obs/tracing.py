"""Contextvar-propagated tracing with JSONL export.

One request = one *trace*; every instrumented stage inside it (service
dispatch, cache lookup, pool restart, solver run, evaluator seeding,
job simulation) is a *span* — a named interval with a parent.  Span
context rides a :class:`contextvars.ContextVar`, so nesting works
automatically across ``await`` points and two interleaved asyncio
requests can never contaminate each other's trace.

Span *context* (trace id + span id) is always maintained — it is a few
object allocations per span, and spans only exist at request/solve/job
granularity, never per solver iteration.  Span *recording* into the
in-memory ring collector can be switched off (``REPRO_OBS_TRACE=0``)
for zero bookkeeping beyond the context itself.

Crossing a process boundary is explicit: the parent captures
:func:`current_context` into the task payload, the worker opens its
root span with ``span(..., context=ctx)``, and the worker's finished
spans travel back in the result (see :func:`capture_spans`) to be
:func:`ingested <ingest>` into the parent collector — ids are globally
unique, so adoption is append-only.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "SpanRecord",
    "TraceCollector",
    "span",
    "capture_spans",
    "current_context",
    "current_trace_id",
    "current_span_id",
    "new_trace_id",
    "trace_collector",
    "recording_enabled",
    "set_recording",
    "ingest",
    "add_jsonl_sink",
    "remove_jsonl_sink",
]

#: Environment switch: ``REPRO_OBS_TRACE=0`` disables span recording
#: (context propagation still works — responses keep their trace ids).
TRACE_ENV = "REPRO_OBS_TRACE"

#: Finished spans the in-memory collector retains (ring buffer).
DEFAULT_CAPACITY = 8192


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class SpanRecord:
    """One finished span."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float  # wall-clock epoch seconds
    duration_s: float
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-ready form."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_dict` (cross-process adoption)."""
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            name=str(data["name"]),
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            status=str(data.get("status", "ok")),
            attrs=dict(data.get("attrs", {})),
        )


class TraceCollector:
    """Bounded ring of finished spans plus streaming sinks."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._spans: Deque[SpanRecord] = deque(maxlen=self.capacity)
        self._sinks: Dict[str, Callable[[SpanRecord], None]] = {}
        self.dropped = 0

    def add(self, record: SpanRecord) -> None:
        """Record one finished span and fan it out to the sinks."""
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(record)
            sinks = list(self._sinks.values())
        for sink in sinks:
            try:
                sink(record)
            except Exception:  # pragma: no cover - defensive
                import logging

                logging.getLogger(__name__).exception("trace sink failed")

    def records(self, trace_id: Optional[str] = None) -> List[SpanRecord]:
        """Retained spans, optionally filtered to one trace."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def clear(self) -> None:
        """Drop retained spans (sinks stay registered)."""
        with self._lock:
            self._spans.clear()

    def export_jsonl(self, trace_id: Optional[str] = None) -> str:
        """Retained spans as JSON lines (one span per line)."""
        return "".join(
            json.dumps(s.to_dict(), sort_keys=True) + "\n"
            for s in self.records(trace_id)
        )

    def dump_jsonl(self, path: str, trace_id: Optional[str] = None) -> int:
        """Write :meth:`export_jsonl` to ``path``; returns span count."""
        records = self.records(trace_id)
        with open(path, "w") as fh:
            for s in records:
                fh.write(json.dumps(s.to_dict(), sort_keys=True) + "\n")
        return len(records)

    def add_sink(self, key: str, fn: Callable[[SpanRecord], None]) -> None:
        """(Re-)register a per-span callback under ``key``."""
        with self._lock:
            self._sinks[key] = fn

    def remove_sink(self, key: str) -> None:
        """Remove the ``key`` sink (no-op when absent)."""
        with self._lock:
            self._sinks.pop(key, None)


_COLLECTOR = TraceCollector()

_RECORDING = os.environ.get(TRACE_ENV, "").strip().lower() not in ("0", "false")

#: (trace_id, span_id) of the innermost open span in this context.
_CURRENT: "ContextVar[Optional[Dict[str, str]]]" = ContextVar(
    "repro_obs_span", default=None
)

#: Divert target installed by :func:`capture_spans` (worker processes).
_CAPTURE: "ContextVar[Optional[List[SpanRecord]]]" = ContextVar(
    "repro_obs_capture", default=None
)


def trace_collector() -> TraceCollector:
    """The process-wide span collector."""
    return _COLLECTOR


def recording_enabled() -> bool:
    """Whether finished spans are being recorded."""
    return _RECORDING


def set_recording(enabled: bool) -> None:
    """Turn span recording on/off (context propagation is unaffected)."""
    global _RECORDING
    _RECORDING = bool(enabled)


def current_trace_id() -> Optional[str]:
    """Trace id of the innermost open span (None outside any span)."""
    ctx = _CURRENT.get()
    return ctx["trace_id"] if ctx else None


def current_span_id() -> Optional[str]:
    """Span id of the innermost open span (None outside any span)."""
    ctx = _CURRENT.get()
    return ctx["span_id"] if ctx else None


def current_context() -> Optional[Dict[str, str]]:
    """The JSON-able context to hand a worker across a process boundary."""
    ctx = _CURRENT.get()
    return dict(ctx) if ctx else None


class _OpenSpan:
    """Handle yielded by :func:`span` — mutate ``attrs``, read ids."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, attrs: Dict[str, Any]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs


@contextmanager
def span(
    name: str,
    attrs: Optional[Mapping[str, Any]] = None,
    context: Optional[Mapping[str, str]] = None,
) -> Iterator[_OpenSpan]:
    """Open a span named ``name`` for the duration of the block.

    Nesting derives from the ambient contextvar; pass ``context`` (a
    :func:`current_context` dict captured in another process) to
    graft this span under a remote parent instead.  Exceptions mark
    the span ``status="error"`` and propagate.
    """
    parent = dict(context) if context is not None else _CURRENT.get()
    trace_id = parent["trace_id"] if parent else new_trace_id()
    parent_id = parent["span_id"] if parent else None
    open_span = _OpenSpan(trace_id, _new_span_id(), parent_id, name,
                          dict(attrs or {}))
    token = _CURRENT.set({"trace_id": trace_id, "span_id": open_span.span_id})
    start_wall = time.time()
    start = time.perf_counter()
    status = "ok"
    try:
        yield open_span
    except BaseException as exc:
        status = "error"
        open_span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _CURRENT.reset(token)
        if _RECORDING:
            record = SpanRecord(
                trace_id=trace_id,
                span_id=open_span.span_id,
                parent_id=parent_id,
                name=name,
                start_s=start_wall,
                duration_s=time.perf_counter() - start,
                status=status,
                attrs=open_span.attrs,
            )
            sink = _CAPTURE.get()
            if sink is not None:
                sink.append(record)
            else:
                _COLLECTOR.add(record)


@contextmanager
def capture_spans(enabled: bool = True) -> Iterator[List[SpanRecord]]:
    """Divert spans finished in this context into the yielded list.

    Worker processes wrap their task body with this so finished spans
    ship home in the result payload instead of rotting in a collector
    nobody will ever read.  ``enabled=False`` yields an empty list and
    diverts nothing (the thread-mode pool shares the parent collector
    directly, so capture would only duplicate).
    """
    captured: List[SpanRecord] = []
    if not enabled:
        yield captured
        return
    token = _CAPTURE.set(captured)
    try:
        yield captured
    finally:
        _CAPTURE.reset(token)


def ingest(spans: Any) -> int:
    """Adopt spans recorded elsewhere (dicts or records); returns count.

    The cross-process return path: a pool worker's captured spans come
    home as plain dicts inside the result payload and are appended to
    this process's collector.
    """
    count = 0
    for item in spans or ():
        record = item if isinstance(item, SpanRecord) else SpanRecord.from_dict(item)
        _COLLECTOR.add(record)
        count += 1
    return count


def add_jsonl_sink(path: str, key: str = "jsonl") -> None:
    """Stream every finished span to ``path`` as JSON lines (append)."""
    fh = open(path, "a", buffering=1)

    def sink(record: SpanRecord) -> None:
        fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    _COLLECTOR.add_sink(key, sink)


def remove_jsonl_sink(key: str = "jsonl") -> None:
    """Detach a sink installed by :func:`add_jsonl_sink`."""
    _COLLECTOR.remove_sink(key)
