"""Unified observability layer: metrics, tracing, logging, telemetry.

Three dependency-free pillars threaded through every layer of the
stack (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — a thread-safe registry of
  ``Counter``/``Gauge``/``Histogram`` instruments with labels, a
  ``snapshot()``/``merge()`` protocol so counters collected inside
  ``ProcessPoolExecutor`` workers roll up into the parent process, and
  Prometheus-text / JSON exposition.
* :mod:`repro.obs.tracing` — contextvar-propagated trace/span ids with
  a lightweight :func:`~repro.obs.tracing.span` context manager, an
  in-memory collector, JSONL export, and explicit context hand-off
  across process boundaries.
* :mod:`repro.obs.logs` — stdlib-``logging`` configuration: a
  ``NullHandler`` on the ``repro`` root (installed by
  ``repro/__init__``), plus :func:`~repro.obs.logs.configure_logging`
  with an optional structured-JSON formatter that stamps the active
  trace id onto every record.

Solver progress telemetry (:mod:`repro.obs.progress`) rides on the
same registry: the annealing backends accept a sampled progress
callback that is **off by default** — the hot loops pay one
``is not None`` check per iteration when disabled.

On top of the raw signals sits the operational layer:

* :mod:`repro.obs.slo` — declarative per-op objectives evaluated from
  registry snapshots with multi-window burn-rate alerting and an
  ok→warning→page state machine (the ``slo`` service/fleet op);
* :mod:`repro.obs.flightrec` — a bounded ring of recent request
  records with slowest-K latency exemplars, and single-file JSONL
  postmortem bundles (``cast-plan debug-dump``, auto-written on SLO
  page transitions);
* :mod:`repro.obs.sampler` — a ``sys._current_frames()`` sampling
  profiler aggregating self-time by subsystem with folded-stack
  flamegraph output (the ``profile`` op);
* :mod:`repro.obs.top` — the pure renderer behind the ``cast-plan
  top`` live dashboard.
"""

from __future__ import annotations

from .flightrec import (
    FlightRecord,
    FlightRecorder,
    build_bundle,
    dump_bundle,
    load_bundle,
)
from .logs import configure_logging, json_log_record
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    snapshot_delta,
    use_registry,
)
from .progress import ProgressPrinter, SolverProgress
from .sampler import SamplingProfiler, profile_for
from .slo import (
    BurnPolicy,
    Objective,
    SLOEngine,
    default_objectives,
    rollup_reports,
    worst_state,
)
from .top import render_dashboard
from .tracing import (
    SpanRecord,
    add_jsonl_sink,
    capture_spans,
    current_context,
    current_trace_id,
    span,
    trace_collector,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "snapshot_delta",
    "SpanRecord",
    "span",
    "capture_spans",
    "current_context",
    "current_trace_id",
    "trace_collector",
    "add_jsonl_sink",
    "configure_logging",
    "json_log_record",
    "SolverProgress",
    "ProgressPrinter",
    "Objective",
    "BurnPolicy",
    "SLOEngine",
    "default_objectives",
    "worst_state",
    "rollup_reports",
    "FlightRecord",
    "FlightRecorder",
    "build_bundle",
    "dump_bundle",
    "load_bundle",
    "SamplingProfiler",
    "profile_for",
    "render_dashboard",
]
