"""Sampled solver-progress telemetry.

The annealing backends accept an optional ``progress`` callback invoked
every ``progress_every`` iterations with a :class:`SolverProgress`
snapshot (iteration, temperature, acceptance rate, best utility so far,
and — for parallel tempering — per-ladder swap statistics).  The hot
loops pay exactly one ``progress is not None`` check per iteration when
the callback is absent, which is the default everywhere.

:class:`ProgressPrinter` is the ``cast-plan plan --trace-solver``
consumer: it prints one line per sample and keeps the rows so the final
trajectory is inspectable programmatically.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, List, Optional, TextIO

__all__ = ["SolverProgress", "ProgressPrinter"]


@dataclass(frozen=True)
class SolverProgress:
    """One sampled snapshot of an in-flight annealing run."""

    backend: str  # "annealing" | "tempering"
    iteration: int
    iter_max: int
    temperature: float
    best_utility: float
    accepted: int
    proposed: int
    replicas: int = 1
    swaps_attempted: int = 0
    swaps_accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Accepted / proposed moves so far (0.0 before any proposal)."""
        return self.accepted / self.proposed if self.proposed else 0.0

    @property
    def swap_rate(self) -> float:
        """Accepted / attempted replica swaps (tempering only)."""
        return (
            self.swaps_accepted / self.swaps_attempted
            if self.swaps_attempted
            else 0.0
        )

    def to_dict(self) -> dict:
        """JSON-able form (used by ``--trace-solver`` exports)."""
        return {
            "backend": self.backend,
            "iteration": self.iteration,
            "iter_max": self.iter_max,
            "temperature": self.temperature,
            "best_utility": self.best_utility,
            "accepted": self.accepted,
            "proposed": self.proposed,
            "acceptance_rate": self.acceptance_rate,
            "replicas": self.replicas,
            "swaps_attempted": self.swaps_attempted,
            "swaps_accepted": self.swaps_accepted,
        }


@dataclass
class ProgressPrinter:
    """Print each progress sample and retain the trajectory."""

    stream: Optional[TextIO] = None
    quiet: bool = False
    rows: List[SolverProgress] = field(default_factory=list)

    def __call__(self, progress: SolverProgress) -> None:
        self.rows.append(progress)
        if self.quiet:
            return
        out = self.stream if self.stream is not None else sys.stderr
        swaps = (
            f"  swaps={progress.swaps_accepted}/{progress.swaps_attempted}"
            if progress.replicas > 1
            else ""
        )
        print(
            f"[{progress.backend}] iter {progress.iteration:>7d}/{progress.iter_max}"
            f"  T={progress.temperature:.5f}"
            f"  best={progress.best_utility:.6f}"
            f"  acc={progress.acceptance_rate:.1%}{swaps}",
            file=out,
        )

    def last(self) -> Optional[SolverProgress]:
        """The most recent sample, or None before the first callback."""
        return self.rows[-1] if self.rows else None

    def to_json(self) -> List[dict]:
        """All retained samples as JSON-able dicts."""
        return [row.to_dict() for row in self.rows]


# Typing alias for the callback parameter threaded through the solvers.
ProgressCallback = Any
