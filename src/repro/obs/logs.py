"""Stdlib-logging configuration for the ``repro`` package.

The library itself only ever does ``logging.getLogger(__name__)`` and a
``NullHandler`` on the ``repro`` root (installed by ``repro/__init__``),
so embedding applications keep full control.  The CLI entry points call
:func:`configure_logging` to attach a real handler — plain text or a
structured JSON formatter that stamps the active trace id onto every
record so log lines can be joined against span exports.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional

from . import tracing

__all__ = ["configure_logging", "json_log_record", "JsonFormatter", "LOG_LEVELS"]

#: Accepted ``--log-level`` choices (case-insensitive).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_HANDLER_FLAG = "_repro_obs_handler"


def json_log_record(record: logging.LogRecord) -> Dict[str, Any]:
    """A :class:`logging.LogRecord` as a flat JSON-able dict."""
    payload: Dict[str, Any] = {
        "ts": round(record.created, 6),
        "level": record.levelname,
        "logger": record.name,
        "message": record.getMessage(),
    }
    trace_id = tracing.current_trace_id()
    if trace_id is not None:
        payload["trace_id"] = trace_id
    if record.exc_info and record.exc_info[0] is not None:
        payload["exc_type"] = record.exc_info[0].__name__
        payload["exc"] = logging.Formatter().formatException(record.exc_info)
    return payload


class JsonFormatter(logging.Formatter):
    """One JSON object per log line, trace-id stamped when inside a span."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(json_log_record(record), sort_keys=True)


class _TextFormatter(logging.Formatter):
    """``HH:MM:SS level logger [trace] message`` — trace part optional."""

    converter = time.localtime

    def format(self, record: logging.LogRecord) -> str:
        trace_id = tracing.current_trace_id()
        record.trace = f" [{trace_id[:8]}]" if trace_id else ""
        return super().format(record)


def configure_logging(
    level: str = "warning",
    json_format: bool = False,
    stream: Optional[Any] = None,
) -> logging.Handler:
    """Attach (or replace) the CLI handler on the ``repro`` logger.

    Idempotent: re-invoking swaps the previous handler installed by this
    function instead of stacking duplicates, so tests and long-lived
    daemons can reconfigure freely.  Returns the installed handler.
    """
    level_name = str(level).strip().lower()
    if level_name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LOG_LEVELS)}"
        )
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_FLAG, True)
    if json_format:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            _TextFormatter(
                "%(asctime)s %(levelname)-7s %(name)s%(trace)s %(message)s",
                datefmt="%H:%M:%S",
            )
        )
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level_name.upper()))
    return handler
