"""Thread-safe metrics registry with cross-process roll-up.

Design constraints, in order:

* **Cheap when idle.**  Instruments are plain objects guarded by one
  registry-wide :class:`threading.RLock`; an increment is a dict update
  under that lock.  Nothing here belongs in a per-iteration hot loop —
  the solver loops keep their local ``int`` counters and publish totals
  once per solve.
* **Mergeable.**  :meth:`MetricsRegistry.snapshot` emits a plain
  JSON-able dict and :meth:`MetricsRegistry.merge` folds such a
  snapshot back in (counters and histograms add, gauges last-write).
  That is the whole cross-process story: a ``ProcessPoolExecutor``
  worker snapshots its process-local registry around the task body and
  ships the delta home in the result payload
  (:func:`snapshot_delta`); the parent merges it.
* **Exposable.**  :meth:`MetricsRegistry.to_prometheus` renders the
  text exposition format (``# HELP``/``# TYPE``, cumulative
  ``_bucket``/``_sum``/``_count`` for histograms);
  :meth:`MetricsRegistry.to_json` adds computed p50/p95/p99 per
  histogram series so latency percentiles are queryable from the
  service ``metrics`` op without a Prometheus server.

There is one process-global default registry (:func:`get_registry`).
Components that need isolation (each :class:`~repro.service.server.PlannerServer`
owns its counters) build their own ``MetricsRegistry`` and thread it
through; :func:`use_registry` rebinds the ambient default for the
current thread/task so deeply nested code (solver entry points running
inside a thread-mode pool) records into the caller's registry without
plumbing a parameter through every signature.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ObservabilityError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "snapshot_delta",
]

#: Default histogram bucket upper bounds (seconds): spans sub-ms cache
#: hits through ten-minute solve deadlines.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

_LabelKey = Tuple[str, ...]


def _label_key(labelnames: Tuple[str, ...], labels: Mapping[str, Any]) -> _LabelKey:
    if set(labels) != set(labelnames):
        raise ObservabilityError(
            f"labels {sorted(labels)} do not match declared {list(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help_text(value: str) -> str:
    # The 0.0.4 exposition format escapes backslash and newline (but
    # not quotes) in HELP text; label values escape all three.
    return value.replace("\\", "\\\\").replace("\n", "\\n")


class _Instrument:
    """Shared plumbing: a name, declared labels, keyed values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.RLock) -> None:
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = lock
        self._values: Dict[_LabelKey, Any] = {}

    def samples(self) -> List[Tuple[Dict[str, str], Any]]:
        """Every (labels, value) series this instrument holds."""
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), self._copy_value(value))
                for key, value in sorted(self._values.items())
            ]

    def _copy_value(self, value: Any) -> Any:
        return value

    def clear(self) -> None:
        """Drop every series (the registry-wide reset path)."""
        with self._lock:
            self._values.clear()


class Counter(_Instrument):
    """Monotonically increasing value, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: Any) -> None:
        """Overwrite the series total — for collectors mirroring an
        external monotonic source (e.g. the simulation cache's ints),
        never for regular accounting."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        """Current total of the labeled series (0.0 when unseen)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Gauge(_Instrument):
    """A value that can go up and down (sizes, limits, levels)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return float(self._values.get(key, 0.0))


class Histogram(_Instrument):
    """Bucketed distribution with sum/count and quantile estimation.

    Buckets are *upper bounds*; an implicit ``+Inf`` bucket catches the
    overflow.  Internally counts are stored per-bucket (not
    cumulative) so snapshots merge by plain element-wise addition;
    the Prometheus exposition cumulates on the way out.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 lock: threading.RLock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly increasing: {buckets}"
            )
        self.buckets = bounds

    def _new_series(self) -> Dict[str, Any]:
        return {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the labeled series."""
        key = _label_key(self.labelnames, labels)
        value = float(value)
        with self._lock:
            series = self._values.get(key)
            if series is None:
                series = self._values[key] = self._new_series()
            series["counts"][bisect_left(self.buckets, value)] += 1
            series["sum"] += value
            series["count"] += 1

    def _copy_value(self, value: Dict[str, Any]) -> Dict[str, Any]:
        return {"counts": list(value["counts"]), "sum": value["sum"],
                "count": value["count"]}

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the q-quantile by linear interpolation in-bucket.

        Observations above the last finite bound clamp to it — the
        usual Prometheus ``histogram_quantile`` behaviour.  NaN when
        the series is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile out of [0,1]: {q}")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._values.get(key)
            if series is None or series["count"] == 0:
                return float("nan")
            counts = list(series["counts"])
            total = series["count"]
        rank = q * total
        seen = 0.0
        for i, c in enumerate(counts):
            if seen + c >= rank and c:
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                hi = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                frac = (rank - seen) / c
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            seen += c
        return self.buckets[-1]


class MetricsRegistry:
    """Named instruments plus collectors, snapshots, and exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Instrument] = {}
        self._collectors: Dict[str, Callable[["MetricsRegistry"], None]] = {}

    # -- instrument registration (get-or-create) ---------------------------

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Sequence[str], **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} re-registered as {cls.kind} "
                        f"with labels {list(labelnames)}; existing is "
                        f"{existing.kind} with labels {list(existing.labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name`` (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    # -- collectors --------------------------------------------------------

    def register_collector(self, key: str,
                           fn: Callable[["MetricsRegistry"], None]) -> None:
        """(Re-)register a callback run before every snapshot/exposition.

        Collectors mirror external counter sources (the simulation
        cache, a solver pool) into registry instruments; re-registering
        the same ``key`` replaces the callback, keeping registration
        idempotent.
        """
        with self._lock:
            self._collectors[key] = fn

    def collect(self) -> None:
        """Run every registered collector (failures are swallowed —
        a broken collector must not take down exposition)."""
        with self._lock:
            collectors = list(self._collectors.values())
        for fn in collectors:
            try:
                fn(self)
            except Exception:  # pragma: no cover - defensive
                import logging

                logging.getLogger(__name__).exception(
                    "metrics collector failed; skipping"
                )

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self, run_collectors: bool = True) -> Dict[str, Any]:
        """A JSON-able copy of every instrument's series.

        ``run_collectors=False`` skips the mirror callbacks — the
        worker-delta capture uses it so collector-published values
        never double-count after a merge.
        """
        if run_collectors:
            self.collect()
        out: Dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            entry: Dict[str, Any] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "values": [
                    {"labels": labels, "value": value}
                    for labels, value in metric.samples()
                ],
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def merge(
        self,
        snapshot: Mapping[str, Any],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a :meth:`snapshot` (typically a worker delta) in.

        Counters and histograms add; gauges take the incoming value.
        Instruments absent from this registry are created on the fly,
        so merging into a fresh registry reconstructs the snapshot.

        ``extra_labels`` stamps every incoming series with additional
        constant labels (appended to the declared label names).  This
        is the fleet roll-up story: the router merges each shard's
        scrape into one fresh registry with ``{"shard": shard_id}``, so
        per-shard series stay distinguishable and summing over the
        ``shard`` label reproduces the fleet-wide total.
        """
        extra = dict(extra_labels or {})
        for name, entry in snapshot.items():
            kind = entry.get("kind")
            labelnames = tuple(entry.get("labelnames", ())) + tuple(extra)
            if extra:
                entry = dict(
                    entry,
                    values=[
                        {**sample, "labels": {**sample["labels"], **extra}}
                        for sample in entry["values"]
                    ],
                )
            if kind == "counter":
                metric: Any = self.counter(name, entry.get("help", ""), labelnames)
                for sample in entry["values"]:
                    metric.inc(float(sample["value"]), **sample["labels"])
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""), labelnames)
                for sample in entry["values"]:
                    metric.set(float(sample["value"]), **sample["labels"])
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), labelnames,
                    buckets=entry.get("buckets", DEFAULT_BUCKETS),
                )
                if tuple(entry.get("buckets", metric.buckets)) != metric.buckets:
                    raise ObservabilityError(
                        f"cannot merge histogram {name!r}: bucket bounds differ"
                    )
                for sample in entry["values"]:
                    value = sample["value"]
                    key = _label_key(metric.labelnames, sample["labels"])
                    with metric._lock:
                        series = metric._values.get(key)
                        if series is None:
                            series = metric._values[key] = metric._new_series()
                        for i, c in enumerate(value["counts"]):
                            series["counts"][i] += c
                        series["sum"] += value["sum"]
                        series["count"] += value["count"]
            else:
                raise ObservabilityError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )

    def reset(self) -> None:
        """Zero every instrument (registrations and collectors stay)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    # -- exposition ---------------------------------------------------------

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            samples = metric.samples()
            if not samples:
                continue
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help_text(metric.help)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, value in samples:
                label_str = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
                )
                if isinstance(metric, Histogram):
                    prefix = "{" + label_str + ("," if label_str else "")
                    cum = 0
                    for bound, count in zip(metric.buckets, value["counts"]):
                        cum += count
                        lines.append(
                            f'{metric.name}_bucket{prefix}le="{bound:g}"}} {cum}'
                        )
                    cum += value["counts"][-1]
                    lines.append(f'{metric.name}_bucket{prefix}le="+Inf"}} {cum}')
                    suffix = "{" + label_str + "}" if label_str else ""
                    lines.append(f"{metric.name}_sum{suffix} {value['sum']:g}")
                    lines.append(f"{metric.name}_count{suffix} {value['count']}")
                else:
                    suffix = "{" + label_str + "}" if label_str else ""
                    lines.append(f"{metric.name}{suffix} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, Any]:
        """Snapshot plus computed p50/p95/p99 per histogram series."""
        snap = self.snapshot()
        for name, entry in snap.items():
            if entry["kind"] != "histogram":
                continue
            metric = self.get(name)
            assert isinstance(metric, Histogram)
            for sample in entry["values"]:
                sample["quantiles"] = {
                    "p50": metric.quantile(0.50, **sample["labels"]),
                    "p95": metric.quantile(0.95, **sample["labels"]),
                    "p99": metric.quantile(0.99, **sample["labels"]),
                }
        return snap

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._metrics))


def snapshot_delta(before: Mapping[str, Any],
                   after: Mapping[str, Any]) -> Dict[str, Any]:
    """``after - before`` for two snapshots of the same registry.

    Counters and histogram series subtract element-wise (series absent
    from ``before`` pass through); gauges keep the ``after`` value.
    The result merges cleanly into any other registry — this is how a
    pool worker ships "what this task did" home without shipping its
    whole process history every time.

    A counter that went *backwards* between the two snapshots means the
    source restarted mid-scrape (a shard respawned by the fleet
    supervisor, a recycled pool worker): the cumulative total reset to
    zero and re-accumulated.  The delta then clamps to the ``after``
    value — everything the new incarnation counted — and never goes
    negative; a negative "monotonic" delta would poison any registry it
    merges into.  Histogram series reset the same way as a unit (a
    restart zeroes counts, sum and count together).
    """
    def _prev(entry: Mapping[str, Any], labels: Mapping[str, str]) -> Any:
        for sample in entry.get("values", ()):
            if sample["labels"] == labels:
                return sample["value"]
        return None

    delta: Dict[str, Any] = {}
    for name, entry in after.items():
        prev_entry = before.get(name, {})
        values: List[Dict[str, Any]] = []
        for sample in entry["values"]:
            prev = _prev(prev_entry, sample["labels"])
            value = sample["value"]
            if entry["kind"] == "counter":
                base = float(prev) if prev is not None else 0.0
                diff = float(value) - base
                if diff < 0:
                    # Counter reset (source restarted): clamp to the
                    # new cumulative value.
                    diff = float(value)
                if diff:
                    values.append({"labels": sample["labels"], "value": diff})
            elif entry["kind"] == "histogram":
                if prev is None:
                    prev = {"counts": [0] * len(value["counts"]), "sum": 0.0,
                            "count": 0}
                counts = [a - b for a, b in zip(value["counts"], prev["counts"])]
                count = value["count"] - prev["count"]
                if count < 0 or any(c < 0 for c in counts):
                    # Histogram reset: the series restarted as a unit,
                    # so the whole after-value is the delta.
                    prev = {"counts": [0] * len(value["counts"]), "sum": 0.0,
                            "count": 0}
                    counts = list(value["counts"])
                    count = value["count"]
                if count:
                    values.append({
                        "labels": sample["labels"],
                        "value": {"counts": counts,
                                  "sum": value["sum"] - prev["sum"],
                                  "count": count},
                    })
            else:  # gauge: last write wins
                if prev is None or prev != value:
                    values.append(dict(sample))
        if values:
            delta[name] = dict(entry, values=values)
    return delta


# ---------------------------------------------------------------------------
# Default registry
# ---------------------------------------------------------------------------

_GLOBAL_REGISTRY = MetricsRegistry()

#: Ambient override: lets a thread-mode pool worker record into its
#: server's registry without threading a parameter through the solver
#: entry points.  Context-local, so concurrent servers can't clobber
#: each other.
_ACTIVE_REGISTRY: "ContextVar[Optional[MetricsRegistry]]" = ContextVar(
    "repro_obs_registry", default=None
)


def get_registry() -> MetricsRegistry:
    """The ambient registry: the :func:`use_registry` override when one
    is active in this context, else the process-global default."""
    return _ACTIVE_REGISTRY.get() or _GLOBAL_REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> Any:
    """Bind ``registry`` as the ambient override for this context.

    Returns the reset token; pass it to ``_ACTIVE_REGISTRY.reset`` or
    simply prefer :func:`use_registry` which does both ends.
    """
    return _ACTIVE_REGISTRY.set(registry)


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[None]:
    """Context manager form of :func:`set_registry`."""
    token = _ACTIVE_REGISTRY.set(registry)
    try:
        yield
    finally:
        _ACTIVE_REGISTRY.reset(token)


def metrics_to_json_str(registry: MetricsRegistry) -> str:
    """Convenience: the JSON exposition as a string."""
    return json.dumps(registry.to_json(), indent=2, sort_keys=True)
