"""`cast-plan top`: a live ANSI dashboard over the metrics/slo/stats ops.

Pure rendering lives here — :func:`render_dashboard` turns the three
op payloads (``metrics`` in JSON format, ``slo``, ``stats``) into one
text frame — so the dashboard is unit-testable without a terminal or
a server.  The CLI polls a daemon (or fleet router) and repaints with
plain ANSI escapes; ``--once`` prints a single frame for scripts and
the CI smoke test.

Everything is derived from wire payloads, never from in-process
objects: whatever `top` can show, any external dashboard can too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["render_dashboard"]

_RESET = "\x1b[0m"
_STATE_COLORS = {"ok": "\x1b[32m", "warning": "\x1b[33m", "page": "\x1b[31m"}
#: Clear screen + cursor home — one repaint per poll.
CLEAR = "\x1b[H\x1b[2J"


def _paint(text: str, state: str, color: bool) -> str:
    if not color:
        return text
    return f"{_STATE_COLORS.get(state, '')}{text}{_RESET}"


def _fmt_ms(seconds: float) -> str:
    if seconds != seconds:  # NaN: empty series
        return "-"
    return f"{seconds * 1000.0:.1f}"


def _fmt_count(value: float) -> str:
    return f"{value:g}"


def _series(
    metrics: Mapping[str, Any], name: str
) -> List[Tuple[Dict[str, str], Any]]:
    entry = metrics.get(name)
    if not entry:
        return []
    return [
        (dict(sample.get("labels", {})), sample.get("value"))
        for sample in entry.get("values", ())
    ]


def _counter_sum(
    metrics: Mapping[str, Any], name: str, **match: str
) -> float:
    """Sum of a counter's series matching the given labels."""
    total = 0.0
    for labels, value in _series(metrics, name):
        if all(labels.get(k) == v for k, v in match.items()):
            total += float(value)
    return total


def _quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[float], q: float
) -> float:
    """Same in-bucket interpolation as ``Histogram.quantile``."""
    total = sum(counts)
    if total <= 0:
        return float("nan")
    rank = q * total
    seen = 0.0
    for i, c in enumerate(counts):
        if seen + c >= rank and c:
            lo = 0.0 if i == 0 else bounds[i - 1]
            hi = bounds[i] if i < len(bounds) else bounds[-1]
            frac = (rank - seen) / c
            return lo + (hi - lo) * min(1.0, max(0.0, frac))
        seen += c
    return bounds[-1] if bounds else float("nan")


def _latency_rows(
    metrics: Mapping[str, Any], name: str
) -> List[Dict[str, Any]]:
    """Per-op latency table rows, aggregated over any extra labels.

    A fleet scrape carries one series per (op, shard); summing bucket
    counts per op before the quantile math gives the fleet-wide
    distribution instead of one arbitrary shard's.
    """
    entry = metrics.get(name)
    if not entry:
        return []
    bounds = [float(b) for b in entry.get("buckets", ())]
    agg: Dict[str, Dict[str, Any]] = {}
    for sample in entry.get("values", ()):
        op = sample.get("labels", {}).get("op")
        if op is None:
            continue
        value = sample.get("value", {})
        row = agg.setdefault(op, {
            "op": op, "count": 0.0, "sum": 0.0,
            "counts": [0.0] * len(value.get("counts", ())),
        })
        counts = value.get("counts", ())
        if len(row["counts"]) != len(counts):
            row["counts"] = [0.0] * len(counts)
        for i, c in enumerate(counts):
            row["counts"][i] += float(c)
        row["count"] += float(value.get("count", 0.0))
        row["sum"] += float(value.get("sum", 0.0))
    rows = []
    for op in sorted(agg):
        row = agg[op]
        rows.append({
            "op": op,
            "count": row["count"],
            "p50": _quantile_from_counts(bounds, row["counts"], 0.50),
            "p95": _quantile_from_counts(bounds, row["counts"], 0.95),
            "p99": _quantile_from_counts(bounds, row["counts"], 0.99),
        })
    return rows


def _cache_line(metrics: Mapping[str, Any], prefix: str) -> Optional[str]:
    hits = _counter_sum(metrics, f"{prefix}_events_total", event="hit")
    misses = _counter_sum(metrics, f"{prefix}_events_total", event="miss")
    if hits + misses <= 0:
        return None
    rate = hits / (hits + misses)
    return (
        f"hits {_fmt_count(hits)}  misses {_fmt_count(misses)}  "
        f"hit-rate {rate * 100.0:.1f}%"
    )


def _slo_section(
    slo: Optional[Mapping[str, Any]], color: bool
) -> List[str]:
    lines = ["SLO"]
    if not slo or not slo.get("ops"):
        lines.append("  (no slo data)")
        return lines
    lines.append(
        f"  {'op':14s} {'state':8s} {'burn 5m':>9s} {'burn 1h':>9s} "
        f"{'burn 30m':>9s} {'burn 6h':>9s} {'budget':>8s}  shards"
    )
    for op in sorted(slo["ops"]):
        entry = slo["ops"][op]
        state = entry.get("state", "ok")
        burn = entry.get("burn", {})
        shards = entry.get("shards", {})
        shard_part = ""
        if shards:
            bad = [s for s, st in sorted(shards.items()) if st != "ok"]
            shard_part = ",".join(bad) if bad else "all ok"
        lines.append(
            f"  {op:14s} {_paint(f'{state:8s}', state, color)} "
            f"{burn.get('fast_short', 0.0):9.2f} "
            f"{burn.get('fast_long', 0.0):9.2f} "
            f"{burn.get('slow_short', 0.0):9.2f} "
            f"{burn.get('slow_long', 0.0):9.2f} "
            f"{entry.get('budget_remaining', 1.0) * 100.0:7.1f}%  "
            f"{shard_part}"
        )
    return lines


def _counters_summary(metrics: Mapping[str, Any]) -> List[str]:
    """Session/sweep/service counters worth a line each."""
    lines: List[str] = []
    pairs = (
        ("sessions", "cast_session_events_total", "kind"),
        ("replans", "cast_session_replans_total", "mode"),
        ("sweeps", "cast_sweep_points_total", "mode"),
    )
    for label, name, key in pairs:
        series = _series(metrics, name)
        if not series:
            continue
        by_key: Dict[str, float] = {}
        for labels, value in series:
            k = labels.get(key, "?")
            by_key[k] = by_key.get(k, 0.0) + float(value)
        parts = "  ".join(
            f"{k}={_fmt_count(v)}" for k, v in sorted(by_key.items())
        )
        lines.append(f"  {label:9s} {parts}")
    return lines


def render_dashboard(
    *,
    metrics: Mapping[str, Any],
    slo: Optional[Mapping[str, Any]] = None,
    stats: Optional[Mapping[str, Any]] = None,
    fleet: bool = False,
    color: bool = False,
    title: str = "cast-plan top",
) -> str:
    """One dashboard frame from the three op payloads."""
    stats = stats or {}
    lines: List[str] = []
    uptime = float(stats.get("uptime_s", 0.0))
    counters = stats.get("counters", {})
    requests = counters.get("requests", 0)
    overall = (slo or {}).get("state", "ok")
    lines.append(
        f"{title} — {'fleet' if fleet else 'server'}  "
        f"state {_paint(overall, overall, color)}  "
        f"uptime {uptime:.0f}s  requests {requests}"
    )
    lines.append("")
    lines.extend(_slo_section(slo, color))

    # Latency: per-op wire latencies (every surface records these);
    # fall back to the solve histogram for pre-scrape payloads.
    for name, label in (
        ("cast_op_latency_seconds", "Latency by op (ms)"),
        ("cast_fleet_solve_seconds", None),
    ):
        rows = _latency_rows(metrics, name)
        if name == "cast_op_latency_seconds" or rows:
            lines.append("")
            lines.append(label or name)
            if rows:
                lines.append(
                    f"  {'op':14s} {'count':>8s} {'p50':>9s} {'p95':>9s} "
                    f"{'p99':>9s}"
                )
                for row in rows:
                    lines.append(
                        f"  {row['op']:14s} {row['count']:8g} "
                        f"{_fmt_ms(row['p50']):>9s} {_fmt_ms(row['p95']):>9s} "
                        f"{_fmt_ms(row['p99']):>9s}"
                    )
            else:
                lines.append("  (no requests yet)")
            break

    lines.append("")
    lines.append("Caches")
    shown = False
    for label, prefix in (
        ("plan", "cast_plan_cache"),
        ("sim", "cast_sim_cache"),
    ):
        line = _cache_line(metrics, prefix)
        if line is not None:
            lines.append(f"  {label:9s} {line}")
            shown = True
    if not shown:
        lines.append("  (no cache traffic yet)")

    counter_lines = _counters_summary(metrics)
    if counter_lines:
        lines.append("")
        lines.append("Counters")
        lines.extend(counter_lines)

    if fleet:
        lines.append("")
        lines.append("Fleet")
        shards = stats.get("shards", ())
        if shards:
            for info in sorted(
                shards, key=lambda s: str(s.get("shard_id", ""))
            ):
                healthy = bool(info.get("healthy", True))
                state = "ok" if healthy else "page"
                word = "healthy" if healthy else "down"
                lines.append(
                    f"  {str(info.get('shard_id', '?')):12s} "
                    f"{_paint(word, state, color)}  "
                    f"{info.get('host', '?')}:{info.get('port', '?')}"
                )
        else:
            lines.append("  (no shards registered)")
        queued = _series(metrics, "cast_fleet_tenant_queued")
        inflight = {
            labels.get("tenant"): float(value)
            for labels, value in _series(metrics, "cast_fleet_tenant_inflight")
        }
        if queued:
            lines.append("  WFQ queue depth by tenant:")
            for labels, value in sorted(
                queued, key=lambda kv: kv[0].get("tenant", "")
            ):
                tenant = labels.get("tenant", "?")
                lines.append(
                    f"    {tenant:12s} queued {float(value):g}  "
                    f"inflight {inflight.get(tenant, 0.0):g}"
                )

    flight = _counter_sum(metrics, "cast_flightrec_records_total")
    if flight:
        lines.append("")
        lines.append(f"Flight recorder: {flight:g} requests recorded")
    return "\n".join(lines) + "\n"
