"""SLO engine: declarative per-op objectives with burn-rate alerting.

The registry (:mod:`repro.obs.metrics`) records *what happened*; this
module decides *whether that is OK*.  An :class:`SLOEngine` holds a set
of :class:`Objective` definitions — availability (error-rate budget)
and latency (fraction of requests under a threshold) targets per
logical op — and evaluates them from successive registry snapshots
using the Google-SRE multi-window burn-rate recipe:

* **fast burn** — budget consumed at >= ``fast_burn``× the sustainable
  rate over *both* a short (5 m) and a long (1 h) window → ``page``;
* **slow burn** — >= ``slow_burn``× over both 30 m and 6 h windows →
  ``warning``;
* neither → ``ok``.

Requiring the short *and* the long window to burn together is what
makes the alert both fast (the short window resets quickly once the
bleeding stops) and unflappable (one bad request in a quiet minute
cannot page anyone).

The engine is **clock-agnostic**: it never calls ``time`` unless asked.
Pass ``clock=`` a callable for wall time, or drive :meth:`SLOEngine.observe`
with explicit timestamps for deterministic unit tests and simulated
time.  Snapshots of the cumulative per-op counters
(``cast_op_requests_total`` / ``cast_op_latency_seconds`` — recorded by
every serving surface's dispatch loop) accumulate in a bounded history;
windowed rates are deltas between the newest observation and the one
at the window boundary, clamped against counter resets exactly like
:func:`repro.obs.metrics.snapshot_delta`.

State transitions are fired to registered callbacks (the server hooks
``page`` entries to auto-write a flight-recorder debug bundle) and the
whole report is mirrored as ``cast_slo_*`` metrics so the dashboard and
any Prometheus scrape see burn rates and states as plain gauges.

Fleet story: each shard evaluates its own engine; the router's ``slo``
op scrapes every healthy shard's report and :func:`rollup_reports`
combines them — per op, the fleet state is the **worst shard state**.
"""

from __future__ import annotations

import bisect
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ObservabilityError
from .metrics import MetricsRegistry

__all__ = [
    "STATES",
    "Objective",
    "BurnPolicy",
    "SLOEngine",
    "Transition",
    "default_objectives",
    "worst_state",
    "rollup_reports",
]

#: Health states, ordered from best to worst.
STATES: Tuple[str, ...] = ("ok", "warning", "page")
_STATE_RANK = {state: i for i, state in enumerate(STATES)}

#: Metric names the engine reads from snapshots.  Both the planner
#: server and the fleet router record request outcomes and latencies
#: under these names (their registries are separate, so there is no
#: collision).
REQUESTS_METRIC = "cast_op_requests_total"
LATENCY_METRIC = "cast_op_latency_seconds"


def worst_state(states: Sequence[str]) -> str:
    """The worst (highest-severity) of ``states``; ``ok`` when empty."""
    worst = "ok"
    for state in states:
        if _STATE_RANK.get(state, 0) > _STATE_RANK[worst]:
            worst = state
    return worst


@dataclass(frozen=True)
class Objective:
    """One SLI target for one logical op.

    ``kind="availability"``: good events are requests that did not
    answer an error envelope; ``target`` is the minimum good fraction
    (0.99 → a 1% error budget).

    ``kind="latency"``: good events are requests completing in under
    ``threshold_s`` seconds; ``target`` is the minimum fraction under
    the threshold ("p95 < 2 s" ⇔ ``target=0.95, threshold_s=2.0``).

    ``ops`` lists the wire-op labels that aggregate into this logical
    op (``solve`` covers both ``plan`` and ``plan_workflow``).
    """

    name: str
    ops: Tuple[str, ...]
    kind: str = "availability"
    target: float = 0.99
    threshold_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ObservabilityError(
                f"objective kind must be 'availability' or 'latency', "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"objective target must be in (0, 1), got {self.target}"
            )
        if self.kind == "latency" and not self.threshold_s:
            raise ObservabilityError(
                f"latency objective {self.name!r} needs threshold_s"
            )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-event fraction."""
        return 1.0 - self.target

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ops": list(self.ops),
            "kind": self.kind,
            "target": self.target,
            "threshold_s": self.threshold_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Objective":
        return cls(
            name=str(data["name"]),
            ops=tuple(str(op) for op in data["ops"]),
            kind=str(data.get("kind", "availability")),
            target=float(data.get("target", 0.99)),
            threshold_s=(
                float(data["threshold_s"])
                if data.get("threshold_s") is not None else None
            ),
        )


@dataclass(frozen=True)
class BurnPolicy:
    """Multi-window burn-rate thresholds (seconds / factors).

    Defaults are the SRE-workbook recommendation for a 30-day budget:
    page on 14.4× burn over 5 m ∧ 1 h, warn on 6× over 30 m ∧ 6 h.
    ``min_events`` suppresses alerts computed from fewer total events
    than this in the *short* window — raise it on low-traffic servers
    where a handful of failures is a datapoint, not an incident.
    """

    fast_short_s: float = 300.0
    fast_long_s: float = 3600.0
    fast_burn: float = 14.4
    slow_short_s: float = 1800.0
    slow_long_s: float = 21600.0
    slow_burn: float = 6.0
    min_events: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fast_short_s": self.fast_short_s,
            "fast_long_s": self.fast_long_s,
            "fast_burn": self.fast_burn,
            "slow_short_s": self.slow_short_s,
            "slow_long_s": self.slow_long_s,
            "slow_burn": self.slow_burn,
            "min_events": self.min_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BurnPolicy":
        return cls(**{k: type(getattr(cls, k))(v) for k, v in data.items()})

    @property
    def windows(self) -> Dict[str, float]:
        return {
            "fast_short": self.fast_short_s,
            "fast_long": self.fast_long_s,
            "slow_short": self.slow_short_s,
            "slow_long": self.slow_long_s,
        }


def default_objectives() -> Tuple[Objective, ...]:
    """The stock objectives for the four serving ops.

    Latency thresholds reflect the benchmarked shapes: solves are
    seconds of annealing, whatifs ride the vectorized fast path,
    session deltas are warm-start milliseconds, sweeps are whole grids.
    """
    return (
        Objective("solve", ("plan", "plan_workflow"),
                  kind="availability", target=0.99),
        Objective("solve", ("plan", "plan_workflow"),
                  kind="latency", target=0.95, threshold_s=30.0),
        Objective("whatif", ("whatif",), kind="availability", target=0.999),
        Objective("whatif", ("whatif",),
                  kind="latency", target=0.99, threshold_s=2.5),
        Objective("session_delta", ("session_delta",),
                  kind="availability", target=0.999),
        Objective("session_delta", ("session_delta",),
                  kind="latency", target=0.99, threshold_s=1.0),
        Objective("sweep", ("sweep",), kind="availability", target=0.99),
        Objective("sweep", ("sweep",),
                  kind="latency", target=0.95, threshold_s=120.0),
    )


@dataclass(frozen=True)
class Transition:
    """One state-machine edge, as handed to transition callbacks."""

    op: str
    old: str
    new: str
    at: float

    def to_dict(self) -> Dict[str, Any]:
        return {"op": self.op, "old": self.old, "new": self.new, "at": self.at}


@dataclass
class _OpCounts:
    """Cumulative per-wire-op tallies extracted from one snapshot."""

    total: float = 0.0
    errors: float = 0.0
    bounds: Tuple[float, ...] = ()
    counts: List[float] = field(default_factory=list)
    count: float = 0.0


def _extract(snapshot: Mapping[str, Any]) -> Dict[str, _OpCounts]:
    """Per-wire-op cumulative counters from one registry snapshot."""
    out: Dict[str, _OpCounts] = {}

    def entry(op: str) -> _OpCounts:
        oc = out.get(op)
        if oc is None:
            oc = out[op] = _OpCounts()
        return oc

    requests = snapshot.get(REQUESTS_METRIC, {})
    for sample in requests.get("values", ()):
        labels = sample.get("labels", {})
        op = labels.get("op")
        if op is None:
            continue
        oc = entry(op)
        value = float(sample.get("value", 0.0))
        oc.total += value
        if labels.get("outcome") == "error":
            oc.errors += value

    latency = snapshot.get(LATENCY_METRIC, {})
    bounds = tuple(float(b) for b in latency.get("buckets", ()))
    for sample in latency.get("values", ()):
        op = sample.get("labels", {}).get("op")
        if op is None:
            continue
        value = sample.get("value", {})
        oc = entry(op)
        oc.bounds = bounds
        oc.counts = [float(c) for c in value.get("counts", ())]
        oc.count = float(value.get("count", 0.0))
    return out


def _clamped_delta(now: float, base: float) -> float:
    """``now - base`` with counter-reset clamping (never negative)."""
    diff = now - base
    if diff < 0:
        return now
    return diff


class SLOEngine:
    """Evaluate objectives against a stream of registry snapshots.

    Thread-safety: the engine is driven from one place (the server's
    event loop or a single test); it holds no locks of its own.
    """

    def __init__(
        self,
        objectives: Optional[Sequence[Objective]] = None,
        *,
        policy: Optional[BurnPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        max_history: int = 4096,
    ) -> None:
        self.objectives: Tuple[Objective, ...] = tuple(
            objectives if objectives is not None else default_objectives()
        )
        self.policy = policy or BurnPolicy()
        self._clock = clock or time.monotonic
        self._history: Deque[Tuple[float, Dict[str, _OpCounts]]] = deque(
            maxlen=max_history
        )
        ops = sorted({obj.name for obj in self.objectives})
        self._states: Dict[str, str] = {op: "ok" for op in ops}
        self._since: Dict[str, float] = {}
        self._transition_counts: Dict[Tuple[str, str], int] = {}
        self._transition_log: Deque[Transition] = deque(maxlen=64)
        self._callbacks: List[Callable[[Transition], None]] = []
        self._last_report: Optional[Dict[str, Any]] = None

    # -- wiring --------------------------------------------------------------

    def on_transition(self, fn: Callable[[Transition], None]) -> None:
        """Register a callback fired synchronously on every state edge."""
        self._callbacks.append(fn)

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Mirror the last report as ``cast_slo_*`` gauges/counters.

        Collector-based (like the cache/pool mirrors): publishing
        happens at exposition time from the most recent evaluation —
        the collector never evaluates, so a registry snapshot cannot
        recurse into the engine that is snapshotting it.
        """

        def mirror(reg: MetricsRegistry) -> None:
            state_gauge = reg.gauge(
                "cast_slo_state",
                "SLO state per op (0 ok, 1 warning, 2 page)",
                labelnames=("op",),
            )
            burn_gauge = reg.gauge(
                "cast_slo_burn_rate",
                "Error-budget burn rate per op and window "
                "(1.0 = exactly sustainable)",
                labelnames=("op", "window"),
            )
            budget_gauge = reg.gauge(
                "cast_slo_error_budget_remaining",
                "Fraction of the error budget left over the slow-long window",
                labelnames=("op",),
            )
            transitions = reg.counter(
                "cast_slo_transitions_total",
                "SLO state-machine edges by op and destination state",
                labelnames=("op", "to"),
            )
            report = self._last_report
            if report is None:
                return
            for op, entry in report["ops"].items():
                state_gauge.set(_STATE_RANK[entry["state"]], op=op)
                for window, burn in entry["burn"].items():
                    burn_gauge.set(burn, op=op, window=window)
                budget_gauge.set(entry["budget_remaining"], op=op)
            for (op, to), n in self._transition_counts.items():
                transitions.set_total(n, op=op, to=to)

        registry.register_collector("slo", mirror)

    # -- observation ---------------------------------------------------------

    def observe(
        self, snapshot: Mapping[str, Any], t: Optional[float] = None
    ) -> float:
        """Append one registry snapshot to the history; returns its time."""
        t = self._clock() if t is None else float(t)
        if self._history and t < self._history[-1][0]:
            raise ObservabilityError(
                f"SLO observations must be monotonic: {t} < "
                f"{self._history[-1][0]}"
            )
        self._history.append((t, _extract(snapshot)))
        self._prune(t)
        return t

    def _prune(self, now: float) -> None:
        """Drop history older than the longest window, keeping one
        entry beyond the boundary so the window delta stays exact."""
        horizon = now - max(self.policy.windows.values())
        while len(self._history) >= 2 and self._history[1][0] <= horizon:
            self._history.popleft()

    def _at_or_before(self, t: float) -> Dict[str, _OpCounts]:
        """The observation at the window boundary (oldest when the
        history is shorter than the window — a partial window)."""
        base = self._history[0][1]
        for obs_t, data in self._history:
            if obs_t <= t:
                base = data
            else:
                break
        return base

    # -- evaluation ----------------------------------------------------------

    def _bad_fraction(
        self,
        objective: Objective,
        now_data: Mapping[str, _OpCounts],
        base_data: Mapping[str, _OpCounts],
    ) -> Tuple[float, float]:
        """(bad_fraction, total_events) for one objective over a window."""
        total = 0.0
        bad = 0.0
        for op in objective.ops:
            now = now_data.get(op)
            if now is None:
                continue
            base = base_data.get(op, _OpCounts())
            if objective.kind == "availability":
                n = _clamped_delta(now.total, base.total)
                e = _clamped_delta(now.errors, base.errors)
                total += n
                bad += min(e, n)
            else:
                count = _clamped_delta(now.count, base.count)
                if count <= 0 or not now.bounds:
                    continue
                # Good = observations in buckets at or under the
                # threshold (conservative when the threshold falls
                # between bucket bounds).
                k = bisect.bisect_right(now.bounds, objective.threshold_s)
                base_counts = base.counts or [0.0] * len(now.counts)
                if len(base_counts) != len(now.counts):
                    base_counts = [0.0] * len(now.counts)
                deltas = [
                    _clamped_delta(a, b)
                    for a, b in zip(now.counts, base_counts)
                ]
                if sum(deltas) < count:  # reset clamped unevenly: rescale
                    count = sum(deltas)
                good = sum(deltas[:k])
                total += count
                bad += max(0.0, count - good)
        if total <= 0:
            return 0.0, 0.0
        return bad / total, total

    def evaluate(
        self,
        snapshot: Optional[Mapping[str, Any]] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        t: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Observe (optionally) and re-run the state machine.

        Pass ``registry`` (or a pre-taken ``snapshot``) to fold a new
        observation in first; with neither, re-evaluates on the
        existing history.  Returns the JSON-able report and fires
        transition callbacks for every op whose state changed.
        """
        if registry is not None:
            snapshot = registry.snapshot()
        if snapshot is not None:
            t = self.observe(snapshot, t)
        if not self._history:
            raise ObservabilityError("SLOEngine.evaluate before any observe")
        now_t, now_data = self._history[-1]
        if t is None:
            t = now_t

        policy = self.policy
        op_reports: Dict[str, Dict[str, Any]] = {}
        transitions: List[Transition] = []
        window_bases = {
            name: self._at_or_before(now_t - seconds)
            for name, seconds in policy.windows.items()
        }

        by_op: Dict[str, List[Dict[str, Any]]] = {}
        for objective in self.objectives:
            burn: Dict[str, float] = {}
            frac: Dict[str, float] = {}
            events: Dict[str, float] = {}
            for window, base_data in window_bases.items():
                bad_frac, total = self._bad_fraction(
                    objective, now_data, base_data
                )
                frac[window] = bad_frac
                events[window] = total
                burn[window] = bad_frac / objective.budget
            paging = (
                burn["fast_short"] >= policy.fast_burn
                and burn["fast_long"] >= policy.fast_burn
                and events["fast_short"] >= policy.min_events
            )
            warning = (
                burn["slow_short"] >= policy.slow_burn
                and burn["slow_long"] >= policy.slow_burn
                and events["slow_short"] >= policy.min_events
            )
            state = "page" if paging else ("warning" if warning else "ok")
            by_op.setdefault(objective.name, []).append({
                "kind": objective.kind,
                "target": objective.target,
                "threshold_s": objective.threshold_s,
                "state": state,
                "burn": burn,
                "bad_fraction": frac,
                "events": events,
                "budget_remaining": max(
                    0.0, 1.0 - frac["slow_long"] / objective.budget
                ),
            })

        for op, obj_reports in by_op.items():
            state = worst_state([r["state"] for r in obj_reports])
            old = self._states.get(op, "ok")
            if state != old:
                edge = Transition(op=op, old=old, new=state, at=t)
                transitions.append(edge)
                self._states[op] = state
                self._since[op] = t
                key = (op, state)
                self._transition_counts[key] = (
                    self._transition_counts.get(key, 0) + 1
                )
                self._transition_log.append(edge)
            op_reports[op] = {
                "state": state,
                "since": self._since.get(op),
                "objectives": obj_reports,
                "burn": {
                    window: max(r["burn"][window] for r in obj_reports)
                    for window in policy.windows
                },
                "budget_remaining": min(
                    r["budget_remaining"] for r in obj_reports
                ),
            }

        report = {
            "scope": "server",
            "state": worst_state([r["state"] for r in op_reports.values()]),
            "clock": t,
            "policy": policy.to_dict(),
            "ops": op_reports,
            "transitions": [e.to_dict() for e in self._transition_log],
        }
        self._last_report = report
        for edge in transitions:
            for fn in list(self._callbacks):
                fn(edge)
        return report

    # -- introspection -------------------------------------------------------

    @property
    def states(self) -> Dict[str, str]:
        """Current state per logical op."""
        return dict(self._states)

    @property
    def last_report(self) -> Optional[Dict[str, Any]]:
        """The most recent :meth:`evaluate` report (None before any)."""
        return self._last_report

    def config(self) -> Dict[str, Any]:
        """JSON-able engine configuration (for debug bundles)."""
        return {
            "objectives": [obj.to_dict() for obj in self.objectives],
            "policy": self.policy.to_dict(),
        }


def rollup_reports(
    shard_reports: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Any]:
    """Combine per-shard ``slo`` reports into one fleet view.

    Per op: state = **worst shard state**, burn = max per window,
    budget remaining = min — the pessimistic union, because a page on
    one shard is a page for the fleet.  Each op entry carries the
    per-shard states so the dashboard can point at the culprit.
    """
    ops: Dict[str, Dict[str, Any]] = {}
    for shard_id, report in shard_reports.items():
        for op, entry in report.get("ops", {}).items():
            agg = ops.get(op)
            if agg is None:
                agg = ops[op] = {
                    "state": "ok",
                    "burn": {},
                    "budget_remaining": 1.0,
                    "shards": {},
                }
            agg["shards"][shard_id] = entry["state"]
            agg["state"] = worst_state([agg["state"], entry["state"]])
            for window, burn in entry.get("burn", {}).items():
                agg["burn"][window] = max(agg["burn"].get(window, 0.0), burn)
            agg["budget_remaining"] = min(
                agg["budget_remaining"], entry.get("budget_remaining", 1.0)
            )
    return {
        "scope": "fleet",
        "state": worst_state([entry["state"] for entry in ops.values()]),
        "ops": ops,
        "shards": {
            shard_id: report.get("state", "ok")
            for shard_id, report in shard_reports.items()
        },
    }
