"""Sampling profiler: where do the milliseconds actually go?

A :class:`SamplingProfiler` runs a daemon thread that wakes every
``interval_s`` and snapshots every thread's current frame via
``sys._current_frames()``.  Each sample attributes one tick of
**self-time** to the leaf frame's subsystem — solver, evaluator,
simulator, serialization, service, … — classified from the frame's
file path, and folds the whole stack into a ``caller;...;leaf count``
line (the standard folded-stack format every flamegraph renderer
eats).

Sampling sees **this process only**: with a thread-mode solver pool
(``--pool-processes 0``) solver frames show up directly; with worker
processes the parent shows serialization and event-loop time while the
solve itself runs elsewhere (run ``cast-plan profile`` against a shard
to see its workers' parent too).  The overhead is one C-level frame
walk per interval — at the 5 ms default that is well under a percent
of one core and nothing on the request path, which is why the
``profile`` op can run against a live production daemon.

No dependencies: the folded output is plain text; paste it into any
flamegraph tool (or read the ``by_subsystem`` table directly).
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ObservabilityError

__all__ = [
    "SUBSYSTEMS",
    "SamplingProfiler",
    "classify_frame",
    "profile_for",
]

#: Known subsystems, in display order.  ``idle`` is the event loop (or
#: any thread) parked in a selector/lock wait; ``other`` is everything
#: that matched no rule.
SUBSYSTEMS: Tuple[str, ...] = (
    "solver",
    "evaluator",
    "simulator",
    "serialization",
    "service",
    "fleet",
    "session",
    "sweep",
    "obs",
    "idle",
    "other",
)

# Path fragments → subsystem, first match wins.  Evaluator outranks
# the generic core rule (the evaluator lives in repro/core too), and
# idle outranks everything: a frame parked in select/epoll/lock-wait
# is waiting, whatever module it sits in.
_IDLE_MODULES = (
    "selectors.py", "selector_events.py", "threading.py", "queue.py",
    "concurrent/futures", "multiprocessing/connection.py", "socket.py",
)
_SERIALIZATION_MODULES = (
    "json/", "pickle.py", "struct.py", "base64.py", "_json",
)
_RULES: Tuple[Tuple[str, str], ...] = (
    ("repro/core/evaluator", "evaluator"),
    ("repro/core/tensor_eval", "evaluator"),
    ("repro/core/", "solver"),
    ("repro/simulator/", "simulator"),
    ("repro/service/protocol", "serialization"),
    ("repro/service/fingerprint", "serialization"),
    ("repro/service/", "service"),
    ("repro/fleet/", "fleet"),
    ("repro/session/", "session"),
    ("repro/sweep/", "sweep"),
    ("repro/obs/", "obs"),
    ("repro/workloads/", "service"),
    ("repro/cloud/", "solver"),
)


def classify_frame(filename: str, funcname: str = "") -> str:
    """Subsystem for one frame, from its file path (and function name)."""
    path = filename.replace("\\", "/")
    for fragment in _IDLE_MODULES:
        if fragment in path:
            return "idle"
    if funcname in ("select", "poll", "epoll", "kqueue", "acquire", "wait"):
        return "idle"
    for fragment in _SERIALIZATION_MODULES:
        if fragment in path:
            return "serialization"
    for fragment, subsystem in _RULES:
        if fragment in path:
            return subsystem
    return "other"


def _frame_label(frame: Any) -> str:
    """``module:function`` for one frame, compact enough to fold."""
    name = frame.f_globals.get("__name__") or frame.f_code.co_filename
    return f"{name}:{frame.f_code.co_name}"


def _walk(frame: Any, max_depth: int = 64) -> List[Any]:
    """Frames root-first (truncated at ``max_depth`` for safety)."""
    frames: List[Any] = []
    while frame is not None and len(frames) < max_depth:
        frames.append(frame)
        frame = frame.f_back
    frames.reverse()
    return frames


class SamplingProfiler:
    """Thread-sampling profiler with subsystem and folded-stack output."""

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ObservabilityError(
                f"interval_s must be > 0, got {interval_s}"
            )
        self.interval_s = float(interval_s)
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._samples = 0
        self._by_subsystem: Dict[str, int] = {}
        self._folded: Dict[str, int] = {}
        self._started_at: Optional[float] = None
        self._elapsed_s = 0.0

    # -- sampling ------------------------------------------------------------

    def sample_once(
        self, frames_by_thread: Optional[Mapping[int, Any]] = None,
        exclude: Iterable[int] = (),
    ) -> int:
        """Take one sample; returns threads sampled.

        ``frames_by_thread`` defaults to ``sys._current_frames()``;
        tests pass synthetic frame mappings for determinism.
        """
        if frames_by_thread is None:
            frames_by_thread = sys._current_frames()
        excluded = set(exclude)
        sampler_tid = (
            self._thread.ident if self._thread is not None else None
        )
        n = 0
        with self._lock:
            for tid, frame in frames_by_thread.items():
                if tid in excluded or tid == sampler_tid:
                    continue
                stack = _walk(frame)
                if not stack:
                    continue
                leaf = stack[-1]
                subsystem = classify_frame(
                    leaf.f_code.co_filename, leaf.f_code.co_name
                )
                self._by_subsystem[subsystem] = (
                    self._by_subsystem.get(subsystem, 0) + 1
                )
                folded = ";".join(_frame_label(f) for f in stack)
                self._folded[folded] = self._folded.get(folded, 0) + 1
                n += 1
            self._samples += n
        return n

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - defensive
                pass

    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling (idempotent); totals survive for :meth:`report`."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed_s += time.perf_counter() - self._started_at
            self._started_at = None

    def run_for(self, duration_s: float) -> Dict[str, Any]:
        """Sample for ``duration_s`` seconds (blocking), then report."""
        self.start()
        try:
            time.sleep(max(0.0, float(duration_s)))
        finally:
            self.stop()
        return self.report()

    # -- output --------------------------------------------------------------

    def report(self, top: int = 40) -> Dict[str, Any]:
        """JSON-able profile: subsystem table + top folded stacks."""
        with self._lock:
            samples = self._samples
            by_subsystem = dict(self._by_subsystem)
            folded = dict(self._folded)
        total = sum(by_subsystem.values()) or 1
        table = {
            name: {
                "samples": count,
                "share": count / total,
                "self_s": count * self.interval_s,
            }
            for name, count in sorted(
                by_subsystem.items(), key=lambda kv: -kv[1]
            )
        }
        stacks = sorted(folded.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        return {
            "samples": samples,
            "interval_s": self.interval_s,
            "duration_s": self._elapsed_s,
            "by_subsystem": table,
            "folded": [f"{stack} {count}" for stack, count in stacks],
        }

    def to_folded(self) -> str:
        """Every folded stack, one per line (flamegraph input)."""
        with self._lock:
            items = sorted(self._folded.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in items) + (
            "\n" if items else ""
        )


def profile_for(
    duration_s: float = 1.0, interval_s: float = 0.005
) -> Dict[str, Any]:
    """One-shot convenience: sample this process and return the report."""
    return SamplingProfiler(interval_s=interval_s).run_for(duration_s)
