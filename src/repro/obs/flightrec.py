"""Flight recorder: recent-request ring buffer + postmortem bundles.

A :class:`FlightRecorder` sits in every serving surface's dispatch
loop and keeps two things, both bounded:

* a **ring buffer** of the last N request records — op, tenant, shard,
  latency, cache hit, outcome, ``trace_id`` — cheap enough to leave on
  in production (one deque append and a small heap update per
  request);
* per-op **slowest-K exemplars**, attached to the latency histogram
  series in the JSON metrics exposition so "p99 spiked" comes with
  trace ids to chase instead of a bare number.

:func:`build_bundle` assembles a single JSONL postmortem bundle —
metrics snapshot (with exemplars attached), recent flight records,
recent trace spans, the server's config, an environment stamp — and
:func:`dump_bundle`/:func:`load_bundle` round-trip it to disk.  The
server writes one automatically on every SLO ``page`` transition
(:mod:`repro.obs.slo`), and ``cast-plan debug-dump`` fetches one from
a live daemon on demand.
"""

from __future__ import annotations

import heapq
import json
import os
import platform
import sys
import threading
import time
from dataclasses import dataclass, field
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

from ..errors import ObservabilityError
from .metrics import MetricsRegistry
from .slo import LATENCY_METRIC
from .tracing import trace_collector

__all__ = [
    "FlightRecord",
    "FlightRecorder",
    "build_bundle",
    "dump_bundle",
    "load_bundle",
    "env_stamp",
]

#: Bundle schema version, stamped into the meta line.
BUNDLE_SCHEMA = 1

#: Spans included in a bundle (newest first in the collector ring).
BUNDLE_SPAN_LIMIT = 256


@dataclass(frozen=True)
class FlightRecord:
    """One served request, as remembered by the recorder."""

    op: str
    latency_s: float
    ok: bool = True
    cached: bool = False
    tenant: Optional[str] = None
    shard: Optional[str] = None
    error: Optional[str] = None
    trace_id: Optional[str] = None
    t: float = 0.0
    seq: int = field(default=0, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "latency_s": self.latency_s,
            "ok": self.ok,
            "cached": self.cached,
            "tenant": self.tenant,
            "shard": self.shard,
            "error": self.error,
            "trace_id": self.trace_id,
            "t": self.t,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlightRecord":
        return cls(
            op=str(data["op"]),
            latency_s=float(data["latency_s"]),
            ok=bool(data.get("ok", True)),
            cached=bool(data.get("cached", False)),
            tenant=data.get("tenant"),
            shard=data.get("shard"),
            error=data.get("error"),
            trace_id=data.get("trace_id"),
            t=float(data.get("t", 0.0)),
            seq=int(data.get("seq", 0)),
        )


class FlightRecorder:
    """Bounded ring of recent requests with slowest-K exemplars.

    Thread-safe: the asyncio dispatch loop records from the event
    loop thread while exposition/bundling may read from worker
    threads; one lock covers both structures.
    """

    def __init__(self, capacity: int = 512, exemplars: int = 8) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        if exemplars < 1:
            raise ObservabilityError(f"exemplars must be >= 1, got {exemplars}")
        self.capacity = int(capacity)
        self.exemplar_k = int(exemplars)
        self._lock = threading.Lock()
        self._ring: Deque[FlightRecord] = deque(maxlen=self.capacity)
        # Per-op min-heaps of (latency, seq, record): the root is the
        # *fastest* of the slowest-K, so replacement is O(log K).
        self._slowest: Dict[str, List[Tuple[float, int, FlightRecord]]] = {}
        self._recorded = 0

    def record(
        self,
        *,
        op: str,
        latency_s: float,
        ok: bool = True,
        cached: bool = False,
        tenant: Optional[str] = None,
        shard: Optional[str] = None,
        error: Optional[str] = None,
        trace_id: Optional[str] = None,
        t: Optional[float] = None,
    ) -> FlightRecord:
        """Append one request record (the dispatch-loop hot path)."""
        with self._lock:
            self._recorded += 1
            rec = FlightRecord(
                op=op,
                latency_s=float(latency_s),
                ok=bool(ok),
                cached=bool(cached),
                tenant=tenant,
                shard=shard,
                error=error,
                trace_id=trace_id,
                t=time.time() if t is None else float(t),
                seq=self._recorded,
            )
            self._ring.append(rec)
            heap = self._slowest.setdefault(op, [])
            item = (rec.latency_s, rec.seq, rec)
            if len(heap) < self.exemplar_k:
                heapq.heappush(heap, item)
            elif rec.latency_s > heap[0][0]:
                heapq.heapreplace(heap, item)
            return rec

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total records ever seen (>= ``len`` once the ring wraps)."""
        with self._lock:
            return self._recorded

    def records(
        self, n: Optional[int] = None, op: Optional[str] = None
    ) -> List[FlightRecord]:
        """The most recent records, oldest first (filtered by ``op``)."""
        with self._lock:
            recs: List[FlightRecord] = list(self._ring)
        if op is not None:
            recs = [r for r in recs if r.op == op]
        if n is not None:
            recs = recs[-n:]
        return recs

    def slowest(
        self, k: Optional[int] = None, op: Optional[str] = None
    ) -> List[FlightRecord]:
        """Slowest requests, slowest first (one op or across all)."""
        with self._lock:
            if op is not None:
                items = list(self._slowest.get(op, ()))
            else:
                items = [x for heap in self._slowest.values() for x in heap]
        items.sort(key=lambda x: (-x[0], x[1]))
        if k is not None:
            items = items[:k]
        return [rec for _, _, rec in items]

    def exemplars(self) -> Dict[str, List[Dict[str, Any]]]:
        """Per-op slowest-K exemplar dicts, slowest first."""
        with self._lock:
            ops = list(self._slowest)
        return {op: [r.to_dict() for r in self.slowest(op=op)] for op in ops}

    def attach_exemplars(
        self,
        metrics_json: Dict[str, Any],
        metric: str = LATENCY_METRIC,
    ) -> Dict[str, Any]:
        """Stamp slowest-K exemplars onto each latency histogram series.

        Mutates (and returns) ``metrics_json`` — the ``metrics`` op's
        JSON payload — adding an ``exemplars`` list next to each
        series' quantiles, keyed by the series' ``op`` label.
        """
        entry = metrics_json.get(metric)
        if not entry:
            return metrics_json
        by_op = self.exemplars()
        for sample in entry.get("values", ()):
            op = sample.get("labels", {}).get("op")
            if op in by_op:
                sample["exemplars"] = [
                    {
                        "trace_id": ex["trace_id"],
                        "latency_s": ex["latency_s"],
                        "tenant": ex["tenant"],
                        "t": ex["t"],
                    }
                    for ex in by_op[op]
                ]
        return metrics_json

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Mirror ring occupancy/throughput into ``cast_flightrec_*``."""

        def mirror(reg: MetricsRegistry) -> None:
            reg.counter(
                "cast_flightrec_records_total",
                "Requests recorded by the flight recorder",
            ).set_total(self.recorded)
            size = reg.gauge(
                "cast_flightrec_ring", "Flight-recorder ring state",
                labelnames=("stat",),
            )
            size.set(len(self), stat="size")
            size.set(self.capacity, stat="capacity")

        registry.register_collector("flightrec", mirror)

    def stats(self) -> Dict[str, int]:
        """Plain counters for the ``stats`` payload."""
        return {
            "recorded": self.recorded,
            "size": len(self),
            "capacity": self.capacity,
            "exemplar_k": self.exemplar_k,
        }


# ---------------------------------------------------------------------------
# Postmortem bundles
# ---------------------------------------------------------------------------


def env_stamp() -> Dict[str, Any]:
    """Where/when this bundle was produced (mirrors the BENCH stamps)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "created_unix": time.time(),
    }


def build_bundle(
    *,
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[FlightRecorder] = None,
    slo_report: Optional[Mapping[str, Any]] = None,
    config: Optional[Mapping[str, Any]] = None,
    reason: str = "request",
    span_limit: int = BUNDLE_SPAN_LIMIT,
) -> Dict[str, Any]:
    """Assemble one JSON-able postmortem bundle.

    Sections: ``meta`` (schema, reason, env stamp), ``config`` (caller
    supplied — server limits, SLO spec), ``metrics`` (JSON exposition
    with exemplars attached), ``slo`` (last report), ``exemplars``
    (per-op slowest-K), ``records`` (the flight ring), ``spans`` (the
    newest trace spans).
    """
    metrics = registry.to_json() if registry is not None else {}
    if recorder is not None:
        recorder.attach_exemplars(metrics)
    spans = [r.to_dict() for r in trace_collector().records()[-span_limit:]]
    return {
        "meta": {
            "schema": BUNDLE_SCHEMA,
            "reason": reason,
            "env": env_stamp(),
        },
        "config": dict(config or {}),
        "metrics": metrics,
        "slo": dict(slo_report) if slo_report is not None else None,
        "exemplars": recorder.exemplars() if recorder is not None else {},
        "records": [r.to_dict() for r in recorder.records()]
        if recorder is not None else [],
        "spans": spans,
    }


def dump_bundle(path: str, bundle: Mapping[str, Any]) -> str:
    """Write one bundle as a single JSONL file; returns ``path``.

    One line per section, plus one line per flight record and span —
    the file greps and streams like any other JSONL artifact, and a
    truncated dump still parses line by line.
    """
    def line(section: str, data: Any) -> str:
        return json.dumps({"section": section, "data": data},
                          sort_keys=True, separators=(",", ":"))

    parts = [
        line("meta", bundle.get("meta", {})),
        line("config", bundle.get("config", {})),
        line("metrics", bundle.get("metrics", {})),
        line("slo", bundle.get("slo")),
        line("exemplars", bundle.get("exemplars", {})),
    ]
    parts.extend(line("record", rec) for rec in bundle.get("records", ()))
    parts.extend(line("span", sp) for sp in bundle.get("spans", ()))
    with open(path, "w") as fh:
        fh.write("\n".join(parts) + "\n")
    return path


def load_bundle(path: str) -> Dict[str, Any]:
    """Parse a :func:`dump_bundle` file back into its bundle dict."""
    bundle: Dict[str, Any] = {
        "meta": {},
        "config": {},
        "metrics": {},
        "slo": None,
        "exemplars": {},
        "records": [],
        "spans": [],
    }
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: bad bundle line: {exc}"
                ) from None
            section = obj.get("section")
            data = obj.get("data")
            if section == "record":
                bundle["records"].append(data)
            elif section == "span":
                bundle["spans"].append(data)
            elif section in bundle:
                bundle[section] = data
            else:
                raise ObservabilityError(
                    f"{path}:{lineno}: unknown bundle section {section!r}"
                )
    schema = bundle["meta"].get("schema") if bundle["meta"] else None
    if schema != BUNDLE_SCHEMA:
        raise ObservabilityError(
            f"{path}: unsupported bundle schema {schema!r} "
            f"(supported: {BUNDLE_SCHEMA})"
        )
    return bundle
