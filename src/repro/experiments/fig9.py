"""Fig. 9 — workflow deadlines: miss rates and cost.

The §5.2 evaluation: five workflows (31 jobs, deadlines between 15 and
40 minutes) deploy under six configurations — the four single-service
plans, basic CAST (which optimizes the combined 31-job set for utility,
blind to deadlines and cross-tier transfers), and CAST++ (per-workflow
Eq. 8–10 cost-minimization under the deadline).

Every configuration is *measured* by simulating each workflow end to
end, including cross-tier output→input transfer time.  Expected shape
(paper): CAST++ meets every deadline at the lowest cost; basic CAST
misses a large fraction (60 % in the paper) despite low cost; the
fast-but-expensive single-service plans miss some (ephSSD 20 %,
persSSD 40 %) and the slow ones miss all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..core.annealing import AnnealingSchedule
from ..core.castpp import CastPlusPlus, _workflow_billed_capacity
from ..core.cost import deployment_cost
from ..core.plan import Placement, TieringPlan
from ..core.solver import CastSolver
from ..profiler.models import ModelMatrix
from ..workloads.spec import WorkloadSpec
from ..workloads.workflow import Workflow, evaluation_workflow_suite
from ..simulator.metrics import WorkloadSimResult
from .common import evaluation_cluster, model_matrix, provider
from .runner import ExperimentRunner

__all__ = ["Fig9Config", "Fig9Result", "run_fig9", "format_fig9", "FIG9_CONFIG_ORDER"]

FIG9_CONFIG_ORDER: Tuple[str, ...] = (
    "ephSSD 100%",
    "persSSD 100%",
    "persHDD 100%",
    "objStore 100%",
    "CAST",
    "CAST++",
)


@dataclass(frozen=True)
class Fig9Config:
    """One configuration's deadline outcome across the suite."""

    name: str
    total_cost_usd: float
    misses: int
    n_workflows: int
    makespans_s: Mapping[str, float]
    deadlines_s: Mapping[str, float]

    @property
    def miss_rate_pct(self) -> float:
        """Fraction of workflow deadlines missed."""
        return self.misses / self.n_workflows * 100.0


@dataclass(frozen=True)
class Fig9Result:
    """All six configurations."""

    configs: Tuple[Fig9Config, ...]

    def config(self, name: str) -> Fig9Config:
        """Look up a configuration."""
        for c in self.configs:
            if c.name == name:
                return c
        raise KeyError(name)


#: Per-VM working volumes every Fig. 9 deployment provisions (§3
#: sizing): one ephSSD stack and 500 GB block volumes per VM.
FIG9_CAPS: Mapping[Tier, float] = {
    Tier.EPH_SSD: 375.0, Tier.PERS_SSD: 500.0, Tier.PERS_HDD: 500.0,
}


def _config_from_sims(
    name: str,
    workflows: Sequence[Workflow],
    tier_of_all: Mapping[str, Tier],
    sims: Sequence[WorkloadSimResult],
    cluster: ClusterSpec,
    prov: CloudProvider,
) -> Fig9Config:
    """Price one configuration from its per-workflow simulations."""
    total_cost = 0.0
    misses = 0
    makespans: Dict[str, float] = {}
    deadlines: Dict[str, float] = {}
    for wf, sim in zip(workflows, sims):
        tier_of = {j.job_id: tier_of_all[j.job_id] for j in wf.jobs}
        makespans[wf.name] = sim.makespan_s
        deadlines[wf.name] = wf.deadline_s
        if sim.makespan_s > wf.deadline_s:
            misses += 1
        plan = TieringPlan(
            placements={
                j.job_id: Placement(tier=tier_of[j.job_id], capacity_gb=j.footprint_gb)
                for j in wf.jobs
            }
        )
        billed = _workflow_billed_capacity(wf, plan, prov)
        total_cost += deployment_cost(prov, cluster, sim.makespan_s, billed).total_usd
    return Fig9Config(
        name=name,
        total_cost_usd=total_cost,
        misses=misses,
        n_workflows=len(workflows),
        makespans_s=makespans,
        deadlines_s=deadlines,
    )


def run_fig9(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
    workflows: Optional[Sequence[Workflow]] = None,
    matrix: Optional[ModelMatrix] = None,
    iterations: int = 3000,
    seed: int = 42,
    workers: Optional[int] = None,
    fast_sim: bool = False,
) -> Fig9Result:
    """Plan and measure all six configurations over the suite.

    ``workers`` > 1 simulates the 6 × 5 (configuration, workflow)
    pairs in parallel; per-config sums replay the serial order, so the
    reported numbers are unchanged.  ``fast_sim`` opts the runner into
    the vectorized wave-model fast path; eligibility is decided per
    job, and the suite's DAG jobs are all phased (staging partially
    disabled), so they run on the exact event engine either way and
    the panel is bit-identical with the flag on or off.
    """
    prov = prov or provider()
    cluster = cluster or evaluation_cluster()
    workflows = list(workflows) if workflows is not None else evaluation_workflow_suite()
    matrix = matrix or model_matrix(prov, cluster)
    schedule = AnnealingSchedule(iter_max=iterations)

    all_jobs = tuple(j for wf in workflows for j in wf.jobs)
    union = WorkloadSpec(jobs=all_jobs, name="fig9-union")

    tier_maps: Dict[str, Dict[str, Tier]] = {}
    for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE):
        tier_maps[f"{tier.value} 100%"] = {j.job_id: tier for j in all_jobs}

    # Basic CAST: deadline- and transfer-oblivious utility optimization
    # over the combined job set (§5.2.1's description of its failure).
    cast = CastSolver(cluster_spec=cluster, matrix=matrix, provider=prov,
                      schedule=schedule, seed=seed)
    cast_plan = cast.solve(union).best_state
    tier_maps["CAST"] = {j.job_id: cast_plan.tier_of(j.job_id) for j in all_jobs}

    # CAST++: each workflow optimized separately for cost s.t. deadline.
    castpp = CastPlusPlus(cluster_spec=cluster, matrix=matrix, provider=prov,
                          schedule=schedule, seed=seed)
    castpp_map: Dict[str, Tier] = {}
    for wf in workflows:
        result = castpp.solve_workflow(wf)
        for j in wf.jobs:
            castpp_map[j.job_id] = result.best_state.tier_of(j.job_id)
    tier_maps["CAST++"] = castpp_map

    items = [
        (wf, {j.job_id: tier_maps[name][j.job_id] for j in wf.jobs}, FIG9_CAPS)
        for name in FIG9_CONFIG_ORDER
        for wf in workflows
    ]
    with ExperimentRunner(workers, fast_path=fast_sim) as runner:
        sims = runner.simulate_workflows(items, cluster, prov)

    configs = []
    for i, name in enumerate(FIG9_CONFIG_ORDER):
        cfg_sims = sims[i * len(workflows):(i + 1) * len(workflows)]
        configs.append(
            _config_from_sims(name, workflows, tier_maps[name], cfg_sims, cluster, prov)
        )
    return Fig9Result(configs=tuple(configs))


def format_fig9(result: Fig9Result) -> str:
    """Render the miss-rate / cost panel."""
    lines = [f"{'config':14s} {'cost($)':>9s} {'missed':>7s} {'miss rate':>10s}"]
    for c in result.configs:
        lines.append(
            f"{c.name:14s} {c.total_cost_usd:9.2f} "
            f"{c.misses:4d}/{c.n_workflows:<2d} {c.miss_rate_pct:9.0f}%"
        )
    return "\n".join(lines)
