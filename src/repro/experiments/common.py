"""Shared fixtures for the paper-reproduction experiments.

Every experiment module uses the same deployment objects the paper
does: the Google Cloud Jan-2015 catalog, the 10-VM characterization
cluster (§3) and the 25-VM / 400-core evaluation cluster (§5), and the
per-tier volume sizing of the §3 experiments (500 GB persSSD/persHDD
volumes per VM, one 375 GB ephSSD volume, a 250 GB persSSD helper for
objStore's shuffle data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..cloud.provider import CloudProvider, google_cloud_2015
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..core.cost import CostBreakdown, deployment_cost
from ..profiler.models import ModelMatrix
from ..profiler.profiler import build_model_matrix
from ..simulator.engine import HELPER_INTERMEDIATE_GB_PER_VM
from ..workloads.spec import JobSpec

__all__ = [
    "provider",
    "characterization_cluster",
    "evaluation_cluster",
    "model_matrix",
    "fig1_capacity",
    "single_config_billed_gb",
    "single_config_cost",
]


def provider() -> CloudProvider:
    """The paper's cloud (fresh instance; providers are immutable)."""
    return google_cloud_2015()


def characterization_cluster() -> ClusterSpec:
    """§3's 10 × n1-standard-16 testbed (160 cores)."""
    return ClusterSpec(n_vms=10)


def evaluation_cluster() -> ClusterSpec:
    """§5's 25 × n1-standard-16 testbed (400 cores)."""
    return ClusterSpec(n_vms=25)


_MATRIX_MEMO: Dict[tuple, ModelMatrix] = {}


def model_matrix(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
) -> ModelMatrix:
    """The profiled model matrix for a deployment (memoized).

    Keyed by (provider name, VM count): experiment modules calling in
    with equivalent deployments share one profiled matrix instead of
    re-entering the profiler per call.
    """
    prov = prov or provider()
    cluster = cluster or characterization_cluster()
    key = (prov.name, cluster.n_vms)
    matrix = _MATRIX_MEMO.get(key)
    if matrix is None:
        matrix = build_model_matrix(provider=prov, cluster_spec=cluster)
        _MATRIX_MEMO[key] = matrix
    return matrix


def fig1_capacity(tier: Tier) -> Dict[Tier, float]:
    """Per-VM volume sizing of the §3 single-tier configurations."""
    if tier is Tier.EPH_SSD:
        return {Tier.EPH_SSD: 375.0}
    if tier is Tier.OBJ_STORE:
        return {Tier.PERS_SSD: HELPER_INTERMEDIATE_GB_PER_VM}
    return {tier: 500.0}


def single_config_billed_gb(
    job: JobSpec,
    tier: Tier,
    per_vm_caps: Mapping[Tier, float],
    cluster: ClusterSpec,
    prov: CloudProvider,
) -> Dict[Tier, float]:
    """Aggregate billed capacity for one job on one §3 configuration.

    Provisioned volumes bill in full (``caps × n_vms``); ephSSD jobs
    additionally bill their persistent objStore copies, and objStore
    jobs bill the dataset itself on objStore on top of the helper
    volume.
    """
    billed: Dict[Tier, float] = {
        t: cap * cluster.n_vms for t, cap in per_vm_caps.items()
    }
    svc = prov.service(tier)
    if svc.requires_backing is not None:
        backing = svc.requires_backing
        billed[backing] = billed.get(backing, 0.0) + job.input_gb + job.output_gb
    if tier is Tier.OBJ_STORE:
        billed[Tier.OBJ_STORE] = billed.get(Tier.OBJ_STORE, 0.0) + job.footprint_gb
    return billed


def single_config_cost(
    job: JobSpec,
    tier: Tier,
    runtime_s: float,
    cluster: ClusterSpec,
    prov: CloudProvider,
    per_vm_caps: Optional[Mapping[Tier, float]] = None,
) -> CostBreakdown:
    """Eq. 5/6 cost of running one job on one §3 configuration."""
    caps = dict(per_vm_caps) if per_vm_caps is not None else fig1_capacity(tier)
    billed = single_config_billed_gb(job, tier, caps, cluster, prov)
    return deployment_cost(prov, cluster, runtime_s, billed)
