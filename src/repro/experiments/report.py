"""Full reproduction report generator.

Runs every table, figure and ablation and assembles one markdown
document — the artifact a reviewer would ask for.  Exposed on the CLI
as ``cast-plan report [--out FILE]``.

The heavy experiments accept reduced solver budgets through
``quick=True`` so the report can be smoke-tested in seconds; the
default budgets match the per-experiment defaults used everywhere else.
"""

from __future__ import annotations

import io
import time
from typing import Callable, List, Tuple

__all__ = ["generate_report"]


def _sections(quick: bool) -> List[Tuple[str, str, Callable[[], str]]]:
    """(id, title, renderer) for every artifact, paper order."""
    from . import (
        format_dynamic_ablation,
        format_fig1,
        format_fig2,
        format_fig3,
        format_fig4,
        format_fig5,
        format_fig7,
        format_fig8,
        format_fig9,
        format_heat_ablation,
        format_regression_ablation,
        format_sa_ablation,
        format_table1,
        format_table2,
        format_table4,
        run_dynamic_ablation,
        run_fig1,
        run_fig2,
        run_fig3,
        run_fig4,
        run_fig5,
        run_fig7,
        run_fig8,
        run_fig9,
        run_heat_ablation,
        run_regression_ablation,
        run_sa_ablation,
        run_table1,
        run_table2,
        run_table4,
    )

    iters = 800 if quick else 6000
    wf_iters = 500 if quick else 3000
    sa_grid = (250, 1000) if quick else (250, 1000, 3000, 6000)

    return [
        ("table1", "Table 1 — storage service characteristics",
         lambda: format_table1(run_table1())),
        ("table2", "Table 2 — application characterization",
         lambda: format_table2(run_table2())),
        ("table4", "Table 4 — Facebook workload synthesis",
         lambda: format_table4(run_table4())),
        ("fig1", "Fig. 1 — runtime & utility per tier",
         lambda: format_fig1(run_fig1())),
        ("fig2", "Fig. 2 — persSSD capacity scaling + REG",
         lambda: format_fig2(run_fig2())),
        ("fig3", "Fig. 3 — utility under data reuse",
         lambda: format_fig3(run_fig3())),
        ("fig4", "Fig. 4 — workflow tiering plans",
         lambda: format_fig4(run_fig4())),
        ("fig5", "Fig. 5 — against fine-grained tiering",
         lambda: format_fig5(run_fig5())),
        ("fig7", "Fig. 7 — main evaluation (8 configurations)",
         lambda: format_fig7(run_fig7(iterations=iters))),
        ("fig8", "Fig. 8 — prediction accuracy",
         lambda: format_fig8(run_fig8())),
        ("fig9", "Fig. 9 — workflow deadlines",
         lambda: format_fig9(run_fig9(iterations=wf_iters))),
        ("ablation-sa", "Ablation — annealing budget & cooling",
         lambda: format_sa_ablation(run_sa_ablation(iteration_grid=sa_grid))),
        ("ablation-reg", "Ablation — PCHIP vs linear regression",
         lambda: format_regression_ablation(run_regression_ablation())),
        ("ablation-heat", "Ablation — heat-based tiering straw man",
         lambda: format_heat_ablation(run_heat_ablation(iterations=iters))),
        ("ablation-dynamic", "Ablation — reactive dynamic vs static",
         lambda: format_dynamic_ablation(run_dynamic_ablation(iterations=iters))),
    ]


def generate_report(quick: bool = False) -> str:
    """Render the full reproduction report as markdown.

    Parameters
    ----------
    quick:
        Trim solver budgets so the whole report runs in well under a
        minute (shapes may wobble at reduced budgets; the canonical
        report uses the defaults).
    """
    out = io.StringIO()
    out.write("# CAST reproduction report\n\n")
    out.write(
        "Regenerated from the deterministic experiment modules "
        "(workload seed 2015, solver seed 42).\n"
    )
    if quick:
        out.write("\n> **quick mode** — reduced solver budgets; "
                  "headline shapes may wobble.\n")
    for exp_id, title, render in _sections(quick):
        start = time.perf_counter()
        body = render()
        elapsed = time.perf_counter() - start
        out.write(f"\n## {title}\n\n")
        out.write("```\n")
        out.write(body.rstrip("\n"))
        out.write("\n```\n")
        out.write(f"\n*({exp_id}: regenerated in {elapsed:.1f} s)*\n")
    return out.getvalue()
