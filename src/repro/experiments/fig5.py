"""Fig. 5 — the case against fine-grained (block-level) tiering.

A 6 GB Grep (24 map tasks, single wave) runs under block placements
that split the input between a fast and a slow tier:

* **(a)** 50/50 hybrids — ephSSD+persSSD and ephSSD+persHDD — against
  the three pure placements;
* **(b)** an ephSSD-fraction sweep over ephSSD/persHDD (0 → 100 %).

Under data-local scheduling the slow-tier blocks concentrate on a
subset of nodes whose volumes their tasks share, so the job runs at
slow-tier speed until *all* blocks are fast — runtime stays within a
plateau for fractions well past 50 % and only collapses at 100 %
(normalized to ephSSD-100 %).  This is the paper's motivation for
all-or-nothing, job-level placement (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..simulator.engine import simulate_job
from ..simulator.hdfs import BlockPlacement
from ..workloads.apps import GREP
from ..workloads.spec import JobSpec
from .common import provider

__all__ = ["Fig5Point", "Fig5Result", "run_fig5", "format_fig5"]

#: The paper's 6 GB / 24-map single-wave job.
_INPUT_GB = 6.0
_N_MAPS = 24

#: 8 nodes × 3 local blocks each: every node holds a whole number of
#: blocks, the regime where the plateau is cleanest.
_N_VMS = 8

_FRACTIONS = (0.0, 0.3, 0.5, 0.7, 0.9, 1.0)


@dataclass(frozen=True)
class Fig5Point:
    """One bar: a placement configuration's normalized runtime."""

    label: str
    fast_fraction: float
    slow_tier: Optional[Tier]
    runtime_s: float
    normalized_pct: float


@dataclass(frozen=True)
class Fig5Result:
    """Both panels."""

    hybrids_50_50: Tuple[Fig5Point, ...]
    hdd_sweep: Tuple[Fig5Point, ...]

    def sweep_point(self, fraction: float) -> Fig5Point:
        """Look up a sweep bar by ephSSD fraction."""
        for p in self.hdd_sweep:
            if abs(p.fast_fraction - fraction) < 1e-9:
                return p
        raise KeyError(fraction)


def run_fig5(
    prov: Optional[CloudProvider] = None,
) -> Fig5Result:
    """Measure all Fig. 5 placement configurations."""
    prov = prov or provider()
    cluster = ClusterSpec(n_vms=_N_VMS)
    job = JobSpec(job_id="fig5-grep", app=GREP, input_gb=_INPUT_GB, n_maps=_N_MAPS)
    caps = {Tier.EPH_SSD: 375.0, Tier.PERS_SSD: 250.0, Tier.PERS_HDD: 250.0}

    def run(placement: BlockPlacement) -> float:
        return simulate_job(
            job, Tier.EPH_SSD, cluster, prov,
            per_vm_capacity_gb=caps, block_placement=placement,
        ).processing_s

    base = run(BlockPlacement.uniform(_N_MAPS, Tier.EPH_SSD))

    def point(label: str, frac: float, slow: Optional[Tier], runtime: float) -> Fig5Point:
        return Fig5Point(
            label=label,
            fast_fraction=frac,
            slow_tier=slow,
            runtime_s=runtime,
            normalized_pct=runtime / base * 100.0,
        )

    # Panel (a): pure tiers + the two 50/50 hybrids.
    panel_a: List[Fig5Point] = [point("ephSSD 100%", 1.0, None, base)]
    for tier in (Tier.PERS_SSD, Tier.PERS_HDD):
        rt = run(BlockPlacement.uniform(_N_MAPS, tier))
        panel_a.append(point(f"{tier.value} 100%", 0.0, tier, rt))
    for tier in (Tier.PERS_SSD, Tier.PERS_HDD):
        rt = run(BlockPlacement.fractional(_N_MAPS, Tier.EPH_SSD, tier, 0.5))
        panel_a.append(point(f"ephSSD 50% / {tier.value} 50%", 0.5, tier, rt))

    # Panel (b): ephSSD-fraction sweep against persHDD.
    panel_b: List[Fig5Point] = []
    for frac in _FRACTIONS:
        rt = run(BlockPlacement.fractional(_N_MAPS, Tier.EPH_SSD, Tier.PERS_HDD, frac))
        panel_b.append(point(f"ephSSD {frac:.0%}", frac, Tier.PERS_HDD, rt))

    return Fig5Result(hybrids_50_50=tuple(panel_a), hdd_sweep=tuple(panel_b))


def format_fig5(result: Fig5Result) -> str:
    """Render both panels as normalized-runtime tables."""
    lines = ["--- Fig.5(a) 50/50 hybrid configurations"]
    for p in result.hybrids_50_50:
        lines.append(f"{p.label:28s} {p.runtime_s:8.1f}s {p.normalized_pct:7.0f}%")
    lines.append("--- Fig.5(b) ephSSD fraction sweep (vs persHDD)")
    for p in result.hdd_sweep:
        lines.append(f"{p.label:28s} {p.runtime_s:8.1f}s {p.normalized_pct:7.0f}%")
    return "\n".join(lines)
