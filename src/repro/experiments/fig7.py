"""Fig. 7 — the main evaluation: CAST / CAST++ vs baselines.

The 100-job Facebook-derived workload (Table 4, 15 % input sharing)
runs on the 400-core evaluation cluster under eight configurations:

1-4. the four single-service plans (``<tier> 100%``, exact-fit);
5.   Greedy exact-fit (Algorithm 1);
6.   Greedy over-provisioned;
7.   CAST (Algorithm 2, reuse-oblivious objective);
8.   CAST++ (Constraint 7 + reuse-aware objective).

Plans come from the solvers' *predictions*; the reported numbers come
from *deploying* each plan on the simulated cluster
(:func:`~repro.experiments.measure.measure_plan`).  Expected shape
(§5.1.2–5.1.3): CAST beats every non-tiered configuration by tens of
percent (paper: 33.7–178 %), greedy exact-fit lands near objStore-100 %,
greedy over-provisioned near-but-below persSSD-100 %, and CAST++ adds
roughly another 10-15 % over CAST via reuse placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..core.annealing import AnnealingSchedule
from ..core.castpp import CastPlusPlus
from ..core.greedy import greedy_exact_fit, greedy_over_provisioned
from ..core.plan import TieringPlan
from ..core.solver import CastSolver
from ..profiler.models import ModelMatrix
from ..workloads.spec import WorkloadSpec
from ..workloads.swim import synthesize_facebook_workload
from .common import evaluation_cluster, model_matrix, provider
from .measure import PlanMeasurement, measure_plan
from .runner import ExperimentRunner

__all__ = ["Fig7Config", "Fig7Result", "run_fig7", "format_fig7", "FIG7_CONFIG_ORDER"]

FIG7_CONFIG_ORDER: Tuple[str, ...] = (
    "ephSSD 100%",
    "persSSD 100%",
    "persHDD 100%",
    "objStore 100%",
    "greedy exact-fit",
    "greedy over-prov",
    "CAST",
    "CAST++",
)


@dataclass(frozen=True)
class Fig7Config:
    """One bar group: a configuration's plan and measured outcome."""

    name: str
    plan: TieringPlan
    measured: PlanMeasurement
    utility_vs_cast: float

    def capacity_share(self) -> Dict[Tier, float]:
        """Fig. 7(c): fraction of billed capacity per service."""
        total = sum(self.measured.capacity_gb.values())
        if total <= 0:
            return {}
        return {t: gb / total for t, gb in self.measured.capacity_gb.items()}


@dataclass(frozen=True)
class Fig7Result:
    """All eight configurations."""

    configs: Tuple[Fig7Config, ...]

    def config(self, name: str) -> Fig7Config:
        """Look up one configuration by name."""
        for c in self.configs:
            if c.name == name:
                return c
        raise KeyError(name)

    def utility_improvement_pct(self, name: str, over: str) -> float:
        """How much better ``name`` is than ``over`` (percent)."""
        u1 = self.config(name).measured.utility
        u2 = self.config(over).measured.utility
        return (u1 / u2 - 1.0) * 100.0


def run_fig7(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
    workload: Optional[WorkloadSpec] = None,
    matrix: Optional[ModelMatrix] = None,
    iterations: int = 6000,
    seed: int = 42,
    workers: Optional[int] = None,
    fast_sim: bool = False,
) -> Fig7Result:
    """Solve and measure all eight configurations.

    ``workers`` > 1 fans the measurement simulations out over an
    :class:`~repro.experiments.runner.ExperimentRunner` in whole
    fingerprint-deduped chunks; the reported numbers are identical to
    the serial run.  ``fast_sim`` additionally opts the runner into the
    vectorized wave model (results then agree with the engine within
    :data:`~repro.simulator.vectorized.ANALYTIC_RTOL` instead of
    bit-exactly).
    """
    prov = prov or provider()
    cluster = cluster or evaluation_cluster()
    workload = workload or synthesize_facebook_workload()
    matrix = matrix or model_matrix(prov, cluster)
    schedule = AnnealingSchedule(iter_max=iterations)

    plans: Dict[str, TieringPlan] = {}
    for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE):
        plans[f"{tier.value} 100%"] = TieringPlan.uniform(workload, tier)
    plans["greedy exact-fit"] = greedy_exact_fit(workload, cluster, matrix, prov)
    plans["greedy over-prov"] = greedy_over_provisioned(workload, cluster, matrix, prov)

    cast = CastSolver(cluster_spec=cluster, matrix=matrix, provider=prov,
                      schedule=schedule, seed=seed)
    plans["CAST"] = cast.solve(workload).best_state
    castpp = CastPlusPlus(cluster_spec=cluster, matrix=matrix, provider=prov,
                          schedule=schedule, seed=seed)
    plans["CAST++"] = castpp.solve(workload).best_state

    with ExperimentRunner(workers, fast_path=fast_sim) as runner:
        measured = {
            name: measure_plan(
                workload, plan, cluster, prov,
                reuse_engineered=(name == "CAST++"),
                runner=runner if (runner.parallel or fast_sim) else None,
            )
            for name, plan in plans.items()
        }
    cast_u = measured["CAST"].utility
    configs = tuple(
        Fig7Config(
            name=name,
            plan=plans[name],
            measured=measured[name],
            utility_vs_cast=measured[name].utility / cast_u,
        )
        for name in FIG7_CONFIG_ORDER
    )
    return Fig7Result(configs=configs)


def format_fig7(result: Fig7Result) -> str:
    """Render panels (a) utility, (b) cost+runtime, (c) capacity mix."""
    lines = [
        f"{'config':18s} {'U/U_CAST':>9s} {'cost($)':>9s} {'runtime(min)':>13s}  capacity mix"
    ]
    for c in result.configs:
        mix = " ".join(
            f"{t.value}:{share:.0%}"
            for t, share in sorted(c.capacity_share().items(), key=lambda kv: kv[0].value)
            if share >= 0.005
        )
        lines.append(
            f"{c.name:18s} {c.utility_vs_cast:9.2f} "
            f"{c.measured.cost.total_usd:9.2f} {c.measured.makespan_min:13.1f}  {mix}"
        )
    return "\n".join(lines)
