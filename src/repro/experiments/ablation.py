"""Ablation studies for CAST's design choices (DESIGN.md §5).

Two ablations beyond the paper's own (Fig. 5 ablates all-or-nothing
placement; Fig. 7 ablates the solver; Fig. 9 ablates workflow
awareness):

* **SA hyperparameters** — achieved utility vs iteration budget and
  cooling rate, quantifying how much annealing the solver actually
  needs before the plan quality saturates;
* **regression model** — PCHIP cubic Hermite spline (the paper's
  choice) vs piecewise-linear interpolation, scored on held-out
  capacity points of the Fig. 2 runtime curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..core.annealing import AnnealingSchedule
from ..core.regression import fit_runtime_model
from ..core.solver import CastSolver
from ..profiler.models import ModelMatrix
from ..simulator.engine import simulate_job
from ..workloads.apps import GREP, SORT
from ..workloads.spec import JobSpec, WorkloadSpec
from ..workloads.swim import synthesize_facebook_workload
from .common import characterization_cluster, evaluation_cluster, model_matrix, provider

__all__ = [
    "SAAblationPoint",
    "run_sa_ablation",
    "format_sa_ablation",
    "RegressionAblation",
    "run_regression_ablation",
    "format_regression_ablation",
    "HeatAblationRow",
    "run_heat_ablation",
    "format_heat_ablation",
    "DynamicAblationRow",
    "run_dynamic_ablation",
    "format_dynamic_ablation",
]


# ---------------------------------------------------------------------------
# SA hyperparameter ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SAAblationPoint:
    """Solver quality at one (iterations, cooling) setting."""

    iterations: int
    cooling_rate: float
    best_utility: float
    utility_vs_reference: float


def run_sa_ablation(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
    workload: Optional[WorkloadSpec] = None,
    matrix: Optional[ModelMatrix] = None,
    iteration_grid: Sequence[int] = (250, 1000, 3000, 6000),
    cooling_grid: Sequence[float] = (0.9, 0.99, 0.998),
    seed: int = 42,
) -> List[SAAblationPoint]:
    """Sweep the annealer's budget and cooling rate.

    The reference utility is the largest achieved across the sweep;
    points report their fraction of it.
    """
    prov = prov or provider()
    cluster = cluster or evaluation_cluster()
    workload = workload or synthesize_facebook_workload()
    matrix = matrix or model_matrix(prov, cluster)

    raw: List[Tuple[int, float, float]] = []
    for iters in iteration_grid:
        for cooling in cooling_grid:
            solver = CastSolver(
                cluster_spec=cluster,
                matrix=matrix,
                provider=prov,
                schedule=AnnealingSchedule(iter_max=iters, cooling_rate=cooling),
                seed=seed,
            )
            result = solver.solve(workload)
            raw.append((iters, cooling, result.best_utility))
    reference = max(u for _, _, u in raw)
    return [
        SAAblationPoint(
            iterations=i,
            cooling_rate=c,
            best_utility=u,
            utility_vs_reference=u / reference,
        )
        for i, c, u in raw
    ]


def format_sa_ablation(points: List[SAAblationPoint]) -> str:
    """Render the sweep as a table."""
    lines = [f"{'iters':>6s} {'cooling':>8s} {'utility':>12s} {'vs best':>8s}"]
    for p in points:
        lines.append(
            f"{p.iterations:6d} {p.cooling_rate:8.3f} "
            f"{p.best_utility:12.3e} {p.utility_vs_reference:7.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Regression model ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegressionAblation:
    """Held-out interpolation error of both regression models."""

    app: str
    pchip_mean_abs_err_pct: float
    linear_mean_abs_err_pct: float


def run_regression_ablation(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
) -> List[RegressionAblation]:
    """Fit PCHIP and linear models on sparse anchors, score held-out.

    Uses the Fig. 2 runtime-vs-capacity curves (Sort 100 GB, Grep
    300 GB on persSSD): anchors at every other capacity, errors at the
    held-out capacities.
    """
    prov = prov or provider()
    cluster = cluster or characterization_cluster()
    capacities = np.arange(100.0, 1001.0, 100.0)
    out: List[RegressionAblation] = []
    for app, input_gb in ((SORT, 100.0), (GREP, 300.0)):
        job = JobSpec(job_id=f"abl-{app.name}", app=app, input_gb=input_gb)
        runtimes = np.asarray(
            [
                simulate_job(
                    job, Tier.PERS_SSD, cluster, prov,
                    per_vm_capacity_gb={Tier.PERS_SSD: float(c)},
                ).total_s
                for c in capacities
            ]
        )
        anchor = np.arange(0, capacities.size, 2)
        held = np.setdiff1d(np.arange(capacities.size), anchor)
        errors = {}
        for kind in ("pchip", "linear"):
            model = fit_runtime_model(capacities[anchor], runtimes[anchor], kind=kind)
            pred = model.evaluate(capacities[held])
            errors[kind] = float(
                np.mean(np.abs(pred - runtimes[held]) / runtimes[held]) * 100.0
            )
        out.append(
            RegressionAblation(
                app=app.name,
                pchip_mean_abs_err_pct=errors["pchip"],
                linear_mean_abs_err_pct=errors["linear"],
            )
        )
    return out


def format_regression_ablation(rows: List[RegressionAblation]) -> str:
    """Render the PCHIP vs linear comparison."""
    lines = [f"{'app':8s} {'PCHIP err':>10s} {'linear err':>11s}"]
    for r in rows:
        lines.append(
            f"{r.app:8s} {r.pchip_mean_abs_err_pct:9.2f}% "
            f"{r.linear_mean_abs_err_pct:10.2f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Heat-based tiering straw man (paper §3.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeatAblationRow:
    """Measured outcome of one placement policy on the Fig. 7 workload."""

    policy: str
    utility: float
    cost_usd: float
    makespan_min: float
    utility_vs_heat: float


def run_heat_ablation(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
    workload: Optional[WorkloadSpec] = None,
    matrix: Optional[ModelMatrix] = None,
    iterations: int = 6000,
    seed: int = 42,
) -> List[HeatAblationRow]:
    """Quantify §3.2's argument against hot/cold heat-based tiering.

    Places the Fig. 7 workload with (a) the heat-quantile ladder —
    given *perfect* knowledge of future re-accesses — and (b) CAST's
    solver, then deploys both on the simulated cluster.  The paper
    argues the heat recipe mis-prices ephSSD's persistence gap and
    ignores application behaviour; the measured utility gap is that
    argument in numbers.
    """
    from ..core.heat import heat_based_plan
    from ..core.solver import CastSolver
    from ..core.annealing import AnnealingSchedule
    from .measure import measure_plan

    prov = prov or provider()
    cluster = cluster or evaluation_cluster()
    workload = workload or synthesize_facebook_workload()
    matrix = matrix or model_matrix(prov, cluster)

    heat_plan = heat_based_plan(workload, prov)
    solver = CastSolver(
        cluster_spec=cluster, matrix=matrix, provider=prov,
        schedule=AnnealingSchedule(iter_max=iterations), seed=seed,
    )
    cast_plan = solver.solve(workload).best_state

    measured = {
        "heat-based": measure_plan(workload, heat_plan, cluster, prov),
        "CAST": measure_plan(workload, cast_plan, cluster, prov),
    }
    base = measured["heat-based"].utility
    return [
        HeatAblationRow(
            policy=name,
            utility=m.utility,
            cost_usd=m.cost.total_usd,
            makespan_min=m.makespan_min,
            utility_vs_heat=m.utility / base,
        )
        for name, m in measured.items()
    ]


def format_heat_ablation(rows: List[HeatAblationRow]) -> str:
    """Render the heat-vs-CAST comparison."""
    lines = [f"{'policy':12s} {'U/U_heat':>9s} {'cost($)':>9s} {'runtime(min)':>13s}"]
    for r in rows:
        lines.append(
            f"{r.policy:12s} {r.utility_vs_heat:9.2f} {r.cost_usd:9.2f} "
            f"{r.makespan_min:13.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Dynamic (reactive) tiering vs static CAST (paper §6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynamicAblationRow:
    """One policy's measured outcome on the reuse-heavy workload."""

    policy: str
    utility: float
    cost_usd: float
    makespan_min: float
    promotions: int


def run_dynamic_ablation(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
    workload: Optional[WorkloadSpec] = None,
    matrix: Optional[ModelMatrix] = None,
    iterations: int = 6000,
    seed: int = 42,
) -> List[DynamicAblationRow]:
    """Measure §6's static-vs-dynamic argument.

    Pits a recency-driven reactive tierer (promote on re-access within
    an hour, demote when cold) against CAST++'s static application-
    aware plan on the Fig. 7 workload.  The reactive policy sees only
    access history; CAST++ sees application profiles, capacity scaling
    and reuse structure — the information gap the paper says makes
    static coarse-grained tiering the right call for batch analytics.
    """
    from ..core.annealing import AnnealingSchedule
    from ..core.castpp import CastPlusPlus
    from ..core.dynamic import ReactivePolicy, run_dynamic
    from .measure import measure_plan

    prov = prov or provider()
    cluster = cluster or evaluation_cluster()
    workload = workload or synthesize_facebook_workload()
    matrix = matrix or model_matrix(prov, cluster)

    dynamic = run_dynamic(workload, cluster, prov, ReactivePolicy())

    solver = CastPlusPlus(
        cluster_spec=cluster, matrix=matrix, provider=prov,
        schedule=AnnealingSchedule(iter_max=iterations), seed=seed,
    )
    plan = solver.solve(workload).best_state
    static = measure_plan(workload, plan, cluster, prov, reuse_engineered=True)

    return [
        DynamicAblationRow(
            policy="reactive-dynamic",
            utility=dynamic.utility,
            cost_usd=dynamic.cost.total_usd,
            makespan_min=dynamic.makespan_min,
            promotions=dynamic.promotions,
        ),
        DynamicAblationRow(
            policy="CAST++ (static)",
            utility=static.utility,
            cost_usd=static.cost.total_usd,
            makespan_min=static.makespan_min,
            promotions=0,
        ),
    ]


def format_dynamic_ablation(rows: List[DynamicAblationRow]) -> str:
    """Render the static-vs-dynamic comparison."""
    lines = [
        f"{'policy':18s} {'utility':>12s} {'cost($)':>9s} "
        f"{'runtime(min)':>13s} {'promotions':>11s}"
    ]
    for r in rows:
        lines.append(
            f"{r.policy:18s} {r.utility:12.3e} {r.cost_usd:9.2f} "
            f"{r.makespan_min:13.1f} {r.promotions:11d}"
        )
    return "\n".join(lines)
