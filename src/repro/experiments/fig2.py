"""Fig. 2 — persSSD capacity scaling, observed vs regression.

Sort (100 GB) and Grep (300 GB) run on the 10-VM cluster with per-VM
persSSD volumes from 100 GB to 1 000 GB.  The paper shows (a) runtime
halving between 100 and 200 GB (51.6 % / 60.2 % reductions), (b)
diminishing returns beyond, and (c) the cubic-Hermite-spline regression
tracking the observations — the REG model the solver relies on.

The regression here is fit on a *sparse* anchor subset (every other
observation) and scored on the held-out points, so the reported fit
error is an honest interpolation error, not a trivial refit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..core.regression import fit_runtime_model
from ..simulator.engine import simulate_job
from ..workloads.apps import GREP, SORT
from ..workloads.spec import JobSpec
from .common import characterization_cluster, provider

__all__ = ["Fig2Series", "run_fig2", "format_fig2", "FIG2_CAPACITIES_GB"]

#: Per-VM persSSD capacities swept in Fig. 2.
FIG2_CAPACITIES_GB: Tuple[float, ...] = (
    100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0
)


@dataclass(frozen=True)
class Fig2Series:
    """One application's observed + regressed runtime curve."""

    app: str
    input_gb: float
    capacities_gb: Tuple[float, ...]
    observed_s: Tuple[float, ...]
    regressed_s: Tuple[float, ...]

    @property
    def drop_100_to_200_pct(self) -> float:
        """Runtime reduction from the 100→200 GB doubling (paper: >50 %)."""
        i100 = self.capacities_gb.index(100.0)
        i200 = self.capacities_gb.index(200.0)
        return (self.observed_s[i100] - self.observed_s[i200]) / self.observed_s[i100] * 100.0

    @property
    def regression_mean_abs_err_pct(self) -> float:
        """Mean |regressed - observed| / observed on held-out points."""
        obs = np.asarray(self.observed_s)
        reg = np.asarray(self.regressed_s)
        return float(np.mean(np.abs(reg - obs) / obs) * 100.0)


def run_fig2(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
    capacities_gb: Sequence[float] = FIG2_CAPACITIES_GB,
) -> List[Fig2Series]:
    """Sweep per-VM persSSD capacity for Sort-100G and Grep-300G."""
    prov = prov or provider()
    cluster = cluster or characterization_cluster()
    out: List[Fig2Series] = []
    for app, input_gb in ((SORT, 100.0), (GREP, 300.0)):
        job = JobSpec(job_id=f"fig2-{app.name}", app=app, input_gb=input_gb)
        observed = [
            simulate_job(
                job, Tier.PERS_SSD, cluster, prov,
                per_vm_capacity_gb={Tier.PERS_SSD: cap},
            ).total_s
            for cap in capacities_gb
        ]
        # Fit on alternating anchors, score everywhere.
        anchor_idx = list(range(0, len(capacities_gb), 2))
        if anchor_idx[-1] != len(capacities_gb) - 1:
            anchor_idx.append(len(capacities_gb) - 1)
        model = fit_runtime_model(
            [capacities_gb[i] for i in anchor_idx],
            [observed[i] for i in anchor_idx],
            kind="pchip",
        )
        regressed = [model(c) for c in capacities_gb]
        out.append(
            Fig2Series(
                app=app.name,
                input_gb=input_gb,
                capacities_gb=tuple(capacities_gb),
                observed_s=tuple(observed),
                regressed_s=tuple(regressed),
            )
        )
    return out


def format_fig2(series: List[Fig2Series]) -> str:
    """Render the two curves plus headline statistics."""
    lines: List[str] = []
    for s in series:
        lines.append(f"--- Fig.2 {s.app} ({s.input_gb:.0f} GB input)")
        lines.append(f"{'cap/VM(GB)':>11s} {'obs(s)':>9s} {'reg(s)':>9s}")
        for cap, obs, reg in zip(s.capacities_gb, s.observed_s, s.regressed_s):
            lines.append(f"{cap:11.0f} {obs:9.1f} {reg:9.1f}")
        lines.append(
            f"100→200 GB runtime drop: {s.drop_100_to_200_pct:.1f}% "
            f"(paper: Sort 51.6%, Grep 60.2%); "
            f"regression mean |err|: {s.regression_mean_abs_err_pct:.1f}%"
        )
    return "\n".join(lines)
