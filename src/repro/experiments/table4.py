"""Table 4 — Facebook job-size distribution and the synthesized workload.

Verifies that the SWIM-style generator reproduces the paper's
quantization exactly: 100 jobs across 7 bins with the specified
map-task counts, the large-job bins carrying >99 % of the bytes, and
~15 % of jobs sharing input data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..workloads.spec import WorkloadSpec
from ..workloads.swim import FACEBOOK_BINS, facebook_bin_table, synthesize_facebook_workload

__all__ = ["Table4Check", "run_table4", "format_table4"]


@dataclass(frozen=True)
class Table4Check:
    """Generator-vs-Table-4 comparison."""

    workload: WorkloadSpec
    bin_rows: Tuple[Dict[str, object], ...]
    jobs_per_bin: Tuple[int, ...]
    expected_jobs_per_bin: Tuple[int, ...]
    data_share_large_bins_pct: float
    sharing_jobs_pct: float

    @property
    def histogram_matches(self) -> bool:
        """Whether the generated map-count histogram is exactly Table 4."""
        return self.jobs_per_bin == self.expected_jobs_per_bin


def run_table4(seed: int = 2015) -> Table4Check:
    """Generate the canonical workload and audit it against Table 4."""
    workload = synthesize_facebook_workload(rng=np.random.default_rng(seed))
    counts: Dict[int, int] = {}
    for job in workload.jobs:
        counts[job.map_tasks] = counts.get(job.map_tasks, 0) + 1
    jobs_per_bin = tuple(counts.get(b.maps_in_workload, 0) for b in FACEBOOK_BINS)
    expected = tuple(b.jobs_in_workload for b in FACEBOOK_BINS)

    total_gb = sum(j.input_gb for j in workload.jobs)
    large_gb = sum(j.input_gb for j in workload.jobs if j.map_tasks >= 500)
    sharing = sum(len(rs.job_ids) for rs in workload.reuse_sets)

    return Table4Check(
        workload=workload,
        bin_rows=tuple(facebook_bin_table()),
        jobs_per_bin=jobs_per_bin,
        expected_jobs_per_bin=expected,
        data_share_large_bins_pct=large_gb / total_gb * 100.0,
        sharing_jobs_pct=sharing / workload.n_jobs * 100.0,
    )


def format_table4(check: Table4Check) -> str:
    """Render the bin table plus audit lines."""
    lines = [
        f"{'bin':>4s} {'FB maps':>12s} {'FB %jobs':>9s} {'FB %data':>9s} "
        f"{'maps':>6s} {'jobs(exp)':>10s} {'jobs(gen)':>10s}"
    ]
    for row, got in zip(check.bin_rows, check.jobs_per_bin):
        lo, hi = row["fb_maps_range"]  # type: ignore[misc]
        rng = f"{lo}" if lo == hi else f"{lo}-{hi}"
        jobs_pct = f"{row['fb_jobs_pct']:.0f}%" if row["fb_jobs_pct"] else ""
        data_pct = f"{row['fb_data_pct']:.1f}%" if row["fb_data_pct"] else ""
        lines.append(
            f"{row['bin']:4d} {rng:>12s} {jobs_pct:>9s} {data_pct:>9s} "
            f"{row['maps_in_workload']:6d} {row['jobs_in_workload']:10d} {got:10d}"
        )
    lines.append(
        f"large-bin (5-7) data share: {check.data_share_large_bins_pct:.1f}% "
        f"(paper: >99%); sharing jobs: {check.sharing_jobs_pct:.0f}% (paper: 15%)"
    )
    return "\n".join(lines)
