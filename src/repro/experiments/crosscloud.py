"""Cross-cloud ranking: which catalog wins per workload mix?

The figure the paper could not produce: CAST's mechanism is
provider-agnostic (§1, §3.1.2), but the evaluation only ever ran on
the Google catalog.  With three catalogs registered (GCE Table 1,
``aws_2015``, ``azure_2015``) and the sweep engine making the grid
cheap, we can answer the tenant's real question — *given my
application mix, which cloud maximizes tenant utility?*

Four mixes spanning the Table 2 behavior space are synthesized with
identical job-size draws (only the application rotation differs), and
the (catalog × mix × replication) grid is solved by one
:class:`~repro.sweep.SweepEngine` run: replications are CRN-paired
across catalogs, so each mix's ranking compares catalogs on identical
seed draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from ..workloads.apps import GREP, JOIN, KMEANS, PAGERANK, SORT
from ..workloads.swim import synthesize_small_workload

if TYPE_CHECKING:  # pragma: no cover - sweep imports this package's runner
    from ..sweep import SweepResult

__all__ = [
    "CrossCloudRow",
    "crosscloud_workloads",
    "run_crosscloud",
    "format_crosscloud",
]

#: Application rotations spanning Table 2's behavior space.
MIXES = {
    "balanced": (SORT, JOIN, GREP, KMEANS),
    "shuffle-heavy": (SORT, JOIN, SORT, JOIN),
    "map-io-heavy": (GREP, GREP, SORT, GREP),
    "cpu-heavy": (KMEANS, PAGERANK, KMEANS, PAGERANK),
}


@dataclass(frozen=True)
class CrossCloudRow:
    """One (mix, catalog) cell of the ranking figure."""

    mix: str
    provider: str
    rank: int
    mean_utility: float
    relative: float
    mean_cost_usd: float
    mean_makespan_min: float


def crosscloud_workloads(
    n_jobs: int = 12, total_dataset_gb: float = 1500.0, seed: int = 2015
):
    """One workload per mix, identical size draws across mixes."""
    return [
        synthesize_small_workload(
            n_jobs=n_jobs,
            total_dataset_gb=total_dataset_gb,
            rng=np.random.default_rng(seed),
            apps=apps,
            name=f"mix-{name}",
        )
        for name, apps in MIXES.items()
    ]


def run_crosscloud(
    providers: Sequence[str] = ("google", "aws", "azure"),
    n_jobs: int = 12,
    n_vms: int = 15,
    iterations: int = 1500,
    replications: int = 2,
    seed: int = 42,
    workers: Optional[int] = None,
) -> List[CrossCloudRow]:
    """Solve the cross-cloud grid and rank catalogs per mix.

    One sweep over (catalogs × mixes × replications); replication
    knobs only re-seed the solver (CRN-paired across catalogs), so
    the per-mix ranking averages out annealer noise.
    """
    # Deferred: repro.sweep imports this package's ExperimentRunner,
    # so a module-level import here would be circular.
    from ..sweep import SweepConfig, SweepEngine

    engine = SweepEngine(
        providers,
        crosscloud_workloads(n_jobs=n_jobs),
        knobs=[{"rep": r} for r in range(max(1, replications))],
        config=SweepConfig(n_vms=n_vms, iterations=iterations, seed=seed),
        workers=workers,
    )
    return rows_from_sweep(engine.run())


def rows_from_sweep(sweep: "SweepResult") -> List[CrossCloudRow]:
    """Flatten a sweep's per-workload ranking into figure rows."""
    rows: List[CrossCloudRow] = []
    for block in sweep.ranking():
        mix = block["workload"]
        mix = mix[4:] if mix.startswith("mix-") else mix
        for rank, e in enumerate(block["ranking"], start=1):
            rows.append(
                CrossCloudRow(
                    mix=mix,
                    provider=e["provider"],
                    rank=rank,
                    mean_utility=e["mean_utility"],
                    relative=e["relative"],
                    mean_cost_usd=e["mean_cost_usd"],
                    mean_makespan_min=e["mean_makespan_min"],
                )
            )
    return rows


def format_crosscloud(rows: List[CrossCloudRow]) -> str:
    """Render the ranking table, winners first within each mix."""
    lines = [
        f"{'mix':15s} {'rank':>4s} {'catalog':>8s} {'utility':>12s} "
        f"{'vs best':>8s} {'cost $':>9s} {'makespan':>9s}"
    ]
    last_mix = None
    for r in rows:
        mix = r.mix if r.mix != last_mix else ""
        last_mix = r.mix
        lines.append(
            f"{mix:15s} {r.rank:4d} {r.provider:>8s} {r.mean_utility:12.6f} "
            f"{r.relative * 100:7.1f}% {r.mean_cost_usd:9.2f} "
            f"{r.mean_makespan_min:7.1f}m"
        )
    return "\n".join(lines)


def crosscloud_to_dict(rows: List[CrossCloudRow]) -> List[Dict[str, Any]]:
    """JSON-friendly rows for reports and the CLI ``--json`` path."""
    return [
        {
            "mix": r.mix,
            "provider": r.provider,
            "rank": r.rank,
            "mean_utility": r.mean_utility,
            "relative": r.relative,
            "mean_cost_usd": r.mean_cost_usd,
            "mean_makespan_min": r.mean_makespan_min,
        }
        for r in rows
    ]
