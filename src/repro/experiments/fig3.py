"""Fig. 3 — tenant utility under data-reuse patterns.

Each application's dataset is re-accessed 7 times, either over one hour
(``reuse-lifetime (1-hr)``: every ~8 minutes) or over one week
(``reuse-lifetime (1-week)``: daily), and compared with the no-reuse
single run.  The dataset lives on its assigned tier for the whole
lifetime: warm re-accesses skip the ephSSD input download, but the tier
(plus ephSSD's objStore backing copy) bills until the data turns cold —
for a week-long lifetime that standing bill is what makes ephSSD "far
outweigh the benefits of avoiding input downloads" (§3.1.3).

Utility is the Eq. 2 form over the aggregate campaign: reciprocal of
the *mean per-access runtime* divided by the total dollars (VM time for
the accesses + provisioned storage while running + holding between
accesses), normalized to ephSSD per panel.

Expected shape (paper §3.1.3): 1-hr reuse pushes Join and Grep onto
ephSSD; 1-week reuse makes objStore the choice for Sort and demotes
persSSD; KMeans stays on persHDD regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..core.cost import holding_cost
from ..core.utility import tenant_utility
from ..simulator.engine import simulate_job
from ..workloads.apps import GREP, JOIN, KMEANS, SORT
from ..workloads.spec import JobSpec, ReuseLifetime
from .common import characterization_cluster, fig1_capacity, provider, single_config_billed_gb

__all__ = ["Fig3Cell", "Fig3Result", "run_fig3", "format_fig3"]

_N_ACCESSES = 7
_PATTERNS = (ReuseLifetime.NONE, ReuseLifetime.SHORT, ReuseLifetime.LONG)


@dataclass(frozen=True)
class Fig3Cell:
    """One bar: (app, tier, reuse pattern)."""

    app: str
    tier: Tier
    pattern: ReuseLifetime
    strategy: str
    mean_access_s: float
    total_cost_usd: float
    utility: float
    utility_vs_ephssd: float


@dataclass(frozen=True)
class Fig3Result:
    """All 4 panels × 4 tiers × 3 patterns."""

    cells: Tuple[Fig3Cell, ...]

    def cell(self, app: str, tier: Tier, pattern: ReuseLifetime) -> Fig3Cell:
        """Look up one bar."""
        for c in self.cells:
            if c.app == app and c.tier is tier and c.pattern is pattern:
                return c
        raise KeyError((app, tier, pattern))

    def best_tier(self, app: str, pattern: ReuseLifetime) -> Tier:
        """Utility winner for an (app, pattern) pair."""
        pool = [c for c in self.cells if c.app == app and c.pattern is pattern]
        return max(pool, key=lambda c: c.utility).tier


def _campaign(
    job: JobSpec,
    tier: Tier,
    pattern: ReuseLifetime,
    prov: CloudProvider,
    cluster: ClusterSpec,
) -> Fig3Cell:
    caps = fig1_capacity(tier)
    first = simulate_job(job, tier, cluster, prov, per_vm_capacity_gb=caps)
    n = 1 if pattern is ReuseLifetime.NONE else _N_ACCESSES

    # Warm re-access skips the ephSSD input download (data staged).
    warm_s = first.total_s - first.download_s
    cold_s = first.total_s

    billed = single_config_billed_gb(job, tier, caps, cluster, prov)

    def campaign_cost(runtime_total_s: float) -> float:
        """VM dollars for the runs + storage dollars for the lifetime.

        Eq. 6 bills provisioned capacity per begun hour.  Re-accesses
        within one hour (1-hr lifetime) share a single billed hour;
        daily accesses (1-week) each open their own storage hour, and
        between accesses the dataset is *held*: persistent tiers keep
        a consolidated dataset-sized volume, but ephSSD volumes cannot
        shrink — the full provisioned stack (plus the objStore backing
        copy) bills through the idle time, which is exactly why a week
        of ephSSD "far outweighs the benefits of avoiding input
        downloads" (§3.1.3).
        """
        vm = prov.prices.vm_cost(cluster.n_vms, runtime_total_s)
        if pattern is ReuseLifetime.NONE:
            return vm + prov.prices.storage_cost(billed, runtime_total_s)
        if pattern is ReuseLifetime.SHORT:
            window = max(runtime_total_s, pattern.window_seconds)
            return vm + prov.prices.storage_cost(billed, window)
        # LONG: one busy storage-hour per access + idle holding.
        busy = sum(
            prov.prices.storage_cost(billed, 3600.0) for _ in range(n)
        )
        idle_s = max(0.0, pattern.window_seconds - n * 3600.0)
        if tier is Tier.EPH_SSD:
            held_eph = caps[Tier.EPH_SSD] * cluster.n_vms
            idle = prov.prices.storage_holding_cost(tier, held_eph, idle_s)
            idle += prov.prices.storage_holding_cost(
                Tier.OBJ_STORE, job.input_gb, idle_s
            )
        else:
            idle = prov.prices.storage_holding_cost(tier, job.input_gb, idle_s)
        return vm + busy + idle

    # The dataset lives on its assigned tier for the whole reuse
    # lifetime: warm re-accesses skip staging, the tier bills until
    # the data turns cold.
    runtime_total = cold_s + (n - 1) * warm_s
    cost_total = campaign_cost(runtime_total)
    strategy = "hold"
    mean_access = runtime_total / n
    return Fig3Cell(
        app=job.app.name,
        tier=tier,
        pattern=pattern,
        strategy=strategy,
        mean_access_s=mean_access,
        total_cost_usd=cost_total,
        utility=tenant_utility(mean_access, cost_total),
        utility_vs_ephssd=0.0,
    )


def run_fig3(
    prov: Optional[CloudProvider] = None,
    cluster: Optional[ClusterSpec] = None,
) -> Fig3Result:
    """Evaluate all (app, tier, pattern) campaigns."""
    prov = prov or provider()
    cluster = cluster or characterization_cluster()
    cells: List[Fig3Cell] = []
    for app, input_gb in ((SORT, 100.0), (JOIN, 100.0), (GREP, 300.0), (KMEANS, 100.0)):
        job = JobSpec(job_id=f"fig3-{app.name}", app=app, input_gb=input_gb)
        for pattern in _PATTERNS:
            per_tier: Dict[Tier, Fig3Cell] = {}
            for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE):
                per_tier[tier] = _campaign(job, tier, pattern, prov, cluster)
            base = per_tier[Tier.EPH_SSD].utility
            for cell in per_tier.values():
                cells.append(
                    Fig3Cell(**{**cell.__dict__, "utility_vs_ephssd": cell.utility / base})
                )
    return Fig3Result(cells=tuple(cells))


def format_fig3(result: Fig3Result) -> str:
    """Render the 4 panels."""
    lines: List[str] = []
    for app in ("sort", "join", "grep", "kmeans"):
        lines.append(f"--- Fig.3 ({app}) — normalized utility (vs ephSSD, per pattern)")
        lines.append(f"{'tier':10s} {'no-reuse':>9s} {'1-hr':>9s} {'1-week':>9s}")
        for tier in (Tier.EPH_SSD, Tier.PERS_SSD, Tier.PERS_HDD, Tier.OBJ_STORE):
            vals = [
                result.cell(app, tier, p).utility_vs_ephssd for p in _PATTERNS
            ]
            lines.append(
                f"{tier.value:10s} {vals[0]:9.2f} {vals[1]:9.2f} {vals[2]:9.2f}"
            )
    return "\n".join(lines)
