"""One module per paper table / figure, plus ablations.

Each module exposes ``run_<id>()`` returning structured results and
``format_<id>()`` rendering them as the paper's table.  The benchmark
harness (``benchmarks/``) and the CLI are thin wrappers around these.
"""

from .ablation import (
    DynamicAblationRow,
    HeatAblationRow,
    RegressionAblation,
    SAAblationPoint,
    format_dynamic_ablation,
    format_heat_ablation,
    run_dynamic_ablation,
    run_heat_ablation,
    format_regression_ablation,
    format_sa_ablation,
    run_regression_ablation,
    run_sa_ablation,
)
from .common import (
    characterization_cluster,
    evaluation_cluster,
    fig1_capacity,
    model_matrix,
    provider,
    single_config_cost,
)
from .crosscloud import (
    CrossCloudRow,
    crosscloud_workloads,
    format_crosscloud,
    run_crosscloud,
)
from .fig1 import Fig1Cell, Fig1Result, format_fig1, run_fig1
from .fig2 import Fig2Series, format_fig2, run_fig2
from .fig3 import Fig3Cell, Fig3Result, format_fig3, run_fig3
from .fig4 import Fig4Plan, format_fig4, run_fig4
from .fig5 import Fig5Point, Fig5Result, format_fig5, run_fig5
from .fig7 import Fig7Config, Fig7Result, format_fig7, run_fig7
from .fig8 import Fig8Point, Fig8Result, format_fig8, run_fig8
from .fig9 import Fig9Config, Fig9Result, format_fig9, run_fig9
from .measure import PlanMeasurement, measure_plan
from .report import generate_report
from .runner import ExperimentRunner, SimReport, sim_report, spawn_seeds
from .sensitivity import (
    SensitivityRow,
    format_price_sensitivity,
    reprice,
    run_price_sensitivity,
)
from .table1 import Table1Row, format_table1, run_table1
from .table2 import Table2Row, format_table2, run_table2
from .table4 import Table4Check, format_table4, run_table4

__all__ = [
    "provider",
    "characterization_cluster",
    "evaluation_cluster",
    "model_matrix",
    "fig1_capacity",
    "single_config_cost",
    "PlanMeasurement",
    "measure_plan",
    "generate_report",
    "ExperimentRunner",
    "SimReport",
    "sim_report",
    "spawn_seeds",
    "SensitivityRow",
    "reprice",
    "run_price_sensitivity",
    "format_price_sensitivity",
    "CrossCloudRow",
    "crosscloud_workloads",
    "run_crosscloud",
    "format_crosscloud",
    "Table1Row",
    "run_table1",
    "format_table1",
    "Table2Row",
    "run_table2",
    "format_table2",
    "Table4Check",
    "run_table4",
    "format_table4",
    "Fig1Cell",
    "Fig1Result",
    "run_fig1",
    "format_fig1",
    "Fig2Series",
    "run_fig2",
    "format_fig2",
    "Fig3Cell",
    "Fig3Result",
    "run_fig3",
    "format_fig3",
    "Fig4Plan",
    "run_fig4",
    "format_fig4",
    "Fig5Point",
    "Fig5Result",
    "run_fig5",
    "format_fig5",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
    "format_fig7",
    "Fig8Point",
    "Fig8Result",
    "run_fig8",
    "format_fig8",
    "Fig9Config",
    "Fig9Result",
    "run_fig9",
    "format_fig9",
    "SAAblationPoint",
    "run_sa_ablation",
    "format_sa_ablation",
    "RegressionAblation",
    "run_regression_ablation",
    "format_regression_ablation",
    "HeatAblationRow",
    "run_heat_ablation",
    "format_heat_ablation",
    "DynamicAblationRow",
    "run_dynamic_ablation",
    "format_dynamic_ablation",
]
