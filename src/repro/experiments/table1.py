"""Table 1 — storage service characteristics, re-measured.

The paper measures each service's sequential throughput with ``fio``
(block devices) / ``gsutil`` (objStore) and reports 4 KB random IOPS
and list prices.  Here the same microbenchmark drives the *simulated*
tiers: a single large sequential transfer through an otherwise idle
node channel yields the measured MB/s, which must agree with the
catalog numbers the planner consumes (the substrate's ground truth and
the planner's model are calibrated to the same spec, exactly as the
paper's measurements "match the information provided on [6]").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..cloud.provider import CloudProvider
from ..cloud.storage import Tier
from ..cloud.vm import ClusterSpec
from ..simulator.cluster import SimCluster
from ..units import gb_to_mb
from .common import provider

__all__ = ["Table1Row", "run_table1", "format_table1"]

#: Transfer size for the sequential-throughput measurement.
_SEQ_TRANSFER_GB = 16.0


@dataclass(frozen=True)
class Table1Row:
    """One (service, capacity) row of the re-measured Table 1."""

    tier: Tier
    capacity_gb: Optional[float]
    measured_mb_s: float
    catalog_mb_s: float
    iops_4k: float
    price_usd_month: Optional[float]
    price_note: str


def _measure_seq_mb_s(prov: CloudProvider, tier: Tier, capacity_gb: float) -> float:
    """fio-style sequential read: one stream through an idle channel."""
    cluster = SimCluster(ClusterSpec(n_vms=1), prov, {tier: capacity_gb})
    channel = cluster.node(0).channel(tier)
    done_at = [0.0]

    def done() -> None:
        done_at[0] = cluster.queue.now

    channel.start_transfer(gb_to_mb(_SEQ_TRANSFER_GB), done)
    cluster.queue.run()
    elapsed = done_at[0] - prov.service(tier).request_overhead_s
    return gb_to_mb(_SEQ_TRANSFER_GB) / elapsed


def run_table1(prov: Optional[CloudProvider] = None) -> List[Table1Row]:
    """Re-measure every Table 1 row on the simulated substrate."""
    prov = prov or provider()
    rows: List[Table1Row] = []

    def add(tier: Tier, cap: Optional[float]) -> None:
        svc = prov.service(tier)
        eff_cap = cap if cap is not None else 1.0
        measured = _measure_seq_mb_s(prov, tier, eff_cap)
        catalog = svc.throughput_mb_s(eff_cap)
        if tier is Tier.OBJ_STORE:
            price, note = None, f"{svc.price_gb_month:.3f}/GB"
        else:
            price = svc.price_gb_month * float(cap)
            note = f"{svc.price_gb_month}x{cap:.0f}"
        rows.append(
            Table1Row(
                tier=tier,
                capacity_gb=cap,
                measured_mb_s=measured,
                catalog_mb_s=catalog,
                iops_4k=svc.iops_4k(eff_cap),
                price_usd_month=price,
                price_note=note,
            )
        )

    add(Tier.EPH_SSD, 375.0)
    for cap in (100.0, 250.0, 500.0):
        add(Tier.PERS_SSD, cap)
    for cap in (100.0, 250.0, 500.0):
        add(Tier.PERS_HDD, cap)
    add(Tier.OBJ_STORE, None)
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the rows as the paper's Table 1."""
    lines = [
        f"{'Storage':10s} {'GB/vol':>8s} {'MB/s (meas)':>12s} "
        f"{'MB/s (cat)':>11s} {'IOPS 4K':>9s} {'$/month':>12s}"
    ]
    for r in rows:
        cap = f"{r.capacity_gb:.0f}" if r.capacity_gb is not None else "N/A"
        lines.append(
            f"{r.tier.value:10s} {cap:>8s} {r.measured_mb_s:12.0f} "
            f"{r.catalog_mb_s:11.0f} {r.iops_4k:9.0f} {r.price_note:>12s}"
        )
    return "\n".join(lines)
